//! The per-kernel latency model.
//!
//! One (possibly fused) operator executes as one GPU kernel. Its latency
//! is modeled as
//!
//! ```text
//! total = launch + max(compute, memory) + index_overhead
//! ```
//!
//! * `launch` — fixed per-kernel dispatch overhead. This is why reducing
//!   the operator count (fusion + elimination, Table 7) matters on
//!   mobile GPUs.
//! * `compute` — MAC and ALU work at the device's peak throughput scaled
//!   by the kernel's achieved utilization (set by the auto-tuner).
//! * `memory` — DRAM traffic (from *simulated* cache misses plus write
//!   traffic) at the bandwidth of the memory class that served it.
//! * `index_overhead` — strength-reduced index arithmetic executed per
//!   accessed element when an eliminated layout chain is folded into the
//!   kernel (§3.2.1).

use crate::device::DeviceConfig;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};

/// Which Table 1 latency bucket a kernel belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LatencyClass {
    /// Real computation.
    Compute,
    /// Model-authored layout transformation executed as a kernel.
    ExplicitTransform,
    /// Framework-inserted relayout executed as a kernel.
    ImplicitTransform,
}

impl Encode for LatencyClass {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            LatencyClass::Compute => 0,
            LatencyClass::ExplicitTransform => 1,
            LatencyClass::ImplicitTransform => 2,
        });
    }
}

impl Decode for LatencyClass {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(LatencyClass::Compute),
            1 => Ok(LatencyClass::ExplicitTransform),
            2 => Ok(LatencyClass::ImplicitTransform),
            tag => Err(WireError::BadTag { ty: "LatencyClass", tag }),
        }
    }
}

/// Work description of one kernel, produced by the graph estimators.
#[derive(Clone, Copy, Debug)]
pub struct KernelProfile {
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Non-MAC ALU operations (activations, normalization arithmetic).
    pub alu_ops: f64,
    /// Bytes moved between DRAM and the buffer cache (read misses ×
    /// line size + uncached writes).
    pub dram_bytes_buffer: u64,
    /// Bytes moved between DRAM and the texture cache.
    pub dram_bytes_texture: u64,
    /// Total weighted index-arithmetic operations executed
    /// (`ExprCost::weighted` × accessed elements).
    pub index_ops: f64,
    /// Achieved fraction of peak compute throughput in `(0, 1]`.
    pub utilization: f64,
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile {
            macs: 0,
            alu_ops: 0.0,
            dram_bytes_buffer: 0,
            dram_bytes_texture: 0,
            index_ops: 0.0,
            utilization: 0.5,
        }
    }
}

/// Latency decomposition of one kernel in nanoseconds.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OpCost {
    /// Dispatch overhead.
    pub launch_ns: f64,
    /// ALU/MAC time.
    pub compute_ns: f64,
    /// DRAM transfer time.
    pub memory_ns: f64,
    /// Index-arithmetic overhead.
    pub index_ns: f64,
}

impl OpCost {
    /// Total kernel latency: `launch + max(compute, memory)`.
    ///
    /// Index arithmetic is ALU work executed by the same threads that
    /// issue the loads, so it contributes to the *compute* side of the
    /// roofline (`compute_ns` already includes `index_ns`) rather than
    /// serializing after the kernel.
    pub fn total_ns(&self) -> f64 {
        self.launch_ns + self.compute_ns.max(self.memory_ns)
    }

    /// Whether the kernel is memory-bound.
    pub fn memory_bound(&self) -> bool {
        self.memory_ns > self.compute_ns
    }
}

impl DeviceConfig {
    /// Evaluates the latency model for one kernel.
    ///
    /// A kernel's achieved *bandwidth* correlates with its code quality
    /// just like its ALU utilization does: an unvectorized, uncoalesced
    /// relayout kernel does not stream at peak bandwidth. Achieved
    /// bandwidth saturates once utilization reaches ~0.25 of peak MACs
    /// (a well-shaped kernel) and degrades linearly below that, to a
    /// floor of 15%. Texture-path traffic is served at the *effective*
    /// bandwidth, which folds in AFBC's compression gain (and its
    /// per-superblock metadata cost) on devices that have it.
    pub fn kernel_cost(&self, p: &KernelProfile) -> OpCost {
        let util = p.utilization.clamp(0.02, 0.95);
        let index_ns = p.index_ops / (self.index_ops_per_sec * 1e-9);
        let compute_ns = (p.macs as f64 + p.alu_ops) / (self.macs_per_ns() * util) + index_ns;
        let mem_eff = (util / 0.25).clamp(0.15, 1.0);
        let memory_ns = (p.dram_bytes_buffer as f64 / self.effective_bw_bytes_per_ns(false)
            + p.dram_bytes_texture as f64 / self.effective_bw_bytes_per_ns(true))
            / mem_eff;
        OpCost { launch_ns: self.kernel_launch_us * 1e3, compute_ns, memory_ns, index_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::snapdragon_8gen2()
    }

    #[test]
    fn compute_bound_kernel() {
        // 1 GMAC at 50% utilization on a 2 TMACs device: 1e9/(2000*0.5) ns = 1 ms.
        let p = KernelProfile { macs: 1_000_000_000, utilization: 0.5, ..Default::default() };
        let c = dev().kernel_cost(&p);
        assert!((c.compute_ns - 1.0e6).abs() / 1.0e6 < 1e-9);
        assert!(!c.memory_bound());
        assert!(c.total_ns() > c.compute_ns); // launch adds on top
    }

    #[test]
    fn memory_bound_kernel() {
        // 55 MB from global memory at 55 GB/s = 1 ms at full bandwidth
        // efficiency; at utilization 1.0 the kernel achieves peak.
        let p = KernelProfile {
            macs: 1000,
            dram_bytes_buffer: 55_000_000,
            utilization: 1.0,
            ..Default::default()
        };
        let c = dev().kernel_cost(&p);
        assert!(c.memory_bound());
        // util >= 0.25 saturates bandwidth efficiency at 1.0.
        assert!((c.memory_ns - 1.0e6).abs() / 1.0e6 < 1e-9);
    }

    #[test]
    fn poor_kernels_achieve_less_bandwidth() {
        let good =
            KernelProfile { dram_bytes_buffer: 1 << 20, utilization: 0.9, ..Default::default() };
        let bad =
            KernelProfile { dram_bytes_buffer: 1 << 20, utilization: 0.05, ..Default::default() };
        let d = dev();
        let ratio = d.kernel_cost(&bad).memory_ns / d.kernel_cost(&good).memory_ns;
        // util 0.05 -> mem_eff 0.2; util 0.9 -> mem_eff 1.0.
        assert!(ratio > 4.0 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn texture_bandwidth_is_higher() {
        let from_buffer = KernelProfile { dram_bytes_buffer: 1 << 20, ..Default::default() };
        let from_texture = KernelProfile { dram_bytes_texture: 1 << 20, ..Default::default() };
        let d = dev();
        let b = d.kernel_cost(&from_buffer).memory_ns;
        let t = d.kernel_cost(&from_texture).memory_ns;
        // 511 / 55 ≈ 9.3x faster.
        assert!(b / t > 9.0 && b / t < 10.0, "ratio {}", b / t);
    }

    #[test]
    fn index_overhead_contributes_to_compute() {
        let p = KernelProfile { index_ops: 2.5e8, ..Default::default() };
        let c = dev().kernel_cost(&p);
        // 2.5e8 ops at 2.5e11 ops/s = 1 ms.
        assert!((c.index_ns - 1.0e6).abs() / 1.0e6 < 1e-9);
        assert!(c.compute_ns >= c.index_ns);
        assert!(c.total_ns() >= c.launch_ns + c.index_ns);
    }

    #[test]
    fn utilization_is_clamped() {
        let p = KernelProfile { macs: 1_000_000, utilization: 7.0, ..Default::default() };
        let clamped = KernelProfile { macs: 1_000_000, utilization: 0.95, ..Default::default() };
        assert_eq!(dev().kernel_cost(&p).compute_ns, dev().kernel_cost(&clamped).compute_ns);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let p = KernelProfile { macs: 100, ..Default::default() };
        let c = dev().kernel_cost(&p);
        assert!(c.launch_ns / c.total_ns() > 0.99);
    }
}
