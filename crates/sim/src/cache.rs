//! A set-associative cache simulator with LRU replacement.
//!
//! Used both for the global-memory data cache (linear 64-byte lines)
//! and — with 2-D tile keys produced by [`crate::MemorySim`] — for the
//! dedicated texture cache of mobile GPUs (Table 2: "Dedicated cache:
//! Yes" for 2.5D texture memory).

/// Geometry of a simulated cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (or 2-D tile) size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry (at least 1).
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways)).max(1)
    }
}

/// Set-associative LRU cache over abstract line keys.
///
/// The caller maps addresses to line keys (linear lines for buffers,
/// Morton-ish 2-D tiles for textures), so one implementation serves both
/// memory classes.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    sets: Vec<Vec<(u64, u64)>>, // (line key, last-use stamp)
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access to `line_key`, returning `true` on hit.
    pub fn access(&mut self, line_key: u64) -> bool {
        self.clock += 1;
        let set_count = self.sets.len() as u64;
        // Spread keys across sets with a multiplicative hash so that
        // strided 2-D tile keys don't alias pathologically.
        let set_idx = ((line_key.wrapping_mul(0x9E3779B97F4A7C15)) % set_count) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(k, _)| *k == line_key) {
            entry.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.config.ways {
            set.push((line_key, self.clock));
        } else {
            // Evict LRU.
            let victim = set.iter_mut().min_by_key(|(_, stamp)| *stamp).expect("non-empty set");
            *victim = (line_key, self.clock);
        }
        false
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for an untouched cache).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheSim {
        CacheSim::new(CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 };
        assert_eq!(c.sets(), 4);
    }

    #[test]
    fn cold_then_hot() {
        let mut c = small();
        assert!(!c.access(7));
        assert!(c.access(7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_lru() {
        // 8 lines capacity total; streaming 16 distinct lines twice
        // should miss every time (LRU, working set 2x capacity).
        let mut c = small();
        for _ in 0..2 {
            for k in 0..16u64 {
                c.access(k);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 32);
    }

    #[test]
    fn small_working_set_hits() {
        let mut c = small();
        for _ in 0..10 {
            for k in 0..4u64 {
                c.access(k);
            }
        }
        // 4 cold misses, everything else hits.
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 36);
    }

    #[test]
    fn reset_clears() {
        let mut c = small();
        c.access(1);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(1)); // cold again
    }

    #[test]
    fn lru_prefers_recent() {
        // Single-set cache with 2 ways.
        let mut c = CacheSim::new(CacheConfig { size_bytes: 128, line_bytes: 64, ways: 2 });
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU
        c.access(3); // evicts 2
        assert!(c.access(1), "1 should still be cached");
        assert!(!c.access(2), "2 was the LRU victim");
    }
}
