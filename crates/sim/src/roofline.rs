//! Roofline analysis helpers (Fig. 12 of the paper).

use crate::device::DeviceConfig;

/// One model's point on the roofline plot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RooflinePoint {
    /// Average computational intensity in MACs per byte.
    pub intensity: f64,
    /// Achieved performance in GMACs/s.
    pub achieved_gmacs: f64,
    /// Roof at this intensity assuming all data comes from texture
    /// memory, in GMACs/s.
    pub texture_roof_gmacs: f64,
    /// Roof assuming all data comes from global memory, in GMACs/s.
    pub global_roof_gmacs: f64,
}

impl RooflinePoint {
    /// Fraction of the texture-memory roof achieved (the paper reports
    /// 24–35% for Swin/ViT/ResNext/SD-VAEDecoder).
    pub fn texture_roof_fraction(&self) -> f64 {
        if self.texture_roof_gmacs == 0.0 {
            0.0
        } else {
            self.achieved_gmacs / self.texture_roof_gmacs
        }
    }
}

/// Roofline performance bound in GMACs/s for a given computational
/// intensity (MACs/byte) when data is served from the chosen memory
/// class: `min(peak, bandwidth × intensity)`. The bandwidth is the
/// *effective* one: on AFBC devices the texture roof rises by the
/// compression gain (payload ratio minus per-superblock metadata — see
/// `AfbcConfig::bandwidth_gain`), shifting the ridge point left.
pub fn roofline_gmacs(device: &DeviceConfig, intensity_macs_per_byte: f64, texture: bool) -> f64 {
    let peak_gmacs = device.peak_tmacs * 1e3;
    let bw = device.effective_bw_bytes_per_ns(texture); // GB/s == bytes/ns
    peak_gmacs.min(bw * intensity_macs_per_byte)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_region_scales_with_bandwidth() {
        let d = DeviceConfig::snapdragon_8gen2();
        // At 1 MAC/byte: global roof = 55 GMACS, texture roof = 511 GMACS.
        assert!((roofline_gmacs(&d, 1.0, false) - 55.0).abs() < 1e-9);
        assert!((roofline_gmacs(&d, 1.0, true) - 511.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_region_caps_at_peak() {
        let d = DeviceConfig::snapdragon_8gen2();
        assert!((roofline_gmacs(&d, 1e6, true) - 2000.0).abs() < 1e-9);
        // Crossover (ridge point) for texture: 2000/511 ≈ 3.9 MACs/byte.
        assert!(roofline_gmacs(&d, 3.0, true) < 2000.0);
        assert!((roofline_gmacs(&d, 4.0, true) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn afbc_raises_the_texture_roof_only() {
        let on = DeviceConfig::mali_g710();
        let off = on.clone().with_afbc(false);
        // Memory-bound region: the compressed texture path serves more
        // logical bytes per DRAM byte, so the roof rises.
        assert!(roofline_gmacs(&on, 1.0, true) > roofline_gmacs(&off, 1.0, true));
        assert_eq!(roofline_gmacs(&on, 1.0, false), roofline_gmacs(&off, 1.0, false));
        // Compute-bound region: both cap at the same peak.
        assert_eq!(roofline_gmacs(&on, 1e6, true), roofline_gmacs(&off, 1e6, true));
    }

    #[test]
    fn roof_fraction() {
        let p = RooflinePoint {
            intensity: 2.0,
            achieved_gmacs: 149.0,
            texture_roof_gmacs: 511.0 * 2.0 / 2.0, // illustrative
            global_roof_gmacs: 55.0,
        };
        assert!(p.texture_roof_fraction() > 0.0 && p.texture_roof_fraction() < 1.0);
    }
}
