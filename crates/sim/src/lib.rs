//! # smartmem-sim
//!
//! A trace-driven performance model of the mobile GPUs the SmartMem
//! paper evaluates on. The paper measures real hardware (Snapdragon
//! 8 Gen 2 / 835, Dimensity 700, Tesla V100); this crate substitutes a
//! simulator that models exactly the quantities the paper's analysis
//! depends on:
//!
//! * **two memory classes** (Table 2): pointer-addressed 1D buffer
//!   (global) memory behind a set-associative cache, and 2.5D texture
//!   memory (2D grid of `vec4` texels) behind a dedicated cache with 2D
//!   tile lines;
//! * **per-device constants** ([`DeviceConfig`]): peak MAC throughput,
//!   global/texture bandwidth (55 / 511 GB/s on the 8 Gen 2 — §4.6),
//!   kernel-launch overhead and memory capacity;
//! * **a capability descriptor** ([`DeviceCaps`]): texture path
//!   present, AFBC framebuffer compression ([`AfbcConfig`]), unified
//!   memory — the optimizer branches on these capabilities, never on
//!   device names, so new platforms slot in without optimizer changes;
//! * **a kernel cost model** ([`DeviceConfig::kernel_cost`]):
//!   `latency = launch + max(compute, memory) + index-overhead`, with
//!   memory time derived from *measured* cache misses on sampled access
//!   streams, not asserted constants;
//! * **perf counters** ([`MemCounters`]) for the memory-access and
//!   cache-miss comparisons of Figs. 7 and 9.
//!
//! # Example
//!
//! ```
//! use smartmem_sim::{CacheConfig, CacheSim};
//!
//! let mut cache = CacheSim::new(CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 4 });
//! assert!(!cache.access(0));  // cold miss
//! assert!(cache.access(0));   // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cost;
mod device;
mod fault;
mod memory;
mod roofline;

pub use cache::{CacheConfig, CacheSim};
pub use cost::{KernelProfile, LatencyClass, OpCost};
pub use device::{DeviceCaps, DeviceConfig};
pub use fault::{FaultKind, FaultPlan, FaultRates};
pub use memory::{AfbcConfig, MemCounters, MemorySim, TextureTiling};
pub use roofline::{roofline_gmacs, RooflinePoint};
