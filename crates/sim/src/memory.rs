//! Memory-system simulation: routing element accesses through the
//! buffer or texture cache and collecting perf counters.

use crate::cache::{CacheConfig, CacheSim};
use crate::device::DeviceConfig;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::PhysicalAddress;

/// Arm Frame Buffer Compression on the texture path (Mali GPUs).
///
/// AFBC losslessly compresses texel data in superblock granules: each
/// superblock stores a small header (payload pointer + solid-color
/// flags) plus a variable-length compressed payload. For the bandwidth
/// model this means texture-path DRAM traffic shrinks by the payload
/// compression ratio but *gains* a fixed per-superblock metadata cost —
/// the two effects are folded into one effective-bandwidth multiplier
/// by [`AfbcConfig::bandwidth_gain`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AfbcConfig {
    /// Mean lossless compression ratio achieved on texel payload
    /// (`>= 1.0`; ~1.5–2.0 for activation-like data).
    pub compression_ratio: f64,
    /// Superblock edge in texels (16 for the standard 16×16 AFBC
    /// superblock).
    pub superblock_texels: u64,
    /// Header bytes read/written per superblock.
    pub metadata_bytes: u64,
}

impl AfbcConfig {
    /// The 16×16-superblock, 16-byte-header configuration Mali GPUs
    /// ship, at a conservative 1.8× payload compression ratio.
    pub fn mali_default() -> Self {
        AfbcConfig { compression_ratio: 1.8, superblock_texels: 16, metadata_bytes: 16 }
    }

    /// Uncompressed payload bytes of one superblock of `vec4` texels.
    pub fn superblock_payload_bytes(&self, elem_bytes: u64) -> f64 {
        (self.superblock_texels * self.superblock_texels * 4 * elem_bytes).max(1) as f64
    }

    /// DRAM bytes actually moved for `payload_bytes` of logical texel
    /// traffic: compressed payload plus per-superblock metadata.
    pub fn dram_bytes(&self, payload_bytes: f64, elem_bytes: u64) -> f64 {
        let ratio = self.compression_ratio.max(1.0);
        let payload = self.superblock_payload_bytes(elem_bytes);
        payload_bytes / ratio + (payload_bytes / payload) * self.metadata_bytes as f64
    }

    /// Effective texture-bandwidth multiplier: logical bytes served per
    /// DRAM byte moved. `> 1` whenever compression outweighs the
    /// metadata overhead; monotonically increasing in
    /// [`AfbcConfig::compression_ratio`].
    pub fn bandwidth_gain(&self, elem_bytes: u64) -> f64 {
        let ratio = self.compression_ratio.max(1.0);
        let meta_fraction = self.metadata_bytes as f64 / self.superblock_payload_bytes(elem_bytes);
        1.0 / (1.0 / ratio + meta_fraction)
    }
}

impl Encode for AfbcConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.compression_ratio);
        w.put_u64(self.superblock_texels);
        w.put_u64(self.metadata_bytes);
    }
}

impl Decode for AfbcConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let compression_ratio = f64::decode(r)?;
        let superblock_texels = r.get_u64()?;
        let metadata_bytes = r.get_u64()?;
        if !compression_ratio.is_finite() || compression_ratio < 1.0 {
            return Err(WireError::Invalid(format!(
                "AFBC compression ratio {compression_ratio} must be finite and >= 1"
            )));
        }
        if superblock_texels == 0 {
            return Err(WireError::Invalid("AFBC superblock must be non-empty".into()));
        }
        Ok(AfbcConfig { compression_ratio, superblock_texels, metadata_bytes })
    }
}

/// 2-D tile shape (in texels) of one texture-cache line.
///
/// Texture caches exploit 2-D spatial locality (Table 2): a line holds a
/// small rectangle of texels rather than a 1-D run, so accesses along
/// *either* axis of the texture hit the same line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TextureTiling {
    /// Tile width in texels.
    pub tile_w: u64,
    /// Tile height in texels.
    pub tile_h: u64,
}

/// Aggregated memory-system counters.
///
/// `accesses` counts element requests issued by kernels; `misses`
/// counts cache lines fetched from DRAM. These are the two quantities
/// compared in Figs. 7 and 9 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemCounters {
    /// Element requests to the buffer path.
    pub buffer_accesses: u64,
    /// Buffer-cache misses.
    pub buffer_misses: u64,
    /// Element requests to the texture path.
    pub texture_accesses: u64,
    /// Texture-cache misses.
    pub texture_misses: u64,
}

impl MemCounters {
    /// Total element requests.
    pub fn accesses(&self) -> u64 {
        self.buffer_accesses + self.texture_accesses
    }

    /// Total cache misses.
    pub fn misses(&self) -> u64 {
        self.buffer_misses + self.texture_misses
    }

    /// Component-wise sum.
    pub fn combine(self, o: MemCounters) -> MemCounters {
        MemCounters {
            buffer_accesses: self.buffer_accesses + o.buffer_accesses,
            buffer_misses: self.buffer_misses + o.buffer_misses,
            texture_accesses: self.texture_accesses + o.texture_accesses,
            texture_misses: self.texture_misses + o.texture_misses,
        }
    }
}

/// One device's memory system: a buffer cache plus a texture cache.
///
/// Tensors are distinguished by a caller-provided `tensor_base` (a fake
/// allocation address) so different tensors do not alias.
#[derive(Clone, Debug)]
pub struct MemorySim {
    buffer_cache: CacheSim,
    texture_cache: CacheSim,
    tiling: TextureTiling,
    buffer_line: u64,
}

impl MemorySim {
    /// Builds the memory system of `device`.
    pub fn new(device: &DeviceConfig) -> Self {
        MemorySim {
            buffer_cache: CacheSim::new(device.buffer_cache),
            texture_cache: CacheSim::new(device.texture_cache),
            tiling: device.texture_tiling,
            buffer_line: device.buffer_cache.line_bytes as u64,
        }
    }

    /// Builds a memory system with explicit geometries (tests).
    pub fn with_configs(buffer: CacheConfig, texture: CacheConfig, tiling: TextureTiling) -> Self {
        MemorySim {
            buffer_line: buffer.line_bytes as u64,
            buffer_cache: CacheSim::new(buffer),
            texture_cache: CacheSim::new(texture),
            tiling,
        }
    }

    /// Routes one element access; returns `true` on cache hit.
    ///
    /// `tensor_base` is the tensor's allocation base: a byte address for
    /// buffer tensors, an opaque region id for texture tensors.
    /// `elem_bytes` is the element size (buffer addresses are scaled by
    /// it).
    pub fn access(&mut self, tensor_base: u64, addr: PhysicalAddress, elem_bytes: u64) -> bool {
        match addr {
            PhysicalAddress::Linear(off) => {
                let byte = tensor_base + off * elem_bytes;
                self.buffer_cache.access(byte / self.buffer_line)
            }
            PhysicalAddress::Texel { x, y, .. } => {
                let tx = x / self.tiling.tile_w;
                let ty = y / self.tiling.tile_h;
                // Interleave tile coordinates with the region id into one
                // line key; 21 bits per component keeps keys unique for
                // any realistic texture extent.
                let key = (tensor_base << 42) ^ (ty << 21) ^ tx;
                self.texture_cache.access(key)
            }
        }
    }

    /// Current counters.
    pub fn counters(&self) -> MemCounters {
        MemCounters {
            buffer_accesses: self.buffer_cache.accesses(),
            buffer_misses: self.buffer_cache.misses(),
            texture_accesses: self.texture_cache.accesses(),
            texture_misses: self.texture_cache.misses(),
        }
    }

    /// Miss ratio of the buffer cache.
    pub fn buffer_miss_ratio(&self) -> f64 {
        self.buffer_cache.miss_ratio()
    }

    /// Miss ratio of the texture cache.
    pub fn texture_miss_ratio(&self) -> f64 {
        self.texture_cache.miss_ratio()
    }

    /// Buffer-cache line size in bytes.
    pub fn buffer_line_bytes(&self) -> u64 {
        self.buffer_line
    }

    /// Texture-cache line (tile) size in bytes.
    pub fn texture_line_bytes(&self) -> u64 {
        self.texture_cache.config().line_bytes as u64
    }

    /// Clears caches and counters.
    pub fn reset(&mut self) {
        self.buffer_cache.reset();
        self.texture_cache.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> MemorySim {
        MemorySim::with_configs(
            CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
            CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
            TextureTiling { tile_w: 4, tile_h: 2 },
        )
    }

    #[test]
    fn sequential_buffer_access_mostly_hits() {
        let mut m = sim();
        // 512 f16 elements = 1 KiB = 16 lines: 16 misses, 496 hits.
        for i in 0..512u64 {
            m.access(0, PhysicalAddress::Linear(i), 2);
        }
        let c = m.counters();
        assert_eq!(c.buffer_accesses, 512);
        assert_eq!(c.buffer_misses, 16);
    }

    #[test]
    fn strided_buffer_access_misses_more() {
        let mut m = sim();
        // Stride of 64 elements x 2 bytes = 128 bytes: every access a
        // new line; with 4 KiB capacity and 512 distinct lines, all miss.
        for i in 0..512u64 {
            m.access(0, PhysicalAddress::Linear(i * 64), 2);
        }
        assert_eq!(m.counters().buffer_misses, 512);
        assert!(m.buffer_miss_ratio() > 0.99);
    }

    #[test]
    fn texture_tile_locality_works_both_axes() {
        let mut m = sim();
        // Walk down a column of texels: tiles are 4x2, so every other
        // access starts a new tile -> ~50% miss, far better than 1-D
        // lines would do for a column walk.
        for y in 0..64u64 {
            m.access(1, PhysicalAddress::Texel { x: 0, y, lane: 0 }, 8);
        }
        let c = m.counters();
        assert_eq!(c.texture_accesses, 64);
        assert_eq!(c.texture_misses, 32);
    }

    #[test]
    fn texture_row_walk_hits_within_tiles() {
        let mut m = sim();
        for x in 0..64u64 {
            m.access(1, PhysicalAddress::Texel { x, y: 0, lane: 0 }, 8);
        }
        let c = m.counters();
        assert_eq!(c.texture_misses, 16); // one per 4-texel-wide tile
    }

    #[test]
    fn distinct_tensors_do_not_alias() {
        let mut m = sim();
        m.access(10, PhysicalAddress::Texel { x: 0, y: 0, lane: 0 }, 8);
        let hit = m.access(11, PhysicalAddress::Texel { x: 0, y: 0, lane: 0 }, 8);
        assert!(!hit, "different tensor regions must not alias in the cache");
    }

    #[test]
    fn afbc_compression_outweighs_metadata() {
        let afbc = AfbcConfig::mali_default();
        // 16x16 vec4 f16 superblock = 2048 payload bytes, 16 metadata
        // bytes: the gain stays close to the raw compression ratio.
        let gain = afbc.bandwidth_gain(2);
        assert!(gain > 1.5 && gain < afbc.compression_ratio, "gain {gain}");
        // Moving 1 MiB of texels costs payload/1.8 + metadata.
        let bytes = afbc.dram_bytes((1 << 20) as f64, 2);
        assert!(bytes < (1 << 20) as f64);
        assert!((bytes - ((1 << 20) as f64 / gain)).abs() < 1e-6);
    }

    #[test]
    fn afbc_more_compression_never_more_traffic() {
        let mut prev = f64::INFINITY;
        for ratio in [1.0, 1.2, 1.8, 2.5, 4.0] {
            let afbc = AfbcConfig { compression_ratio: ratio, ..AfbcConfig::mali_default() };
            let bytes = afbc.dram_bytes(1e6, 2);
            assert!(bytes <= prev, "ratio {ratio} raised traffic {bytes} > {prev}");
            prev = bytes;
        }
    }

    #[test]
    fn afbc_wire_roundtrip() {
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        let afbc = AfbcConfig::mali_default();
        let back: AfbcConfig = decode_from(&encode_to_vec(&afbc)).unwrap();
        assert_eq!(back, afbc);
        // A ratio below 1 must be rejected, not silently accepted.
        let bad = AfbcConfig { compression_ratio: 0.5, ..afbc };
        assert!(decode_from::<AfbcConfig>(&encode_to_vec(&bad)).is_err());
    }

    #[test]
    fn counters_combine() {
        let a = MemCounters {
            buffer_accesses: 1,
            buffer_misses: 1,
            texture_accesses: 2,
            texture_misses: 0,
        };
        let b = MemCounters {
            buffer_accesses: 3,
            buffer_misses: 0,
            texture_accesses: 1,
            texture_misses: 1,
        };
        let c = a.combine(b);
        assert_eq!(c.accesses(), 7);
        assert_eq!(c.misses(), 2);
    }
}
