//! Device configurations for the platforms evaluated in the paper.

use crate::cache::CacheConfig;
use crate::memory::{AfbcConfig, TextureTiling};
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};
use smartmem_ir::DType;

/// Memory-system capabilities of one execution platform.
///
/// Layout selection branches on *capabilities*, never on device names:
/// a new device is fully described by its `DeviceCaps` plus the scalar
/// constants in [`DeviceConfig`], and every capability combination the
/// optimizer supports is already handled. See the device-capability
/// table in `docs/ARCHITECTURE.md`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DeviceCaps {
    /// Whether the device exposes a performance-relevant 2.5D texture
    /// path for compute kernels (Adreno/Mali image reads). When false,
    /// layout selection only ever produces 1D buffer layouts.
    pub texture_path: bool,
    /// Lossless framebuffer compression on the texture path (Mali
    /// AFBC). `None` on devices without it — and on AFBC-capable
    /// devices with it toggled off for an A/B run.
    pub afbc: Option<AfbcConfig>,
    /// Whether host and device share one physical memory (mobile SoCs,
    /// Apple silicon, server NPUs with pooled DRAM). Discrete devices
    /// pay a host-link staging cost before a kernel can run.
    pub unified_memory: bool,
    /// Maximum texture extent per axis in texels; tensors whose
    /// placement exceeds it fall back to buffer layouts. Zero on
    /// devices without a texture path.
    pub max_texture_extent: u64,
}

impl DeviceCaps {
    /// A mobile GPU with a 2.5D texture path and unified memory
    /// (Adreno-class; Mali without AFBC).
    pub fn mobile_gpu() -> Self {
        DeviceCaps {
            texture_path: true,
            afbc: None,
            unified_memory: true,
            max_texture_extent: 16384,
        }
    }

    /// A Mali-class mobile GPU with AFBC on its texture path.
    pub fn mali_afbc() -> Self {
        DeviceCaps { afbc: Some(AfbcConfig::mali_default()), ..DeviceCaps::mobile_gpu() }
    }

    /// Unified memory without a performance-relevant texture path
    /// (Apple silicon under Metal compute).
    pub fn unified_no_texture() -> Self {
        DeviceCaps { texture_path: false, afbc: None, unified_memory: true, max_texture_extent: 0 }
    }

    /// A discrete GPU: no texture path in this model, host-link staging
    /// required (desktop comparison of Table 9).
    pub fn discrete_gpu() -> Self {
        DeviceCaps { texture_path: false, afbc: None, unified_memory: false, max_texture_extent: 0 }
    }

    /// A server-class NPU: no texture path, pooled/unified memory.
    pub fn server_npu() -> Self {
        DeviceCaps { texture_path: false, afbc: None, unified_memory: true, max_texture_extent: 0 }
    }

    /// Returns the capabilities with AFBC toggled on (the standard Mali
    /// configuration) or off — the A/B switch of the portability study.
    /// Toggling on is a no-op without a texture path: there is nothing
    /// for AFBC to compress.
    pub fn with_afbc(self, enabled: bool) -> Self {
        DeviceCaps { afbc: (enabled && self.texture_path).then(AfbcConfig::mali_default), ..self }
    }
}

impl Encode for DeviceCaps {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.texture_path as u8);
        match &self.afbc {
            None => w.put_u8(0),
            Some(a) => {
                w.put_u8(1);
                a.encode(w);
            }
        }
        w.put_u8(self.unified_memory as u8);
        w.put_u64(self.max_texture_extent);
    }
}

impl Decode for DeviceCaps {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let texture_path = bool::decode(r)?;
        let afbc = match r.get_u8()? {
            0 => None,
            1 => Some(AfbcConfig::decode(r)?),
            tag => return Err(WireError::BadTag { ty: "DeviceCaps.afbc", tag }),
        };
        let unified_memory = bool::decode(r)?;
        let max_texture_extent = r.get_u64()?;
        if afbc.is_some() && !texture_path {
            return Err(WireError::Invalid("AFBC requires a texture path".into()));
        }
        Ok(DeviceCaps { texture_path, afbc, unified_memory, max_texture_extent })
    }
}

/// Performance-relevant constants of one execution platform.
///
/// The mobile presets reproduce the published characteristics the paper
/// relies on (§4.1 and the §4.6 roofline: 55 GB/s global bandwidth,
/// 511 GB/s texture bandwidth and 2.0 TMACs/s peak on the Snapdragon
/// 8 Gen 2); the older SoCs are scaled from their public spec sheets.
/// Desktop GPUs expose no performance-relevant texture path in this
/// model (the paper's TorchInductor comparison explicitly excludes the
/// 2.5D-memory optimization). What the memory system *can do* lives in
/// [`DeviceCaps`]; this struct holds how fast it does it.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Peak multiply-accumulate throughput in tera-MACs/s at the
    /// evaluation precision.
    pub peak_tmacs: f64,
    /// Global (1D buffer) memory bandwidth in GB/s.
    pub global_bw_gbps: f64,
    /// Texture (2.5D) memory bandwidth in GB/s.
    pub texture_bw_gbps: f64,
    /// Memory-system capabilities (texture path, AFBC, unified memory).
    pub caps: DeviceCaps,
    /// Fixed per-kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Unified/device memory capacity in GiB (OOM threshold for Fig. 11).
    pub memory_gb: f64,
    /// Geometry of the (L2) data cache in front of global memory.
    pub buffer_cache: CacheConfig,
    /// Geometry of the dedicated texture cache.
    pub texture_cache: CacheConfig,
    /// 2-D tile shape of one texture-cache line.
    pub texture_tiling: TextureTiling,
    /// Effective throughput for scalar index arithmetic, in weighted
    /// index-ops per second (see `smartmem_index::ExprCost::weighted`).
    pub index_ops_per_sec: f64,
    /// Evaluation element type (`F16` on mobile, `F32` on desktop —
    /// §4.1).
    pub dtype: DType,
}

impl DeviceConfig {
    /// Snapdragon 8 Gen 2 (Adreno 740) — the paper's primary platform.
    pub fn snapdragon_8gen2() -> Self {
        DeviceConfig {
            name: "Snapdragon 8 Gen 2 (Adreno 740)".to_string(),
            peak_tmacs: 2.0,
            global_bw_gbps: 55.0,
            texture_bw_gbps: 511.0,
            caps: DeviceCaps::mobile_gpu(),
            kernel_launch_us: 100.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 1 << 20, line_bytes: 64, ways: 8 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 2.5e11,
            dtype: DType::F16,
        }
    }

    /// Snapdragon 835 (Adreno 540) — older flagship used for the
    /// portability study (Fig. 11b).
    pub fn snapdragon_835() -> Self {
        DeviceConfig {
            name: "Snapdragon 835 (Adreno 540)".to_string(),
            peak_tmacs: 0.4,
            global_bw_gbps: 29.0,
            texture_bw_gbps: 190.0,
            caps: DeviceCaps::mobile_gpu(),
            kernel_launch_us: 130.0,
            memory_gb: 6.0,
            buffer_cache: CacheConfig { size_bytes: 512 << 10, line_bytes: 64, ways: 8 },
            texture_cache: CacheConfig { size_bytes: 64 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 0.8e11,
            dtype: DType::F16,
        }
    }

    /// MediaTek Dimensity 700 (Mali-G57) — the resource-constrained
    /// platform of Fig. 11a (4 GB unified memory).
    pub fn dimensity_700() -> Self {
        DeviceConfig {
            name: "Dimensity 700 (Mali-G57)".to_string(),
            peak_tmacs: 0.25,
            global_bw_gbps: 17.0,
            texture_bw_gbps: 100.0,
            caps: DeviceCaps::mobile_gpu(),
            kernel_launch_us: 160.0,
            memory_gb: 4.0,
            buffer_cache: CacheConfig { size_bytes: 512 << 10, line_bytes: 64, ways: 4 },
            texture_cache: CacheConfig { size_bytes: 32 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 0.5e11,
            dtype: DType::F16,
        }
    }

    /// Mali-G710 MC10 (Dimensity 9000 / Tensor G2 class) with AFBC on
    /// its texture path.
    ///
    /// AFBC losslessly compresses texture-path traffic in 16×16
    /// superblocks (see [`AfbcConfig`]): effective texture bandwidth
    /// rises by [`AfbcConfig::bandwidth_gain`] — close to the payload
    /// compression ratio, minus the per-superblock metadata cost. A/B
    /// the feature with [`DeviceConfig::with_afbc`].
    pub fn mali_g710() -> Self {
        DeviceConfig {
            name: "Mali-G710 (AFBC)".to_string(),
            peak_tmacs: 0.95,
            global_bw_gbps: 60.0,
            texture_bw_gbps: 256.0,
            caps: DeviceCaps::mali_afbc(),
            kernel_launch_us: 90.0,
            memory_gb: 12.0,
            buffer_cache: CacheConfig { size_bytes: 2 << 20, line_bytes: 64, ways: 8 },
            texture_cache: CacheConfig { size_bytes: 64 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 1.2e11,
            dtype: DType::F16,
        }
    }

    /// Apple M1 (8-core GPU) — an Apple-class unified-memory platform.
    ///
    /// Metal exposes no performance-relevant 2.5D texture path for
    /// compute (no `__read_only image2d_t` fast path as on Adreno/Mali),
    /// so the texture capability is off and both bandwidth figures
    /// collapse to the unified-memory bandwidth (~68 GB/s on the base
    /// M1). Peak is ~2.6 TFLOPs FP32, evaluated here as ~1.3 TMACs at
    /// F16.
    pub fn apple_m1() -> Self {
        DeviceConfig {
            name: "Apple M1 (8-core GPU)".to_string(),
            peak_tmacs: 1.3,
            global_bw_gbps: 68.0,
            texture_bw_gbps: 68.0,
            caps: DeviceCaps::unified_no_texture(),
            kernel_launch_us: 30.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 8 << 20, line_bytes: 128, ways: 16 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 1.6e11,
            dtype: DType::F16,
        }
    }

    /// A server-class inference NPU: two orders of magnitude more MACs
    /// than any mobile GPU, pooled high-bandwidth unified memory, wide
    /// (256-byte) memory lines, command-queue dispatch — and *no*
    /// texture path, so every layout decision lands on 1D buffers. Its
    /// latency profile differs from every mobile GPU in the pool: launch
    /// overhead is negligible, and kernels are compute-bound far later
    /// (the roofline ridge sits at a much higher intensity).
    pub fn server_npu() -> Self {
        DeviceConfig {
            name: "Server NPU (64 TMACs, HBM)".to_string(),
            peak_tmacs: 64.0,
            global_bw_gbps: 1200.0,
            texture_bw_gbps: 1200.0,
            caps: DeviceCaps::server_npu(),
            kernel_launch_us: 8.0,
            memory_gb: 64.0,
            buffer_cache: CacheConfig { size_bytes: 32 << 20, line_bytes: 256, ways: 16 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 5.0e12,
            dtype: DType::F16,
        }
    }

    /// NVIDIA Tesla V100 in FP32 — the desktop comparison of Table 9.
    /// Texture memory is not used (the paper ports SmartMem to
    /// TorchInductor *excluding* the 2.5D layout optimization).
    pub fn tesla_v100() -> Self {
        DeviceConfig {
            name: "Tesla V100 (FP32)".to_string(),
            peak_tmacs: 7.0,
            global_bw_gbps: 900.0,
            texture_bw_gbps: 900.0,
            caps: DeviceCaps::discrete_gpu(),
            kernel_launch_us: 5.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 6 << 20, line_bytes: 128, ways: 16 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 2.0e12,
            dtype: DType::F32,
        }
    }

    /// Whether kernels may place tensors in texture memory.
    pub fn has_texture(&self) -> bool {
        self.caps.texture_path
    }

    /// The same device with AFBC toggled on or off — the A/B switch for
    /// the compressed-framebuffer study (see [`DeviceCaps::with_afbc`]).
    pub fn with_afbc(mut self, enabled: bool) -> Self {
        self.caps = self.caps.with_afbc(enabled);
        self
    }

    /// Stable machine-readable identifier derived from the name: the
    /// part before any parenthesized qualifier, lowercased, with
    /// non-alphanumeric runs collapsed to `_` (`"Mali-G710 (AFBC)"` →
    /// `"mali_g710"`). Bench JSON keys use this.
    pub fn slug(&self) -> String {
        let base = self.name.split('(').next().unwrap_or(&self.name);
        let mut slug = String::new();
        for c in base.trim().chars() {
            if c.is_ascii_alphanumeric() {
                slug.push(c.to_ascii_lowercase());
            } else if !slug.ends_with('_') {
                slug.push('_');
            }
        }
        slug.trim_matches('_').to_string()
    }

    /// Peak MACs per nanosecond.
    pub fn macs_per_ns(&self) -> f64 {
        self.peak_tmacs * 1e3
    }

    /// Raw DRAM bandwidth of the given memory class in bytes per
    /// nanosecond, before compression.
    pub fn bw_bytes_per_ns(&self, texture: bool) -> f64 {
        if texture {
            self.texture_bw_gbps
        } else {
            self.global_bw_gbps
        }
    }

    /// Effective bandwidth in *logical* bytes per nanosecond: raw DRAM
    /// bandwidth amplified by AFBC's compression gain on the texture
    /// path (compressed payload minus per-superblock metadata — see
    /// [`AfbcConfig::bandwidth_gain`]). Equal to
    /// [`DeviceConfig::bw_bytes_per_ns`] everywhere else.
    pub fn effective_bw_bytes_per_ns(&self, texture: bool) -> f64 {
        let raw = self.bw_bytes_per_ns(texture);
        match (texture, &self.caps.afbc) {
            (true, Some(afbc)) => raw * afbc.bandwidth_gain(self.dtype.size_bytes()),
            _ => raw,
        }
    }

    /// Memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gb * (1u64 << 30) as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_published_constants() {
        let d = DeviceConfig::snapdragon_8gen2();
        assert_eq!(d.global_bw_gbps, 55.0);
        assert_eq!(d.texture_bw_gbps, 511.0);
        assert_eq!(d.peak_tmacs, 2.0);
        assert!(d.has_texture());
        assert_eq!(d.dtype, DType::F16);
    }

    #[test]
    fn desktop_uses_fp32_without_texture() {
        let d = DeviceConfig::tesla_v100();
        assert!(!d.has_texture());
        assert!(!d.caps.unified_memory, "V100 is a discrete device");
        assert_eq!(d.dtype, DType::F32);
    }

    #[test]
    fn derived_units() {
        let d = DeviceConfig::snapdragon_8gen2();
        assert!((d.macs_per_ns() - 2000.0).abs() < 1e-9);
        assert!((d.bw_bytes_per_ns(false) - 55.0).abs() < 1e-9);
        assert!((d.bw_bytes_per_ns(true) - 511.0).abs() < 1e-9);
        // No AFBC: effective == raw.
        assert_eq!(d.effective_bw_bytes_per_ns(true), d.bw_bytes_per_ns(true));
        assert_eq!(d.memory_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn apple_is_unified_memory_without_texture_path() {
        let d = DeviceConfig::apple_m1();
        assert!(!d.has_texture(), "Metal compute exposes no 2.5D texture fast path here");
        assert!(d.caps.unified_memory);
        assert_eq!(d.global_bw_gbps, d.texture_bw_gbps, "unified memory: one bandwidth");
        assert_eq!(d.dtype, DType::F16);
        // Mobile-class peak, desktop-class launch overhead ordering.
        let snap = DeviceConfig::snapdragon_8gen2();
        assert!(d.kernel_launch_us < snap.kernel_launch_us);
        assert!(d.global_bw_gbps > snap.global_bw_gbps);
    }

    #[test]
    fn older_socs_are_strictly_weaker() {
        let new = DeviceConfig::snapdragon_8gen2();
        for old in [DeviceConfig::snapdragon_835(), DeviceConfig::dimensity_700()] {
            assert!(old.peak_tmacs < new.peak_tmacs);
            assert!(old.global_bw_gbps < new.global_bw_gbps);
            assert!(old.memory_gb < new.memory_gb);
        }
    }

    #[test]
    fn mali_afbc_amplifies_texture_bandwidth_only() {
        let mali = DeviceConfig::mali_g710();
        assert!(mali.has_texture());
        assert!(mali.caps.afbc.is_some());
        assert!(mali.effective_bw_bytes_per_ns(true) > mali.bw_bytes_per_ns(true));
        assert_eq!(mali.effective_bw_bytes_per_ns(false), mali.bw_bytes_per_ns(false));
        // The A/B toggle removes exactly the amplification.
        let off = mali.clone().with_afbc(false);
        assert!(off.caps.afbc.is_none());
        assert_eq!(off.effective_bw_bytes_per_ns(true), off.bw_bytes_per_ns(true));
        // Toggling back on restores the standard configuration.
        let on = off.with_afbc(true);
        assert_eq!(on.caps, mali.caps);
    }

    #[test]
    fn afbc_toggle_is_inert_without_a_texture_path() {
        let npu = DeviceConfig::server_npu().with_afbc(true);
        assert!(npu.caps.afbc.is_none(), "AFBC needs a texture path to compress");
    }

    #[test]
    fn server_npu_is_a_different_latency_class() {
        let npu = DeviceConfig::server_npu();
        assert!(!npu.has_texture());
        assert!(npu.caps.unified_memory);
        for gpu in [
            DeviceConfig::snapdragon_8gen2(),
            DeviceConfig::snapdragon_835(),
            DeviceConfig::dimensity_700(),
            DeviceConfig::mali_g710(),
            DeviceConfig::apple_m1(),
        ] {
            assert!(npu.peak_tmacs > 10.0 * gpu.peak_tmacs);
            assert!(npu.kernel_launch_us < gpu.kernel_launch_us);
            assert!(npu.global_bw_gbps > gpu.global_bw_gbps);
            // The compute/memory crossover (ridge point) of each
            // device's serving path (texture where the capability
            // exists) sits at a far higher intensity on the NPU: what
            // is compute-bound on mobile is memory-bound here.
            let ridge = |d: &DeviceConfig| {
                d.macs_per_ns() / d.effective_bw_bytes_per_ns(d.caps.texture_path)
            };
            assert!(ridge(&npu) > 2.0 * ridge(&gpu), "{} ridge", gpu.name);
        }
        assert!(npu.buffer_cache.line_bytes >= 256, "NPU uses wide memory lines");
    }

    #[test]
    fn caps_wire_roundtrip() {
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        for caps in [
            DeviceCaps::mobile_gpu(),
            DeviceCaps::mali_afbc(),
            DeviceCaps::unified_no_texture(),
            DeviceCaps::discrete_gpu(),
            DeviceCaps::server_npu(),
        ] {
            let back: DeviceCaps = decode_from(&encode_to_vec(&caps)).unwrap();
            assert_eq!(back, caps);
        }
    }

    #[test]
    fn slugs_are_stable_identifiers() {
        assert_eq!(DeviceConfig::mali_g710().slug(), "mali_g710");
        assert_eq!(DeviceConfig::snapdragon_8gen2().slug(), "snapdragon_8_gen_2");
        assert_eq!(DeviceConfig::server_npu().slug(), "server_npu");
        assert_eq!(DeviceConfig::tesla_v100().slug(), "tesla_v100");
    }
}
