//! Device configurations for the platforms evaluated in the paper.

use crate::cache::CacheConfig;
use crate::memory::TextureTiling;
use smartmem_ir::DType;

/// Performance-relevant constants of one execution platform.
///
/// The mobile presets reproduce the published characteristics the paper
/// relies on (§4.1 and the §4.6 roofline: 55 GB/s global bandwidth,
/// 511 GB/s texture bandwidth and 2.0 TMACs/s peak on the Snapdragon
/// 8 Gen 2); the older SoCs are scaled from their public spec sheets.
/// Desktop GPUs expose no performance-relevant texture path in this
/// model (the paper's TorchInductor comparison explicitly excludes the
/// 2.5D-memory optimization).
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Peak multiply-accumulate throughput in tera-MACs/s at the
    /// evaluation precision.
    pub peak_tmacs: f64,
    /// Global (1D buffer) memory bandwidth in GB/s.
    pub global_bw_gbps: f64,
    /// Texture (2.5D) memory bandwidth in GB/s.
    pub texture_bw_gbps: f64,
    /// Whether kernels may place tensors in texture memory.
    pub has_texture: bool,
    /// Fixed per-kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Unified/device memory capacity in GiB (OOM threshold for Fig. 11).
    pub memory_gb: f64,
    /// Geometry of the (L2) data cache in front of global memory.
    pub buffer_cache: CacheConfig,
    /// Geometry of the dedicated texture cache.
    pub texture_cache: CacheConfig,
    /// 2-D tile shape of one texture-cache line.
    pub texture_tiling: TextureTiling,
    /// Effective throughput for scalar index arithmetic, in weighted
    /// index-ops per second (see `smartmem_index::ExprCost::weighted`).
    pub index_ops_per_sec: f64,
    /// Evaluation element type (`F16` on mobile, `F32` on desktop —
    /// §4.1).
    pub dtype: DType,
}

impl DeviceConfig {
    /// Snapdragon 8 Gen 2 (Adreno 740) — the paper's primary platform.
    pub fn snapdragon_8gen2() -> Self {
        DeviceConfig {
            name: "Snapdragon 8 Gen 2 (Adreno 740)".to_string(),
            peak_tmacs: 2.0,
            global_bw_gbps: 55.0,
            texture_bw_gbps: 511.0,
            has_texture: true,
            kernel_launch_us: 100.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 1 << 20, line_bytes: 64, ways: 8 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 2.5e11,
            dtype: DType::F16,
        }
    }

    /// Snapdragon 835 (Adreno 540) — older flagship used for the
    /// portability study (Fig. 11b).
    pub fn snapdragon_835() -> Self {
        DeviceConfig {
            name: "Snapdragon 835 (Adreno 540)".to_string(),
            peak_tmacs: 0.4,
            global_bw_gbps: 29.0,
            texture_bw_gbps: 190.0,
            has_texture: true,
            kernel_launch_us: 130.0,
            memory_gb: 6.0,
            buffer_cache: CacheConfig { size_bytes: 512 << 10, line_bytes: 64, ways: 8 },
            texture_cache: CacheConfig { size_bytes: 64 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 0.8e11,
            dtype: DType::F16,
        }
    }

    /// MediaTek Dimensity 700 (Mali-G57) — the resource-constrained
    /// platform of Fig. 11a (4 GB unified memory).
    pub fn dimensity_700() -> Self {
        DeviceConfig {
            name: "Dimensity 700 (Mali-G57)".to_string(),
            peak_tmacs: 0.25,
            global_bw_gbps: 17.0,
            texture_bw_gbps: 100.0,
            has_texture: true,
            kernel_launch_us: 160.0,
            memory_gb: 4.0,
            buffer_cache: CacheConfig { size_bytes: 512 << 10, line_bytes: 64, ways: 4 },
            texture_cache: CacheConfig { size_bytes: 32 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 0.5e11,
            dtype: DType::F16,
        }
    }

    /// Apple M1 (8-core GPU) — an Apple-class unified-memory platform.
    ///
    /// Metal exposes no performance-relevant 2.5D texture path for
    /// compute (no `__read_only image2d_t` fast path as on Adreno/Mali),
    /// so `has_texture` is false and both bandwidth figures collapse to
    /// the unified-memory bandwidth (~68 GB/s on the base M1). Peak is
    /// ~2.6 TFLOPs FP32, evaluated here as ~1.3 TMACs at F16.
    pub fn apple_m1() -> Self {
        DeviceConfig {
            name: "Apple M1 (8-core GPU)".to_string(),
            peak_tmacs: 1.3,
            global_bw_gbps: 68.0,
            texture_bw_gbps: 68.0,
            has_texture: false,
            kernel_launch_us: 30.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 8 << 20, line_bytes: 128, ways: 16 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 1.6e11,
            dtype: DType::F16,
        }
    }

    /// NVIDIA Tesla V100 in FP32 — the desktop comparison of Table 9.
    /// Texture memory is not used (the paper ports SmartMem to
    /// TorchInductor *excluding* the 2.5D layout optimization).
    pub fn tesla_v100() -> Self {
        DeviceConfig {
            name: "Tesla V100 (FP32)".to_string(),
            peak_tmacs: 7.0,
            global_bw_gbps: 900.0,
            texture_bw_gbps: 900.0,
            has_texture: false,
            kernel_launch_us: 5.0,
            memory_gb: 16.0,
            buffer_cache: CacheConfig { size_bytes: 6 << 20, line_bytes: 128, ways: 16 },
            texture_cache: CacheConfig { size_bytes: 128 << 10, line_bytes: 64, ways: 4 },
            texture_tiling: TextureTiling { tile_w: 4, tile_h: 2 },
            index_ops_per_sec: 2.0e12,
            dtype: DType::F32,
        }
    }

    /// Peak MACs per nanosecond.
    pub fn macs_per_ns(&self) -> f64 {
        self.peak_tmacs * 1e3
    }

    /// Bandwidth of the given memory class in bytes per nanosecond.
    pub fn bw_bytes_per_ns(&self, texture: bool) -> f64 {
        if texture {
            self.texture_bw_gbps
        } else {
            self.global_bw_gbps
        }
    }

    /// Memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gb * (1u64 << 30) as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_published_constants() {
        let d = DeviceConfig::snapdragon_8gen2();
        assert_eq!(d.global_bw_gbps, 55.0);
        assert_eq!(d.texture_bw_gbps, 511.0);
        assert_eq!(d.peak_tmacs, 2.0);
        assert!(d.has_texture);
        assert_eq!(d.dtype, DType::F16);
    }

    #[test]
    fn desktop_uses_fp32_without_texture() {
        let d = DeviceConfig::tesla_v100();
        assert!(!d.has_texture);
        assert_eq!(d.dtype, DType::F32);
    }

    #[test]
    fn derived_units() {
        let d = DeviceConfig::snapdragon_8gen2();
        assert!((d.macs_per_ns() - 2000.0).abs() < 1e-9);
        assert!((d.bw_bytes_per_ns(false) - 55.0).abs() < 1e-9);
        assert!((d.bw_bytes_per_ns(true) - 511.0).abs() < 1e-9);
        assert_eq!(d.memory_bytes(), 16 * (1u64 << 30));
    }

    #[test]
    fn apple_is_unified_memory_without_texture_path() {
        let d = DeviceConfig::apple_m1();
        assert!(!d.has_texture, "Metal compute exposes no 2.5D texture fast path here");
        assert_eq!(d.global_bw_gbps, d.texture_bw_gbps, "unified memory: one bandwidth");
        assert_eq!(d.dtype, DType::F16);
        // Mobile-class peak, desktop-class launch overhead ordering.
        let snap = DeviceConfig::snapdragon_8gen2();
        assert!(d.kernel_launch_us < snap.kernel_launch_us);
        assert!(d.global_bw_gbps > snap.global_bw_gbps);
    }

    #[test]
    fn older_socs_are_strictly_weaker() {
        let new = DeviceConfig::snapdragon_8gen2();
        for old in [DeviceConfig::snapdragon_835(), DeviceConfig::dimensity_700()] {
            assert!(old.peak_tmacs < new.peak_tmacs);
            assert!(old.global_bw_gbps < new.global_bw_gbps);
            assert!(old.memory_gb < new.memory_gb);
        }
    }
}
