//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] is a seeded oracle that every fault-injection seam
//! (worker execution, scheduler placement, disk-cache I/O, deadline
//! assignment) consults before doing its real work. Decisions are pure
//! functions of `(seed, fault kind, identity)` so the same plan makes
//! the same calls in any thread interleaving:
//!
//! * **request-keyed** faults ([`FaultPlan::fault_for`]) hash a stable
//!   per-request tag — the curse follows the request across retries,
//!   re-placements, and even resubmission to another replica;
//! * **site-keyed** faults ([`FaultPlan::roll`]) draw from an
//!   independent counter-indexed stream per `(kind, site)` — the n-th
//!   draw at a site is always the same, regardless of what other sites
//!   do.
//!
//! A plan with all-zero rates ([`FaultPlan::inert`]) never fires, so
//! `Some(inert)` is behaviourally identical to `None` — the chaos suite
//! pins that equivalence byte-for-byte.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The taxonomy of injectable faults. Each kind maps to one seam in
/// the serving stack:
///
/// | Kind | Seam | Effect |
/// |------|------|--------|
/// | [`DeviceStall`](FaultKind::DeviceStall) | worker, per batch | the device sleeps [`FaultPlan::stall_duration`] before executing |
/// | [`DeviceDeath`](FaultKind::DeviceDeath) | worker, per batch | the device is marked dead; its queued + claimed requests are re-placed |
/// | [`ExecError`](FaultKind::ExecError) | worker, per request | the request's first execution attempt fails transiently |
/// | [`CompileFault`](FaultKind::CompileFault) | worker, per request | the request's first compilation fails transiently |
/// | [`CacheDirIo`](FaultKind::CacheDirIo) | disk cache, per I/O | a payload read/write errors (falls back to cold compile / skips persist) |
/// | [`ClockSkew`](FaultKind::ClockSkew) | admission, per request | the request's deadline is tightened by [`FaultPlan::skew`] |
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Transient device slowdown: the batch executes late.
    DeviceStall,
    /// Permanent device loss: queued and claimed work must move.
    DeviceDeath,
    /// Transient per-request execution error.
    ExecError,
    /// Transient per-request compilation failure.
    CompileFault,
    /// Disk-cache payload I/O error.
    CacheDirIo,
    /// Deadline tightened as if the client clock ran ahead.
    ClockSkew,
}

impl FaultKind {
    /// All kinds, in the order used by counter arrays.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::DeviceStall,
        FaultKind::DeviceDeath,
        FaultKind::ExecError,
        FaultKind::CompileFault,
        FaultKind::CacheDirIo,
        FaultKind::ClockSkew,
    ];

    /// Stable index into [`FaultKind::ALL`]-ordered arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::DeviceStall => 0,
            FaultKind::DeviceDeath => 1,
            FaultKind::ExecError => 2,
            FaultKind::CompileFault => 3,
            FaultKind::CacheDirIo => 4,
            FaultKind::ClockSkew => 5,
        }
    }

    /// Short stable name, used in telemetry instant events and stats
    /// tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DeviceStall => "device_stall",
            FaultKind::DeviceDeath => "device_death",
            FaultKind::ExecError => "exec_error",
            FaultKind::CompileFault => "compile_fault",
            FaultKind::CacheDirIo => "cache_dir_io",
            FaultKind::ClockSkew => "clock_skew",
        }
    }
}

/// Per-kind fault probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a batch execution stalls.
    pub device_stall: f64,
    /// Probability a batch execution kills its device.
    pub device_death: f64,
    /// Probability a request's first execution attempt fails.
    pub exec_error: f64,
    /// Probability a request's first compilation fails.
    pub compile_fault: f64,
    /// Probability a disk-cache payload I/O errors.
    pub cache_dir_io: f64,
    /// Probability a request's deadline is skew-tightened.
    pub clock_skew: f64,
}

impl FaultRates {
    /// The same rate for every kind.
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            device_stall: rate,
            device_death: rate,
            exec_error: rate,
            compile_fault: rate,
            cache_dir_io: rate,
            clock_skew: rate,
        }
    }

    /// Only the transient request-keyed kinds (exec error at `rate`,
    /// compile fault at `rate / 2`) — the mix `serve_bench --fault-rate`
    /// uses, chosen so every injected fault is recoverable by retry.
    pub fn transient(rate: f64) -> Self {
        FaultRates { exec_error: rate, compile_fault: rate / 2.0, ..FaultRates::default() }
    }

    /// The rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DeviceStall => self.device_stall,
            FaultKind::DeviceDeath => self.device_death,
            FaultKind::ExecError => self.exec_error,
            FaultKind::CompileFault => self.compile_fault,
            FaultKind::CacheDirIo => self.cache_dir_io,
            FaultKind::ClockSkew => self.clock_skew,
        }
    }

    /// True when every rate is zero — the plan can never fire.
    pub fn is_zero(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.rate(k) <= 0.0)
    }
}

const DEFAULT_STALL: Duration = Duration::from_millis(2);
const DEFAULT_SKEW: Duration = Duration::from_millis(5);

/// A seeded, deterministic fault schedule. Thread-safe; shared as
/// `Arc<FaultPlan>` between a server, its compile session's disk
/// cache, and (in fleet benches) sibling replicas.
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    stall: Duration,
    skew: Duration,
    injected: [AtomicU64; 6],
    streams: Mutex<HashMap<(usize, usize), u64>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rates", &self.rates)
            .field("injected", &self.injected_counts())
            .finish()
    }
}

impl FaultPlan {
    /// A plan firing with probabilities `rates`, all decisions derived
    /// from `seed`.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            stall: DEFAULT_STALL,
            skew: DEFAULT_SKEW,
            injected: Default::default(),
            streams: Mutex::new(HashMap::new()),
        }
    }

    /// A plan that never fires. `Some(FaultPlan::inert())` behaves
    /// identically to no plan at all.
    pub fn inert() -> Self {
        FaultPlan::new(0, FaultRates::default())
    }

    /// Set the sleep injected by [`FaultKind::DeviceStall`].
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Set the deadline tightening injected by [`FaultKind::ClockSkew`].
    pub fn with_skew(mut self, skew: Duration) -> Self {
        self.skew = skew;
        self
    }

    /// The seed all decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured per-kind rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// True when the plan can never fire (all rates zero).
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero()
    }

    /// Injected stall length.
    pub fn stall_duration(&self) -> Duration {
        self.stall
    }

    /// Injected deadline tightening.
    pub fn skew(&self) -> Duration {
        self.skew
    }

    /// Pure probe: would `kind` fire for the request identified by
    /// `identity`? Same answer every call; never counts an injection.
    /// Benches use this to predict exactly which requests a plan will
    /// curse.
    pub fn would_fault(&self, kind: FaultKind, identity: u64) -> bool {
        self.decide(kind, identity)
    }

    /// Request-keyed draw: fire `kind` for the request identified by
    /// `identity`? Deterministic in `identity` (thread-schedule
    /// independent); counts the injection when it fires.
    pub fn fault_for(&self, kind: FaultKind, identity: u64) -> bool {
        let hit = self.decide(kind, identity);
        if hit {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Site-keyed draw: the n-th call for a given `(kind, site)` pair
    /// always returns the same answer — each site has an independent
    /// deterministic stream. Counts the injection when it fires.
    pub fn roll(&self, kind: FaultKind, site: usize) -> bool {
        if self.rates.rate(kind) <= 0.0 {
            return false;
        }
        let n = {
            let mut streams = self.streams.lock().unwrap();
            let ctr = streams.entry((kind.index(), site)).or_insert(0);
            let n = *ctr;
            *ctr += 1;
            n
        };
        let token = (site as u64) << 32 | n;
        let hit = self.decide(kind, token ^ 0x5151_7e5e_0ff5_e75a);
        if hit {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many times `kind` has fired through this plan.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Per-kind injection counts, [`FaultKind::ALL`]-ordered.
    pub fn injected_counts(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for (i, c) in self.injected.iter().enumerate() {
            out[i] = c.load(Ordering::Relaxed);
        }
        out
    }

    /// Total injections across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected_counts().iter().sum()
    }

    fn decide(&self, kind: FaultKind, token: u64) -> bool {
        let rate = self.rates.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let z = splitmix64(
            self.seed ^ splitmix64(kind.index() as u64 + 1).wrapping_add(splitmix64(token)),
        );
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::inert();
        for &kind in &FaultKind::ALL {
            for id in 0..1000 {
                assert!(!plan.fault_for(kind, id));
                assert!(!plan.roll(kind, id as usize % 7));
            }
        }
        assert_eq!(plan.total_injected(), 0);
        assert!(plan.is_inert());
    }

    #[test]
    fn rate_one_always_fires() {
        let plan = FaultPlan::new(3, FaultRates::uniform(1.0));
        for id in 0..100 {
            assert!(plan.fault_for(FaultKind::ExecError, id));
        }
        assert_eq!(plan.injected(FaultKind::ExecError), 100);
    }

    #[test]
    fn request_keyed_draws_are_stable_and_seed_sensitive() {
        let a = FaultPlan::new(42, FaultRates::uniform(0.3));
        let b = FaultPlan::new(42, FaultRates::uniform(0.3));
        let c = FaultPlan::new(43, FaultRates::uniform(0.3));
        let decide = |p: &FaultPlan| -> Vec<bool> {
            (0..512).map(|id| p.would_fault(FaultKind::CompileFault, id)).collect()
        };
        assert_eq!(decide(&a), decide(&b));
        assert_ne!(decide(&a), decide(&c));
        // Re-probing does not change answers and would_fault never counts.
        assert_eq!(decide(&a), decide(&a));
        assert_eq!(a.total_injected(), 0);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7, FaultRates::uniform(0.25));
        let hits = (0..4000).filter(|&id| plan.would_fault(FaultKind::ExecError, id)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn site_streams_are_independent_and_sequential() {
        let seq = |plan: &FaultPlan, site: usize, n: usize| -> Vec<bool> {
            (0..n).map(|_| plan.roll(FaultKind::DeviceStall, site)).collect()
        };
        let a = FaultPlan::new(9, FaultRates::uniform(0.5));
        let b = FaultPlan::new(9, FaultRates::uniform(0.5));
        // Same plan params: site streams replay identically no matter
        // how draws from other sites interleave.
        let a0 = seq(&a, 0, 64);
        let _ = seq(&a, 1, 13);
        let a0_more = seq(&a, 0, 64);
        let b0 = seq(&b, 0, 128);
        let mut combined = a0.clone();
        combined.extend(a0_more);
        assert_eq!(combined, b0);
        assert_ne!(a0, seq(&b, 1, 64));
    }

    #[test]
    fn shared_plan_counts_across_threads() {
        let plan = Arc::new(FaultPlan::new(5, FaultRates::uniform(1.0)));
        let mut handles = Vec::new();
        for t in 0..4 {
            let plan = Arc::clone(&plan);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    assert!(plan.fault_for(FaultKind::CacheDirIo, t * 100 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(plan.injected(FaultKind::CacheDirIo), 200);
    }

    #[test]
    fn transient_rates_cover_only_request_keyed_kinds() {
        let r = FaultRates::transient(0.2);
        assert_eq!(r.rate(FaultKind::ExecError), 0.2);
        assert_eq!(r.rate(FaultKind::CompileFault), 0.1);
        assert_eq!(r.rate(FaultKind::DeviceDeath), 0.0);
        assert_eq!(r.rate(FaultKind::CacheDirIo), 0.0);
        assert!(!r.is_zero());
        assert!(FaultRates::default().is_zero());
    }
}
