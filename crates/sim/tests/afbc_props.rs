//! Property tests for the AFBC bandwidth model and the device
//! capability descriptor.
//!
//! The load-bearing invariant: lossless framebuffer compression can
//! only ever *help* a memory-bound kernel — more compression never
//! produces more DRAM traffic, a lower roofline, or a slower kernel.
//! And because compiled artifacts are cached per device fingerprint,
//! `DeviceCaps` must survive the wire codec bit-exactly.

use proptest::prelude::*;
use smartmem_ir::wire::{decode_from, encode_to_vec};
use smartmem_sim::{roofline_gmacs, AfbcConfig, DeviceCaps, DeviceConfig, KernelProfile};

fn mali_with_ratio(ratio: f64) -> DeviceConfig {
    let mut d = DeviceConfig::mali_g710();
    d.caps.afbc = Some(AfbcConfig { compression_ratio: ratio, ..AfbcConfig::mali_default() });
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More compression never slows a memory-bound kernel: the
    /// texture-path memory time is monotonically non-increasing in the
    /// compression ratio, at every bandwidth-efficiency level.
    #[test]
    fn afbc_memory_time_monotone_in_compression(
        base_centi in 100u64..400,      // ratio 1.00..4.00
        delta_centi in 0u64..300,       // ratio increment 0.00..3.00
        kib in 1u64..4096,              // texture traffic 1 KiB..4 MiB
        util_pct in 2u64..96,
    ) {
        let lo = mali_with_ratio(base_centi as f64 / 100.0);
        let hi = mali_with_ratio((base_centi + delta_centi) as f64 / 100.0);
        let profile = KernelProfile {
            dram_bytes_texture: kib << 10,
            utilization: util_pct as f64 / 100.0,
            ..Default::default()
        };
        let slow = lo.kernel_cost(&profile).memory_ns;
        let fast = hi.kernel_cost(&profile).memory_ns;
        prop_assert!(fast <= slow + 1e-9, "ratio up, memory time up: {fast} > {slow}");
    }

    /// The texture roofline is monotone non-decreasing in the
    /// compression ratio and never sinks below the uncompressed roof
    /// whenever compression at least covers the metadata overhead.
    #[test]
    fn afbc_roofline_monotone_in_compression(
        base_centi in 100u64..400,
        delta_centi in 0u64..300,
        intensity_milli in 1u64..100_000, // 0.001..100 MACs/byte
    ) {
        let intensity = intensity_milli as f64 / 1000.0;
        let lo = mali_with_ratio(base_centi as f64 / 100.0);
        let hi = mali_with_ratio((base_centi + delta_centi) as f64 / 100.0);
        let roof_lo = roofline_gmacs(&lo, intensity, true);
        let roof_hi = roofline_gmacs(&hi, intensity, true);
        prop_assert!(roof_hi + 1e-9 >= roof_lo, "ratio up, roof down: {roof_hi} < {roof_lo}");
        // The buffer path is untouched by AFBC.
        prop_assert_eq!(
            roofline_gmacs(&lo, intensity, false).to_bits(),
            roofline_gmacs(&hi, intensity, false).to_bits()
        );
    }

    /// DRAM traffic through AFBC is monotone in the payload and bounded
    /// below by the incompressible payload plus its metadata.
    #[test]
    fn afbc_dram_bytes_sane(
        ratio_centi in 100u64..500,
        payload in 1u64..(64 << 20),
        elem_choice in 0u32..3,
    ) {
        let elem = 1u64 << elem_choice; // 1, 2 or 4 bytes per element
        let afbc = AfbcConfig {
            compression_ratio: ratio_centi as f64 / 100.0,
            ..AfbcConfig::mali_default()
        };
        let bytes = afbc.dram_bytes(payload as f64, elem);
        let floor = payload as f64 / afbc.compression_ratio;
        prop_assert!(bytes >= floor, "traffic {bytes} below compressed payload {floor}");
        prop_assert!(bytes <= payload as f64 * 1.5, "metadata cannot exceed payload here");
        prop_assert!(afbc.bandwidth_gain(elem) >= 1.0 / 1.5);
    }

    /// Capability descriptors round-trip the wire codec bit-exactly —
    /// cache artifacts are keyed per device, so a lossy encode would
    /// silently alias distinct devices.
    #[test]
    fn device_caps_wire_roundtrip(
        flags in 0u32..8,
        ratio_centi in 100u64..500,
        superblock_choice in 3u32..6,
        metadata in 0u64..64,
        extent in 0u64..65536,
    ) {
        let (texture, afbc_on, unified) = (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let caps = DeviceCaps {
            texture_path: texture,
            afbc: (texture && afbc_on).then(|| AfbcConfig {
                compression_ratio: ratio_centi as f64 / 100.0,
                superblock_texels: 1 << superblock_choice, // 8, 16 or 32
                metadata_bytes: metadata,
            }),
            unified_memory: unified,
            max_texture_extent: extent,
        };
        let back: DeviceCaps = decode_from(&encode_to_vec(&caps)).unwrap();
        prop_assert_eq!(back, caps);
    }
}

#[test]
fn every_preset_caps_roundtrips() {
    for device in [
        DeviceConfig::snapdragon_8gen2(),
        DeviceConfig::snapdragon_835(),
        DeviceConfig::dimensity_700(),
        DeviceConfig::mali_g710(),
        DeviceConfig::apple_m1(),
        DeviceConfig::server_npu(),
        DeviceConfig::tesla_v100(),
    ] {
        let back: DeviceCaps = decode_from(&encode_to_vec(&device.caps)).unwrap();
        assert_eq!(back, device.caps, "{}", device.name);
    }
}
