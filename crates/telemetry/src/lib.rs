//! `smartmem-telemetry` — low-overhead tracing and metrics for the
//! SmartMem stack.
//!
//! The stack's observability questions ("where did this request's
//! latency go?", "did the compile cache hit?", "did telemetry itself
//! slow serving down?") are answered by two primitives and their
//! exporters:
//!
//! * **Spans** — a [`Tracer`] mints one [`TraceId`] per sampled request
//!   at admission and records named, timestamped spans (`queue`,
//!   `compile`, `execute`, `request`) into bounded per-thread ring
//!   buffers as the request moves through the server. A drained
//!   [`Trace`] exports to Chrome `trace_event` JSON
//!   ([`render_chrome`], loadable in `chrome://tracing` or Perfetto)
//!   or reduces to a terminal digest ([`summarize`]).
//! * **Metrics** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s,
//!   and log-bucketed [`Histogram`]s, updatable from any thread with
//!   one atomic op. [`flatten`] turns a [`MetricsSnapshot`] into flat
//!   `(name, value)` pairs for the bench-JSON regression gate.
//!
//! Both are built to be left on in benchmarks: the disabled tracer
//! path is a single relaxed atomic load, the enabled path takes only a
//! thread-local lock, and memory is bounded by the ring capacity. The
//! serving benchmark measures the remaining overhead and the CI gate
//! (`telemetry_overhead_pct` in `bench/baseline.json`) keeps it small.
//!
//! Everything is `std`-only — the container builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod metrics;
mod ring;
mod summary;
mod trace;

pub use chrome::{parse_chrome, render_chrome};
pub use metrics::{
    flatten, global, Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricValue,
    MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use ring::RingBuffer;
pub use summary::{summarize, PhaseStat, TraceSummary, REQUEST_SPAN, SLOWEST_SPANS};
pub use trace::{now_ns, thread_lane, SpanGuard, SpanKind, SpanRecord, Trace, TraceId, Tracer};

use std::sync::Arc;

/// One handle bundling the two telemetry halves, for components (the
/// server) that own their observability so tests stay isolated from
/// each other and from [`global()`].
///
/// ```
/// use smartmem_telemetry::Telemetry;
///
/// let t = Telemetry::enabled(4096, 1);
/// assert!(t.tracer.is_enabled());
/// let off = Telemetry::disabled();
/// assert!(!off.tracer.is_enabled());
/// assert!(off.registry.is_empty());
/// ```
#[derive(Clone)]
pub struct Telemetry {
    /// Span recorder.
    pub tracer: Tracer,
    /// Metrics registry.
    pub registry: Arc<Registry>,
}

impl Telemetry {
    /// Recording telemetry: per-thread span rings of `capacity`,
    /// sampling one request in every `sample_every`.
    pub fn enabled(capacity: usize, sample_every: u64) -> Self {
        Telemetry {
            tracer: Tracer::new(capacity, sample_every),
            registry: Arc::new(Registry::new()),
        }
    }

    /// Non-recording telemetry: the tracer mints nothing and records
    /// nothing. The registry still works (metrics are cheap and some —
    /// fallback counters — must count even unobserved).
    pub fn disabled() -> Self {
        Telemetry { tracer: Tracer::disabled(), registry: Arc::new(Registry::new()) }
    }
}
