//! A bounded ring buffer that drops the *oldest* entries on overflow.
//!
//! The span recorder's per-thread logs are built on this: a trace is a
//! window over the most recent activity, so when a buffer fills the
//! right thing to lose is the far past, not the present — and the loss
//! must be *accounted* (`dropped`), never silent, so exporters can say
//! "this trace is a suffix".

use std::collections::VecDeque;

/// Fixed-capacity FIFO that evicts the oldest element when full,
/// counting every eviction.
///
/// ```
/// use smartmem_telemetry::RingBuffer;
///
/// let mut ring = RingBuffer::new(2);
/// ring.push(1);
/// ring.push(2);
/// ring.push(3); // evicts 1
/// assert_eq!(ring.dropped(), 1);
/// assert_eq!(ring.drain(), vec![2, 3]);
/// assert_eq!(ring.dropped(), 1, "draining keeps the loss accounted");
/// ```
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Empty ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (a ring that can hold nothing would drop
    /// every push silently-by-construction).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Appends `value`, evicting (and counting) the oldest element when
    /// the ring is full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Removes and returns every held element, oldest first. The
    /// dropped count survives the drain.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total elements evicted by overflow since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_up_to_capacity_without_dropping() {
        let mut ring = RingBuffer::new(4);
        for i in 0..4 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.drain(), vec![0, 1, 2, 3]);
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.drain(), vec![7, 8, 9], "the newest survive");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
