//! The process-wide metrics layer: counters, gauges, log-bucketed
//! histograms, and the named [`Registry`] they live in.
//!
//! Everything here is updatable from any thread without a lock on the
//! hot path: counters and gauges are single atomics, histograms are a
//! fixed array of per-bucket atomics (one `fetch_add` per record). The
//! registry's mutex is only taken to *look up or create* a metric by
//! name — callers are expected to resolve their metrics once and hold
//! the `Arc`.
//!
//! Values are unit-agnostic `u64`s; by convention durations are
//! recorded in **nanoseconds** and the metric name carries the unit
//! suffix (`queue_wait_ns`). Exporters convert where humans read.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Gauge initialized to `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)` (bucket 0 holds exactly zero). 65 buckets
/// cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Lock-free log-bucketed histogram (power-of-two buckets).
///
/// A record is one `fetch_add` into the bucket indexed by the value's
/// bit length, plus count/sum updates — cheap enough for per-request
/// paths. The trade is resolution: a bucket spans a 2× range, so
/// percentiles are estimates (the geometric midpoint of the bucket,
/// exact for the zero bucket). For latency SLO gating that factor-of-2
/// resolution is the right price for never locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `value`: its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the current state. (Concurrent records
    /// may straddle the loads; each observation still lands exactly
    /// once in a later snapshot.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Single-observation snapshot (the unit of [`merge`]).
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub fn of(value: u64) -> Self {
        let mut s = HistogramSnapshot::default();
        s.buckets[bucket_of(value)] = 1;
        s.count = 1;
        s.sum = value;
        s
    }

    /// Combines two snapshots bucket-wise. Merging is associative and
    /// commutative with [`HistogramSnapshot::default`] as the identity,
    /// so partial histograms from many threads/shards can be combined
    /// in any order.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> Self {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Mean observed value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`p` in `[0, 100]`): the geometric
    /// midpoint of the bucket holding the nearest-rank observation.
    /// Exact for the zero bucket; within 2× otherwise. `0.0` when
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        unreachable!("rank {rank} exceeds count {}", self.count)
    }
}

/// One metric handle, as stored in a [`Registry`].
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state (boxed: a snapshot is ~66 words, the other
    /// variants one).
    Histogram(Box<HistogramSnapshot>),
}

/// Point-in-time copy of a whole registry, ordered by metric name.
pub type MetricsSnapshot = BTreeMap<String, MetricValue>;

/// Flattens a snapshot into `(name, value)` pairs: counters and gauges
/// verbatim, histograms expanded into `.count` / `.mean` / `.p50` /
/// `.p99` — the shape the flat bench-JSON exporter and the regression
/// gate consume.
pub fn flatten(snapshot: &MetricsSnapshot) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(c) => out.push((name.clone(), *c as f64)),
            MetricValue::Gauge(g) => out.push((name.clone(), *g)),
            MetricValue::Histogram(h) => {
                out.push((format!("{name}.count"), h.count as f64));
                out.push((format!("{name}.mean"), h.mean()));
                out.push((format!("{name}.p50"), h.percentile(50.0)));
                out.push((format!("{name}.p99"), h.percentile(99.0)));
            }
        }
    }
    out
}

/// A named collection of metrics. Lookup-or-create takes the registry
/// mutex; updating a resolved metric never does.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<HashMap<String, Metric>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different metric
    /// kind — two subsystems disagreeing about what a name *is* would
    /// corrupt every export downstream.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if let Some(m) = metrics.get(name) {
            return m.clone();
        }
        let m = make();
        metrics.insert(name.to_string(), m.clone());
        m
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("metrics registry poisoned").len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide registry, for layers with no natural owner to hand
/// them one (the compilation session publishes its cache and pass
/// timings here). Components with a lifecycle of their own (a server)
/// should own a [`Registry`] instead so tests stay isolated.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("requests");
        c.incr();
        c.add(2);
        r.gauge("depth").set(3.5);
        assert_eq!(r.counter("requests").get(), 3, "same name resolves to the same counter");
        assert_eq!(r.gauge("depth").get(), 3.5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        let p50 = s.percentile(50.0);
        // The median observation is 400; the estimate must stay within
        // its bucket [256, 512).
        assert!((256.0..512.0).contains(&p50), "p50 {p50}");
        let p99 = s.percentile(99.0);
        assert!((65536.0..131072.0).contains(&p99), "p99 {p99}");
        assert_eq!(s.percentile(0.0), s.percentile(1.0), "rank clamps at the first observation");
    }

    #[test]
    fn zero_bucket_is_exact() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().percentile(99.0), 0.0);
    }

    #[test]
    fn snapshot_flatten_expands_histograms() {
        let r = Registry::new();
        r.counter("a").add(7);
        r.histogram("lat_ns").record(1000);
        let flat = flatten(&r.snapshot());
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "lat_ns.count", "lat_ns.mean", "lat_ns.p50", "lat_ns.p99"]);
        assert_eq!(flat[0].1, 7.0);
        assert_eq!(flat[2].1, 1000.0);
    }
}
