//! Human-readable trace digestion: per-phase breakdowns, slowest
//! spans, and queue-wait vs execute attribution.
//!
//! [`summarize`] reduces a [`Trace`] to a [`TraceSummary`];
//! [`TraceSummary::render`] formats it for a terminal. The `trace_view`
//! bench binary is a thin CLI over this pair, and CI's smoke check uses
//! [`TraceSummary::complete_requests`] to assert a captured trace
//! actually contains end-to-end request spans.

use crate::trace::{SpanKind, SpanRecord, Trace, TraceId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate over all complete spans sharing one name (a *phase*:
/// `queue`, `compile`, `execute`, `request`, …).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Span name the spans were grouped by.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Summed duration, ns.
    pub total_ns: u64,
    /// Longest single span, ns.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Mean span duration, ns (`0.0` when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Everything [`summarize`] extracts from one trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Per-phase aggregates, largest total first.
    pub phases: Vec<PhaseStat>,
    /// The slowest complete spans, longest first (capped at
    /// [`SLOWEST_SPANS`]).
    pub slowest: Vec<SpanRecord>,
    /// Requests with a complete end-to-end `request` span.
    pub requests: u64,
    /// Summed `queue` span time across requests, ns.
    pub queue_ns: u64,
    /// Summed `execute` span time across requests, ns.
    pub execute_ns: u64,
    /// Summed end-to-end `request` span time, ns.
    pub request_ns: u64,
    /// Instant events (warnings, cancellations) by name.
    pub instants: BTreeMap<String, u64>,
    /// Spans lost to ring overflow before the drain.
    pub dropped: u64,
}

/// How many slowest spans a summary retains.
pub const SLOWEST_SPANS: usize = 10;

/// Span name of the end-to-end request phase ([`TraceSummary::requests`]
/// counts complete spans with this name and a real [`TraceId`]).
pub const REQUEST_SPAN: &str = "request";

impl TraceSummary {
    /// Complete end-to-end request spans seen — the CI smoke check
    /// requires ≥ 1 in a captured trace.
    pub fn complete_requests(&self) -> u64 {
        self.requests
    }

    /// Share of summed request wall time attributed to phase spans
    /// named `name` (`0.0` when no request time was recorded).
    pub fn share_of_request(&self, phase_ns: u64) -> f64 {
        if self.request_ns == 0 {
            0.0
        } else {
            phase_ns as f64 / self.request_ns as f64
        }
    }

    /// Terminal-friendly rendering: phase table, queue vs execute
    /// attribution, slowest spans, instant events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} complete request span(s), {} span(s) dropped in ring overflow",
            self.requests, self.dropped
        );
        out.push_str("\nper-phase breakdown (complete spans):\n");
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>12} {:>12} {:>12}",
            "phase", "count", "total_ms", "mean_ms", "max_ms"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>12.3} {:>12.3} {:>12.3}",
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.mean_ns() / 1e6,
                p.max_ns as f64 / 1e6,
            );
        }
        if self.request_ns > 0 {
            let queue = 100.0 * self.share_of_request(self.queue_ns);
            let execute = 100.0 * self.share_of_request(self.execute_ns);
            let other = (100.0 - queue - execute).max(0.0);
            out.push_str("\nrequest time attribution:\n");
            let _ =
                writeln!(out, "  queue-wait {queue:.1}%  execute {execute:.1}%  other {other:.1}%");
        }
        if !self.slowest.is_empty() {
            out.push_str("\nslowest spans:\n");
            for s in &self.slowest {
                let _ = writeln!(
                    out,
                    "  {:>10.3} ms  {:<12} trace={} tid={}",
                    s.dur_ns as f64 / 1e6,
                    s.name,
                    s.trace.0,
                    s.tid
                );
            }
        }
        if !self.instants.is_empty() {
            out.push_str("\nevents:\n");
            for (name, count) in &self.instants {
                let _ = writeln!(out, "  {name} ×{count}");
            }
        }
        out
    }
}

/// Reduces a trace to phase aggregates, attribution totals, and the
/// slowest spans.
///
/// ```
/// use smartmem_telemetry::{summarize, SpanKind, SpanRecord, Trace, TraceId};
///
/// let span = |name: &str, dur_ns| SpanRecord {
///     name: name.into(),
///     cat: "serve".into(),
///     kind: SpanKind::Complete,
///     trace: TraceId(1),
///     start_ns: 0,
///     dur_ns,
///     tid: 0,
///     args: vec![],
/// };
/// let trace = Trace {
///     spans: vec![span("queue", 300), span("execute", 600), span("request", 1000)],
///     dropped: 0,
/// };
/// let summary = summarize(&trace);
/// assert_eq!(summary.complete_requests(), 1);
/// assert_eq!(summary.share_of_request(summary.queue_ns), 0.3);
/// ```
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut phases: BTreeMap<&str, PhaseStat> = BTreeMap::new();
    let mut summary = TraceSummary { dropped: trace.dropped, ..TraceSummary::default() };
    for s in &trace.spans {
        if s.kind == SpanKind::Instant {
            *summary.instants.entry(s.name.clone()).or_insert(0) += 1;
            continue;
        }
        let p = phases.entry(&s.name).or_insert_with(|| PhaseStat {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        p.count += 1;
        p.total_ns += s.dur_ns;
        p.max_ns = p.max_ns.max(s.dur_ns);
        match s.name.as_str() {
            "queue" => summary.queue_ns += s.dur_ns,
            "execute" => summary.execute_ns += s.dur_ns,
            REQUEST_SPAN => {
                summary.request_ns += s.dur_ns;
                if s.trace != TraceId::NONE {
                    summary.requests += 1;
                }
            }
            _ => {}
        }
    }
    summary.phases = phases.into_values().collect();
    summary.phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    let mut slowest: Vec<SpanRecord> =
        trace.spans.iter().filter(|s| s.kind == SpanKind::Complete).cloned().collect();
    slowest.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.start_ns.cmp(&b.start_ns)));
    slowest.truncate(SLOWEST_SPANS);
    summary.slowest = slowest;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, trace: u64, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "serve".into(),
            kind: SpanKind::Complete,
            trace: TraceId(trace),
            start_ns,
            dur_ns,
            tid: 0,
            args: vec![],
        }
    }

    fn instant(name: &str) -> SpanRecord {
        SpanRecord { kind: SpanKind::Instant, dur_ns: 0, ..span(name, 0, 5, 0) }
    }

    #[test]
    fn phases_aggregate_and_order_by_total() {
        let trace = Trace {
            spans: vec![
                span("queue", 1, 0, 100),
                span("execute", 1, 100, 900),
                span("request", 1, 0, 1000),
                span("queue", 2, 10, 300),
                span("execute", 2, 310, 200),
                span("request", 2, 10, 510),
                instant("cancelled"),
                instant("cancelled"),
            ],
            dropped: 3,
        };
        let s = summarize(&trace);
        assert_eq!(s.requests, 2);
        assert_eq!(s.dropped, 3);
        assert_eq!((s.queue_ns, s.execute_ns, s.request_ns), (400, 1100, 1510));
        let names: Vec<&str> = s.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["request", "execute", "queue"], "largest total first");
        assert_eq!(s.phases[2].max_ns, 300);
        assert_eq!(s.instants.get("cancelled"), Some(&2));
        assert_eq!(s.slowest[0].name, "request");
        assert_eq!(s.slowest[0].dur_ns, 1000);
        let text = s.render();
        assert!(text.contains("2 complete request span(s)"));
        assert!(text.contains("cancelled ×2"));
    }

    #[test]
    fn anonymous_request_spans_do_not_count_as_requests() {
        let trace = Trace { spans: vec![span("request", 0, 0, 10)], dropped: 0 };
        assert_eq!(summarize(&trace).complete_requests(), 0);
    }

    #[test]
    fn slowest_is_capped() {
        let spans = (0..20).map(|i| span("execute", i + 1, i, i + 1)).collect();
        let s = summarize(&Trace { spans, dropped: 0 });
        assert_eq!(s.slowest.len(), SLOWEST_SPANS);
        assert_eq!(s.slowest[0].dur_ns, 20);
    }
}
