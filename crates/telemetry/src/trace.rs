//! The span recorder: per-request [`TraceId`]s, per-thread bounded
//! span logs, and sampling.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap when off.** A disabled tracer's record path is one
//!    relaxed atomic load and a branch; no allocation, no lock, no
//!    timestamp read. Serving with telemetry off must cost nothing
//!    measurable.
//! 2. **Lock-minimal when on.** Each recording thread appends into its
//!    *own* bounded [`RingBuffer`] behind a mutex only that thread
//!    touches on the hot path (a drain contends briefly at export
//!    time). Threads never serialize against each other to record.
//! 3. **Bounded.** Logs are rings: a runaway trace drops its *oldest*
//!    spans, counted in [`Trace::dropped`], and memory stays capped at
//!    `capacity × threads`.
//!
//! Timestamps are nanoseconds since a process-wide monotonic epoch
//! ([`now_ns`]), so spans recorded by different threads order
//! correctly in one exported timeline.

use crate::ring::RingBuffer;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic epoch (the first call
/// to any telemetry timestamp in the process).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Identity of one sampled request, minted at admission and carried
/// through queueing, batch cut, compilation, and execution. Nonzero;
/// spans not tied to a request (process-level compile work) use
/// [`TraceId::NONE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "no request" id for process-level spans.
    pub const NONE: TraceId = TraceId(0);
}

/// Chrome-trace phase of a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration (`ph: "X"`).
    Complete,
    /// A point-in-time event (`ph: "i"`), e.g. a warning.
    Instant,
}

/// One recorded span or instant event.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (`queue`, `compile`, `execute`, a pass name, …).
    pub name: String,
    /// Category — the layer that recorded it (`serve`, `compile`,
    /// `warn`). Becomes the Chrome-trace `cat`, filterable in the UI.
    pub cat: String,
    /// Duration or instant.
    pub kind: SpanKind,
    /// Owning request trace, or [`TraceId::NONE`].
    pub trace: TraceId,
    /// Start time, ns since the process epoch.
    pub start_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// Display lane: device/worker id where meaningful, else a hash of
    /// the recording thread. Becomes the Chrome-trace `tid` row.
    pub tid: u64,
    /// Numeric attachments (`batch_size`, `cache_hit`, …).
    pub args: Vec<(String, f64)>,
}

/// Everything drained out of a tracer: spans from all threads, in
/// start-time order, plus how many older spans overflowed the rings.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Recorded spans, sorted by `start_ns`.
    pub spans: Vec<SpanRecord>,
    /// Spans lost to ring overflow (the trace is a suffix when > 0).
    pub dropped: u64,
}

/// One thread's bounded span log.
struct ThreadLog {
    ring: Mutex<RingBuffer<SpanRecord>>,
}

struct TracerInner {
    enabled: AtomicBool,
    /// Record the full span set of 1 request in every `sample_every`
    /// minted (1 = every request).
    sample_every: u64,
    /// Capacity of each per-thread ring.
    capacity: usize,
    /// Every thread log ever registered with this tracer (drained at
    /// export time).
    logs: Mutex<Vec<Arc<ThreadLog>>>,
    /// Serial for minting trace ids.
    next_trace: AtomicU64,
}

thread_local! {
    /// This thread's log per live tracer, keyed by the tracer's inner
    /// allocation. Entries of dropped tracers are pruned on the next
    /// miss.
    static THREAD_LOGS: RefCell<Vec<(Weak<TracerInner>, Arc<ThreadLog>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The span recorder handle. Clone freely; clones share the buffers.
///
/// ```
/// use smartmem_telemetry::{SpanKind, Tracer, TraceId};
///
/// let tracer = Tracer::new(1024, 1); // sample every request
/// let trace = tracer.mint().expect("sampling 1-in-1 mints every id");
/// let start = smartmem_telemetry::now_ns();
/// // ... do the work ...
/// tracer.record_complete("queue", "serve", trace, start, 1_000, 0, vec![]);
/// let out = tracer.drain();
/// assert_eq!(out.spans.len(), 1);
/// assert_eq!(out.spans[0].kind, SpanKind::Complete);
/// assert_eq!(out.spans[0].trace, trace);
///
/// let off = Tracer::disabled();
/// assert!(off.mint().is_none(), "a disabled tracer samples nothing");
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Enabled tracer with per-thread rings of `capacity` spans,
    /// sampling the full span set of one request in every
    /// `sample_every` minted (clamped to ≥ 1).
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                sample_every: sample_every.max(1),
                capacity: capacity.max(1),
                logs: Mutex::new(Vec::new()),
                next_trace: AtomicU64::new(0),
            }),
        }
    }

    /// A tracer that records nothing: [`Tracer::mint`] returns `None`
    /// and the record path is one atomic load.
    pub fn disabled() -> Self {
        let t = Tracer::new(1, 1);
        t.inner.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Whether this tracer records.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Mints the next request trace id, or `None` when the request is
    /// not sampled (or the tracer is disabled). Ids are minted for
    /// *every* call so sampling stays 1-in-N under any interleaving;
    /// unsampled requests simply record no spans.
    pub fn mint(&self) -> Option<TraceId> {
        if !self.is_enabled() {
            return None;
        }
        let n = self.inner.next_trace.fetch_add(1, Ordering::Relaxed);
        (n % self.inner.sample_every == 0).then_some(TraceId(n + 1))
    }

    /// Records a completed span retroactively (the caller timed it).
    #[allow(clippy::too_many_arguments)]
    pub fn record_complete(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        trace: TraceId,
        start_ns: u64,
        dur_ns: u64,
        tid: u64,
        args: Vec<(String, f64)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(SpanRecord {
            name: name.into(),
            cat: cat.into(),
            kind: SpanKind::Complete,
            trace,
            start_ns,
            dur_ns,
            tid,
            args,
        });
    }

    /// Records an instant event (a warning, a cancellation) at the
    /// current time.
    pub fn record_instant(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        trace: TraceId,
        tid: u64,
        args: Vec<(String, f64)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(SpanRecord {
            name: name.into(),
            cat: cat.into(),
            kind: SpanKind::Instant,
            trace,
            start_ns: now_ns(),
            dur_ns: 0,
            tid,
            args,
        });
    }

    /// Starts a span that records itself when dropped.
    pub fn span(&self, name: &'static str, cat: &'static str, trace: TraceId) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            name,
            cat,
            trace,
            tid: thread_lane(),
            start_ns: if self.is_enabled() { now_ns() } else { 0 },
            args: Vec::new(),
        }
    }

    /// Appends into this thread's ring, registering one on first use.
    fn push(&self, span: SpanRecord) {
        THREAD_LOGS.with(|logs| {
            let mut logs = logs.borrow_mut();
            let log = match logs.iter().find(|(w, _)| w.as_ptr() == Arc::as_ptr(&self.inner)) {
                Some((_, log)) => Arc::clone(log),
                None => {
                    // Prune logs of tracers that no longer exist, then
                    // register this thread with this tracer.
                    logs.retain(|(w, _)| w.strong_count() > 0);
                    let log = Arc::new(ThreadLog {
                        ring: Mutex::new(RingBuffer::new(self.inner.capacity)),
                    });
                    self.inner.logs.lock().expect("tracer log registry").push(Arc::clone(&log));
                    logs.push((Arc::downgrade(&self.inner), Arc::clone(&log)));
                    log
                }
            };
            log.ring.lock().expect("thread span log").push(span);
        });
    }

    /// Drains every thread's log into one start-time-ordered trace.
    /// Dropped-span counts survive (they describe the whole tracer
    /// lifetime, not one drain).
    pub fn drain(&self) -> Trace {
        let logs = self.inner.logs.lock().expect("tracer log registry");
        let mut trace = Trace::default();
        for log in logs.iter() {
            let mut ring = log.ring.lock().expect("thread span log");
            trace.spans.extend(ring.drain());
            trace.dropped += ring.dropped();
        }
        trace.spans.sort_by_key(|s| (s.start_ns, s.tid));
        trace
    }
}

/// Stable display-lane id of the current thread.
pub fn thread_lane() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

/// An in-progress span; records a [`SpanKind::Complete`] record from
/// construction to drop. Obtained from [`Tracer::span`].
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    cat: &'static str,
    trace: TraceId,
    tid: u64,
    start_ns: u64,
    args: Vec<(String, f64)>,
}

impl SpanGuard {
    /// Overrides the display lane (e.g. a device id).
    #[must_use]
    pub fn with_tid(mut self, tid: u64) -> Self {
        self.tid = tid;
        self
    }

    /// Attaches a numeric argument.
    pub fn arg(&mut self, key: impl Into<String>, value: f64) {
        self.args.push((key.into(), value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.record_complete(
            self.name,
            self.cat,
            self.trace,
            self.start_ns,
            now_ns().saturating_sub(self.start_ns),
            self.tid,
            std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_mints_one_in_n() {
        let t = Tracer::new(64, 4);
        let minted: Vec<Option<TraceId>> = (0..8).map(|_| t.mint()).collect();
        let sampled = minted.iter().flatten().count();
        assert_eq!(sampled, 2, "1-in-4 over 8 mints");
        assert!(minted[0].is_some() && minted[4].is_some());
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Tracer::new(64, 1);
        let trace = t.mint().unwrap();
        {
            let mut s = t.span("work", "test", trace).with_tid(7);
            s.arg("n", 3.0);
        }
        let out = t.drain();
        assert_eq!(out.spans.len(), 1);
        let s = &out.spans[0];
        assert_eq!((s.name.as_str(), s.cat.as_str(), s.tid), ("work", "test", 7));
        assert_eq!(s.args, vec![("n".to_string(), 3.0)]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(t.mint().is_none());
        t.record_instant("warn", "warn", TraceId::NONE, 0, vec![]);
        drop(t.span("work", "test", TraceId::NONE));
        assert!(t.drain().spans.is_empty());
    }

    #[test]
    fn drain_merges_threads_in_time_order() {
        let t = Tracer::new(64, 1);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    let start = now_ns();
                    t.record_complete("w", "test", TraceId(i + 1), start, 10, i, vec![]);
                });
            }
        });
        let out = t.drain();
        assert_eq!(out.spans.len(), 4);
        assert_eq!(out.dropped, 0);
        assert!(out.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        // A second drain is empty: drains consume.
        assert!(t.drain().spans.is_empty());
    }

    #[test]
    fn two_tracers_on_one_thread_stay_separate() {
        let a = Tracer::new(8, 1);
        let b = Tracer::new(8, 1);
        a.record_instant("ea", "test", TraceId::NONE, 0, vec![]);
        b.record_instant("eb", "test", TraceId::NONE, 0, vec![]);
        assert_eq!(a.drain().spans[0].name, "ea");
        assert_eq!(b.drain().spans[0].name, "eb");
    }
}
