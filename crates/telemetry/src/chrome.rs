//! Chrome `trace_event` JSON export/import.
//!
//! [`render_chrome`] serializes a drained [`Trace`] into the [Trace
//! Event Format] consumed by `chrome://tracing` and Perfetto: one
//! complete (`"ph": "X"`) or instant (`"ph": "i"`) event per span,
//! timestamps in microseconds, the device/worker lane as `tid`, and the
//! request [`TraceId`] plus any numeric attachments under `args`.
//! [`parse_chrome`] reads the same format back — `trace_view` and the
//! CI smoke check consume trace files through it, and rendering is
//! tested as an exact round trip.
//!
//! The container is offline (no serde), so the writer and the
//! structural JSON parser here are hand-rolled, mirroring
//! `smartmem-bench`'s flat bench-JSON codec.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{SpanKind, SpanRecord, Trace, TraceId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// JSON-escapes `s` (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite value so it round-trips through the parser exactly.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; an exporter should never see one, but a
        // null parses loudly rather than corrupting the file silently.
        "null".to_string()
    }
}

/// Microsecond timestamp of a nanosecond count, exact through the
/// parser's inverse (`f64` holds 53 mantissa bits; traces live well
/// under 2^53 ns ≈ 104 days).
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Renders a trace as Chrome `trace_event` JSON (object form, one
/// event per line). Load the output straight into `chrome://tracing`
/// or <https://ui.perfetto.dev>.
pub fn render_chrome(trace: &Trace) -> String {
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
    let _ = write!(out, "\"dropped_spans\": {}}},\n\"traceEvents\": [\n", trace.dropped);
    for (i, s) in trace.spans.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
            escape(&s.name),
            escape(&s.cat),
            match s.kind {
                SpanKind::Complete => "X",
                SpanKind::Instant => "i",
            },
            fmt_value(us(s.start_ns)),
        );
        if s.kind == SpanKind::Complete {
            let _ = write!(out, "\"dur\": {}, ", fmt_value(us(s.dur_ns)));
        } else {
            // Instant scope: thread-local marker.
            out.push_str("\"s\": \"t\", ");
        }
        let _ = write!(out, "\"pid\": 1, \"tid\": {}, \"args\": {{\"trace\": {}", s.tid, s.trace.0);
        for (k, v) in &s.args {
            let _ = write!(out, ", \"{}\": {}", escape(k), fmt_value(*v));
        }
        out.push_str("}}");
        out.push_str(if i + 1 < trace.spans.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Structural JSON parsing (hand-rolled; the container has no serde).
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough structure for trace files).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next()? {
            b if b == want => Ok(()),
            b => Err(format!(
                "expected '{}' at byte {}, got '{}'",
                want as char, self.pos, b as char
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        for want in text.bytes() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next()? as char;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u escape digit '{d}'"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("unsupported escape '\\{}'", c as char)),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.next()? {
                b',' => {}
                b']' => return Ok(Json::Arr(items)),
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.insert(key, self.value()?);
            self.skip_ws();
            match self.next()? {
                b',' => {}
                b'}' => return Ok(Json::Obj(fields)),
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }
}

/// Nanosecond count of a microsecond timestamp (inverse of the
/// renderer's conversion).
fn ns(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

/// Parses Chrome `trace_event` JSON back into a [`Trace`]. Accepts
/// both the object form this crate renders and a bare event array;
/// events with phases other than `X`/`i` are skipped (a foreign trace
/// may carry metadata events).
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON, a missing `traceEvents` array, or an event without the
/// required fields.
pub fn parse_chrome(text: &str) -> Result<Trace, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after the trace at byte {}", p.pos));
    }
    let (events, dropped) = match &root {
        Json::Arr(events) => (events, 0),
        Json::Obj(fields) => {
            let events = match fields.get("traceEvents") {
                Some(Json::Arr(events)) => events,
                _ => return Err("no \"traceEvents\" array in the trace object".into()),
            };
            let dropped = fields
                .get("otherData")
                .and_then(|o| match o {
                    Json::Obj(f) => f.get("dropped_spans").and_then(Json::num),
                    _ => None,
                })
                .unwrap_or(0.0) as u64;
            (events, dropped)
        }
        _ => return Err("a trace is a JSON object or event array".into()),
    };
    let mut trace = Trace { spans: Vec::new(), dropped };
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(f) = ev else { return Err(format!("event {i} is not an object")) };
        let field = |k: &str| f.get(k).ok_or_else(|| format!("event {i} missing \"{k}\""));
        let kind = match field("ph")?.str() {
            Some("X") => SpanKind::Complete,
            Some("i") | Some("I") => SpanKind::Instant,
            _ => continue, // metadata/counter events of foreign traces
        };
        let mut trace_id = TraceId::NONE;
        let mut args = Vec::new();
        if let Some(Json::Obj(a)) = f.get("args") {
            for (k, v) in a {
                let Some(v) = v.num() else { continue };
                if k == "trace" {
                    trace_id = TraceId(v as u64);
                } else {
                    args.push((k.clone(), v));
                }
            }
        }
        let dur = match kind {
            SpanKind::Complete => {
                ns(field("dur")?.num().ok_or_else(|| format!("event {i}: non-numeric dur"))?)
            }
            SpanKind::Instant => 0,
        };
        trace.spans.push(SpanRecord {
            name: field("name")?.str().ok_or_else(|| format!("event {i}: non-string name"))?.into(),
            cat: f.get("cat").and_then(Json::str).unwrap_or_default().into(),
            kind,
            trace: trace_id,
            start_ns: ns(field("ts")?.num().ok_or_else(|| format!("event {i}: non-numeric ts"))?),
            dur_ns: dur,
            tid: f.get("tid").and_then(Json::num).unwrap_or(0.0) as u64,
            args,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    name: "queue".into(),
                    cat: "serve".into(),
                    kind: SpanKind::Complete,
                    trace: TraceId(3),
                    start_ns: 1_234,
                    dur_ns: 50_000,
                    tid: 2,
                    args: vec![("class".into(), 1.0)],
                },
                SpanRecord {
                    name: "cache_dir_fallback".into(),
                    cat: "warn".into(),
                    kind: SpanKind::Instant,
                    trace: TraceId::NONE,
                    start_ns: 9_000,
                    dur_ns: 0,
                    tid: 0,
                    args: vec![],
                },
                SpanRecord {
                    name: "execute \"x\"".into(),
                    cat: "serve".into(),
                    kind: SpanKind::Complete,
                    trace: TraceId(3),
                    start_ns: 60_000,
                    dur_ns: 123_456,
                    tid: 2,
                    args: vec![("batch_size".into(), 4.0), ("cache_hit".into(), 1.0)],
                },
            ],
            dropped: 7,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let trace = sample();
        let text = render_chrome(&trace);
        let back = parse_chrome(&text).expect("rendered traces parse");
        assert_eq!(back.dropped, trace.dropped);
        assert_eq!(back.spans, trace.spans);
    }

    #[test]
    fn bare_event_arrays_parse() {
        let text = r#"[{"name": "a", "ph": "X", "ts": 1.5, "dur": 2.0, "tid": 9}]"#;
        let trace = parse_chrome(text).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].start_ns, 1500);
        assert_eq!(trace.spans[0].dur_ns, 2000);
        assert_eq!(trace.spans[0].tid, 9);
    }

    #[test]
    fn metadata_events_are_skipped() {
        let text = r#"{"traceEvents": [
            {"name": "process_name", "ph": "M", "ts": 0},
            {"name": "work", "ph": "X", "ts": 0, "dur": 1}
        ]}"#;
        let trace = parse_chrome(text).unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "work");
    }

    #[test]
    fn malformed_traces_are_rejected() {
        for bad in [
            "",
            "{",
            "3.5",
            r#"{"traceEvents": 3}"#,
            r#"{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}"#,
            r#"{"traceEvents": [{"name": "a", "ph": "X", "ts": 0}]}"#,
            r#"{"traceEvents": []} trailing"#,
        ] {
            assert!(parse_chrome(bad).is_err(), "accepted {bad:?}");
        }
    }
}
