//! Property and stress tests of the telemetry primitives (satellite
//! requirements): ring wrap-around keeps exactly the newest window and
//! accounts every loss, concurrent multi-thread recording loses no
//! non-dropped span, and histogram snapshot merging is associative (so
//! per-thread/shard partials combine in any order).

use proptest::prelude::*;
use smartmem_telemetry::{
    now_ns, HistogramSnapshot, RingBuffer, SpanKind, TraceId, Tracer, HISTOGRAM_BUCKETS,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wrap-around drops the *oldest* entries: after any push sequence
    /// the ring holds exactly the newest `min(len, capacity)` values in
    /// order, and `dropped` equals exactly what overflowed.
    #[test]
    fn ring_keeps_newest_window(values in prop::collection::vec(0u64..1000, 0..64),
                                capacity in 1usize..12) {
        let mut ring = RingBuffer::new(capacity);
        for &v in &values {
            ring.push(v);
        }
        let expect_dropped = values.len().saturating_sub(capacity) as u64;
        prop_assert_eq!(ring.dropped(), expect_dropped);
        let keep = values.len().min(capacity);
        let window: Vec<u64> = values[values.len() - keep..].to_vec();
        prop_assert_eq!(ring.iter().copied().collect::<Vec<u64>>(), window.clone());
        prop_assert_eq!(ring.drain(), window);
        prop_assert_eq!(ring.dropped(), expect_dropped, "drain keeps the loss accounted");
    }

    /// Histogram merge is associative (and commutative, with the empty
    /// snapshot as identity): (a ∪ b) ∪ c = a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(a in prop::collection::vec(0u64..u64::MAX / 4, 0..24),
                                      b in prop::collection::vec(0u64..u64::MAX / 4, 0..24),
                                      c in prop::collection::vec(0u64..u64::MAX / 4, 0..24)) {
        let snap = |values: &[u64]| {
            values.iter().fold(HistogramSnapshot::default(), |acc, &v| {
                acc.merge(&HistogramSnapshot::of(v))
            })
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&sa.merge(&sb), &sb.merge(&sa), "merge commutes");
        prop_assert_eq!(&sa.merge(&HistogramSnapshot::default()), &sa, "empty is the identity");
        prop_assert_eq!(left.count, (a.len() + b.len() + c.len()) as u64);
        // Snapshot sums wrap on overflow, so the expectation must too.
        let total = a.iter().chain(&b).chain(&c).fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(left.sum, total);
        prop_assert_eq!(left.buckets.len(), HISTOGRAM_BUCKETS);
    }
}

/// N threads hammer one tracer concurrently; every span that was not
/// dropped by ring overflow must come out of the drain intact, exactly
/// once, and `spans + dropped` must account for every record.
#[test]
fn concurrent_recording_loses_no_undropped_span() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 500;
    const CAPACITY: usize = 128; // force overflow: 500 records per 128-slot ring

    let tracer = Tracer::new(CAPACITY, 1);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Encode (thread, seq) in the trace id so the drain
                    // can verify exactly-once delivery per record.
                    let id = TraceId(t * PER_THREAD + i + 1);
                    tracer.record_complete("w", "test", id, now_ns(), 1, t, vec![]);
                }
            });
        }
    });

    let trace = tracer.drain();
    assert_eq!(
        trace.spans.len() as u64 + trace.dropped,
        THREADS * PER_THREAD,
        "every record is either drained or counted dropped"
    );
    assert_eq!(trace.spans.len(), THREADS as usize * CAPACITY, "each full ring keeps capacity");

    let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.trace.0).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "a span was duplicated");
    for s in &trace.spans {
        assert_eq!(s.kind, SpanKind::Complete);
        // Rings drop oldest: each thread's survivors are its newest
        // CAPACITY records.
        let (thread, seq) = ((s.trace.0 - 1) / PER_THREAD, (s.trace.0 - 1) % PER_THREAD);
        assert_eq!(s.tid, thread);
        assert!(
            seq >= PER_THREAD - CAPACITY as u64,
            "thread {thread} kept an old span (seq {seq}) past overflow"
        );
    }
}

/// Same stress with no overflow possible: nothing may be dropped at
/// all and every record survives.
#[test]
fn concurrent_recording_without_overflow_is_lossless() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 200;

    let tracer = Tracer::new(PER_THREAD as usize, 1);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    tracer.record_instant("e", "test", TraceId(t * PER_THREAD + i + 1), t, vec![]);
                }
            });
        }
    });
    let trace = tracer.drain();
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.spans.len() as u64, THREADS * PER_THREAD);
    let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.trace.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, THREADS * PER_THREAD, "no span lost or duplicated");
}
