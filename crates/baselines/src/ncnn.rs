//! The NCNN-style pipeline: ConvNet-only GPU support and essentially
//! unfused execution (Table 7 lists NCNN's operator counts equal to the
//! unoptimized graphs).

use crate::common::{has_transformer_ops, FusePolicy, LayoutStyle};
use crate::passes::{PolicyFusionPass, SupportPass, UniformLayoutPass, UtilizationPass};
use smartmem_core::{AssembleGroupsPass, Framework, LtePass, MemModel, PassManager};
use smartmem_ir::{Graph, Op};

/// NCNN (Tencent's mobile engine). The paper's evaluation: "NCNN and
/// TFLite do not support Transformer models on mobile GPU as they
/// either lack support for key operators and/or do not reduce the
/// memory requirements sufficiently"; for the ConvNets it executes the
/// graph with hand-written kernels of high quality but no graph-level
/// optimization.
#[derive(Clone, Debug, Default)]
pub struct NcnnFramework;

impl NcnnFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        NcnnFramework
    }
}

fn ncnn_unsupported(graph: &Graph) -> Option<String> {
    if has_transformer_ops(graph) {
        return Some(
            "transformer operators (MatMul/LayerNorm/Softmax/Gather) not supported on mobile GPU"
                .into(),
        );
    }
    if graph.nodes().iter().any(|n| matches!(n.op, Op::InstanceNorm)) {
        return Some("instance normalization not supported by the GPU backend".into());
    }
    None
}

/// Hand-tuned conv kernels: high per-kernel quality despite no graph
/// optimization.
fn ncnn_adjust(op: &Op) -> f64 {
    if matches!(op, Op::Conv2d { .. }) {
        1.0
    } else {
        0.8
    }
}

impl Framework for NcnnFramework {
    fn name(&self) -> &str {
        "NCNN"
    }

    fn passes(&self) -> PassManager {
        PassManager::new("NCNN")
            .with_mem_model(MemModel {
                pooled: false,
                workspace_factor: 1.6,
                im2col: true,
                dispatch_scale: 0.35,
            })
            .then(SupportPass { tag: "ncnn", check: ncnn_unsupported })
            .then(LtePass::disabled())
            .then(PolicyFusionPass { policy: FusePolicy::none() })
            .then(AssembleGroupsPass)
            .then(UniformLayoutPass { style: LayoutStyle::Nc4Hw4 })
            .then(UtilizationPass { tag: "ncnn", scale: 1.0, adjust: ncnn_adjust })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use smartmem_ir::{DType, GraphBuilder, PoolKind, UnaryKind};
    use smartmem_sim::DeviceConfig;

    #[test]
    fn rejects_transformers() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 4, 8], DType::F16);
        let w = b.weight("w", &[8, 8], DType::F16);
        let m = b.matmul(x, w);
        b.output(m);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let err = NcnnFramework::new().optimize(&g, &device).unwrap_err();
        assert!(err.reason.contains("not supported"));
    }

    #[test]
    fn runs_convnets_unfused() {
        let mut b = GraphBuilder::new("c");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let p = b.pool2d(r, PoolKind::Max, (2, 2), (2, 2), (0, 0));
        b.output(p);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = NcnnFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.kernel_count, g.op_count(), "NCNN runs ops 1:1");
    }
}
