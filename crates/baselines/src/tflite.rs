//! The TFLite-GPU-delegate-style pipeline: fixed-pattern fusion,
//! NHWC-flavoured relayouts at conv boundaries, and narrow operator
//! support on the GPU delegate.

use crate::common::{
    assign_layouts_uniform, baseline_groups, finalize_utilization, has_selection_ops,
    has_transformer_ops, insert_relayouts, FusePolicy, LayoutStyle, RelayoutRule,
};
use smartmem_core::{Framework, MemModel, OptStats, OptimizedGraph, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;

/// TFLite with the mobile GPU delegate. Per Table 7, only the plain
/// ConvNets (RegNet, ResNext) compile; transformer operators and the
/// slice/split detection heads of YOLO are unsupported.
#[derive(Clone, Debug, Default)]
pub struct TfLiteFramework;

impl TfLiteFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        TfLiteFramework
    }
}

impl Framework for TfLiteFramework {
    fn name(&self) -> &str {
        "TFLite"
    }

    fn optimize(&self, graph: &Graph, device: &DeviceConfig) -> Result<OptimizedGraph, Unsupported> {
        if has_transformer_ops(graph) {
            return Err(Unsupported::new(self.name(), "transformer operators not supported by the GPU delegate"));
        }
        if has_selection_ops(graph) {
            return Err(Unsupported::new(self.name(), "slice/split/depth-to-space heads not supported by the GPU delegate"));
        }
        let (rewritten, inserted) = insert_relayouts(graph, RelayoutRule::ConvBoundary);
        let mut groups = baseline_groups(&rewritten, FusePolicy::fixed_patterns());
        assign_layouts_uniform(&rewritten, &mut groups, device, LayoutStyle::RowMajor);
        finalize_utilization(&rewritten, &mut groups, 0.6, |op| {
            if op.is_layout_transform() {
                0.3
            } else {
                1.0
            }
        });
        let stats = OptStats {
            source_ops: graph.op_count(),
            kernel_count: groups.len(),
            fused_ops: groups.iter().map(|g| g.members.len() - 1).sum(),
            implicit_inserted: inserted,
            ..OptStats::default()
        };
        Ok(OptimizedGraph {
            graph: rewritten,
            groups,
            stats,
            mem_model: MemModel { pooled: true, workspace_factor: 2.2, im2col: true, dispatch_scale: 1.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    #[test]
    fn rejects_selection_heads() {
        let mut b = GraphBuilder::new("yolo-ish");
        let x = b.input("x", &[1, 8, 4, 4], DType::F16);
        let parts = b.split(x, 1, 2);
        b.output(parts[0]);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        assert!(TfLiteFramework::new().optimize(&g, &device).is_err());
    }

    #[test]
    fn compiles_plain_convnets() {
        let mut b = GraphBuilder::new("plain");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        b.output(r);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = TfLiteFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.kernel_count, 1, "conv+relu fuse");
    }
}
