//! The TFLite-GPU-delegate-style pipeline: fixed-pattern fusion,
//! NHWC-flavoured relayouts at conv boundaries, and narrow operator
//! support on the GPU delegate.

use crate::common::{
    has_selection_ops, has_transformer_ops, FusePolicy, LayoutStyle, RelayoutRule,
};
use crate::passes::{
    PolicyFusionPass, RelayoutPass, SupportPass, UniformLayoutPass, UtilizationPass,
};
use smartmem_core::{AssembleGroupsPass, Framework, LtePass, MemModel, PassManager};
use smartmem_ir::{Graph, Op};

/// TFLite with the mobile GPU delegate. Per Table 7, only the plain
/// ConvNets (RegNet, ResNext) compile; transformer operators and the
/// slice/split detection heads of YOLO are unsupported.
#[derive(Clone, Debug, Default)]
pub struct TfLiteFramework;

impl TfLiteFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        TfLiteFramework
    }
}

fn tflite_unsupported(graph: &Graph) -> Option<String> {
    if has_transformer_ops(graph) {
        return Some("transformer operators not supported by the GPU delegate".into());
    }
    if has_selection_ops(graph) {
        return Some("slice/split/depth-to-space heads not supported by the GPU delegate".into());
    }
    None
}

fn tflite_adjust(op: &Op) -> f64 {
    if op.is_layout_transform() {
        0.3
    } else {
        1.0
    }
}

impl Framework for TfLiteFramework {
    fn name(&self) -> &str {
        "TFLite"
    }

    fn passes(&self) -> PassManager {
        PassManager::new("TFLite")
            .with_mem_model(MemModel {
                pooled: true,
                workspace_factor: 2.2,
                im2col: true,
                dispatch_scale: 1.0,
            })
            .then(SupportPass { tag: "tflite", check: tflite_unsupported })
            .then(RelayoutPass { rule: RelayoutRule::ConvBoundary })
            .then(LtePass::disabled())
            .then(PolicyFusionPass { policy: FusePolicy::fixed_patterns() })
            .then(AssembleGroupsPass)
            .then(UniformLayoutPass { style: LayoutStyle::RowMajor })
            .then(UtilizationPass { tag: "tflite", scale: 0.6, adjust: tflite_adjust })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use smartmem_ir::{DType, GraphBuilder, UnaryKind};
    use smartmem_sim::DeviceConfig;

    #[test]
    fn rejects_selection_heads() {
        let mut b = GraphBuilder::new("yolo-ish");
        let x = b.input("x", &[1, 8, 4, 4], DType::F16);
        let parts = b.split(x, 1, 2);
        b.output(parts[0]);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        assert!(TfLiteFramework::new().optimize(&g, &device).is_err());
    }

    #[test]
    fn compiles_plain_convnets() {
        let mut b = GraphBuilder::new("plain");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        b.output(r);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = TfLiteFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.kernel_count, 1, "conv+relu fuse");
    }
}
