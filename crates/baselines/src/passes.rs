//! Baseline-specific compilation passes over the shared
//! [`smartmem_core::Pass`] trait.
//!
//! Together with the core passes (`LtePass`, `AssembleGroupsPass`, …)
//! these turn every baseline framework into a *declarative pass
//! sequence*: an operator-support gate, optional relayout insertion,
//! policy fusion, a uniform layout style and a kernel-quality
//! finalization — each a named, individually timed step of the shared
//! [`smartmem_core::PassManager`].

use crate::common::{
    assign_layouts_uniform, finalize_utilization, fuse_with_policy, insert_relayouts, FusePolicy,
    LayoutStyle, RelayoutRule,
};
use smartmem_core::{CompileCtx, Pass, Unsupported};
use smartmem_ir::{Graph, Op};

/// Operator-support gate: rejects models the framework cannot compile
/// (the "–" entries of Tables 7–8).
#[derive(Clone, Copy, Debug)]
pub struct SupportPass {
    /// Stable identifier of the support policy (function-pointer
    /// addresses are not stable across runs, so the pass-sequence id —
    /// a cache-key component — fingerprints this tag instead).
    pub tag: &'static str,
    /// Returns a human-readable rejection reason, or `None` when the
    /// graph is supported.
    pub check: fn(&Graph) -> Option<String>,
}

impl Pass for SupportPass {
    fn name(&self) -> &'static str {
        "support-check"
    }

    fn params(&self) -> String {
        format!("tag={}", self.tag)
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        match (self.check)(&ctx.graph) {
            Some(reason) => Err(Unsupported::new(ctx.framework.clone(), reason)),
            None => Ok(()),
        }
    }
}

/// Rewrites the graph inserting framework-origin relayout operators
/// (implicit transformations) per [`RelayoutRule`].
#[derive(Clone, Copy, Debug)]
pub struct RelayoutPass {
    /// Where conversions are inserted.
    pub rule: RelayoutRule,
}

impl Pass for RelayoutPass {
    fn name(&self) -> &'static str {
        "insert-relayouts"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        let (rewritten, inserted) = insert_relayouts(&ctx.graph, self.rule);
        if inserted > 0 {
            ctx.note(self.name(), format!("inserted {inserted} implicit relayout operators"));
        }
        ctx.graph = rewritten;
        ctx.implicit_inserted += inserted;
        Ok(())
    }
}

/// Groups operators under a baseline fusion policy (the counterpart of
/// the core `FusionPass`, which models DNNFusion's classification-based
/// rules).
#[derive(Clone, Copy, Debug)]
pub struct PolicyFusionPass {
    /// The framework's fusion capabilities.
    pub policy: FusePolicy,
}

impl Pass for PolicyFusionPass {
    fn name(&self) -> &'static str {
        "policy-fusion"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        ctx.drafts = fuse_with_policy(&ctx.graph, ctx.expect_lte(self.name()), self.policy);
        Ok(())
    }
}

/// Applies one uniform physical-layout style to every read and output
/// (baselines do not select layouts per edge).
#[derive(Clone, Copy, Debug)]
pub struct UniformLayoutPass {
    /// The framework's layout style.
    pub style: LayoutStyle,
}

impl Pass for UniformLayoutPass {
    fn name(&self) -> &'static str {
        "uniform-layout"
    }

    fn params(&self) -> String {
        format!("{self:?}")
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        assign_layouts_uniform(&ctx.graph, &mut ctx.groups, &ctx.device, self.style);
        Ok(())
    }
}

/// Finalizes per-kernel utilization from the framework's kernel quality
/// (`scale`) and a per-anchor adjustment (e.g. TVM's grouped-convolution
/// weakness).
#[derive(Clone, Copy, Debug)]
pub struct UtilizationPass {
    /// Stable identifier of the adjustment policy (see
    /// [`SupportPass::tag`]).
    pub tag: &'static str,
    /// Overall kernel-quality multiplier.
    pub scale: f64,
    /// Per-anchor-operator adjustment.
    pub adjust: fn(&Op) -> f64,
}

impl Pass for UtilizationPass {
    fn name(&self) -> &'static str {
        "finalize-utilization"
    }

    fn params(&self) -> String {
        format!("tag={} scale={}", self.tag, self.scale)
    }

    fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
        finalize_utilization(&ctx.graph, &mut ctx.groups, self.scale, self.adjust);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_core::{AssembleGroupsPass, LtePass, PassManager};
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};
    use smartmem_sim::DeviceConfig;

    fn conv_mix() -> Graph {
        let mut b = GraphBuilder::new("mix");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let rs = b.reshape(r, &[1, 8, 64]);
        let sm = b.softmax(rs, 2);
        b.output(sm);
        b.finish()
    }

    #[test]
    fn support_pass_rejects_with_framework_name() {
        fn reject_all(_: &Graph) -> Option<String> {
            Some("nothing is supported".into())
        }
        let device = DeviceConfig::snapdragon_8gen2();
        let err = PassManager::new("Grumpy")
            .then(SupportPass { tag: "reject-all", check: reject_all })
            .run_on(&conv_mix(), &device)
            .unwrap_err();
        assert_eq!(err.framework, "Grumpy");
        assert!(err.reason.contains("nothing"));
    }

    #[test]
    fn baseline_sequence_reproduces_helper_pipeline() {
        // Pass-manager execution must equal the raw helper calls that
        // the baselines used before the refactor.
        let g = conv_mix();
        let device = DeviceConfig::snapdragon_8gen2();
        let out = PassManager::new("check")
            .then(LtePass::disabled())
            .then(PolicyFusionPass { policy: FusePolicy::fixed_patterns() })
            .then(AssembleGroupsPass)
            .run_on(&g, &device)
            .unwrap();
        let direct = crate::common::baseline_groups(&g, FusePolicy::fixed_patterns());
        assert_eq!(out.optimized.groups.len(), direct.len());
        assert_eq!(out.optimized.stats.implicit_inserted, 0);
    }

    #[test]
    fn relayout_pass_rewrites_graph_and_counts() {
        let g = conv_mix();
        let device = DeviceConfig::snapdragon_8gen2();
        let out = PassManager::new("check")
            .then(RelayoutPass { rule: RelayoutRule::ConvBoundary })
            .then(LtePass::disabled())
            .then(PolicyFusionPass { policy: FusePolicy::none() })
            .then(AssembleGroupsPass)
            .run_on(&g, &device)
            .unwrap();
        assert_eq!(out.optimized.stats.implicit_inserted, 1);
        assert_eq!(out.optimized.graph.op_count(), g.op_count() + 1);
        assert_eq!(out.optimized.stats.source_ops, g.op_count());
    }
}
