//! The TVM-style pipeline: rule-based injective fusion, ConvertLayout
//! relayouts at conv boundaries, auto-tuned kernels, and the published
//! weakness on grouped/depthwise convolutions (the paper's explanation
//! for the 166× ConvNext gap: "TVM lacking an efficient layout design
//! for a reduction operator GroupConvolution").

use crate::common::{FusePolicy, LayoutStyle, RelayoutRule};
use crate::passes::{PolicyFusionPass, RelayoutPass, UniformLayoutPass, UtilizationPass};
use smartmem_core::{
    AssembleGroupsPass, Framework, LtePass, MemModel, PassManager, StreamlinePass,
};
use smartmem_ir::Op;

/// TVM with auto-tuning enabled (the paper runs TVM's tuner for the
/// comparisons).
#[derive(Clone, Debug, Default)]
pub struct TvmFramework;

impl TvmFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        TvmFramework
    }
}

/// Per-anchor utilization adjustment reproducing TVM's grouped-conv
/// weakness.
fn tvm_adjust(op: &Op) -> f64 {
    match op {
        // Depthwise convolutions hit TVM's inefficient GroupConvolution
        // lowering on mobile GPU hardest (the ConvNext case); moderately
        // grouped convolutions (RegNet/ResNext) lose less.
        Op::Conv2d { groups, .. } if *groups >= 16 => 0.06,
        Op::Conv2d { groups, .. } if *groups > 1 => 0.5,
        op if op.is_layout_transform() => 0.2,
        _ => 1.0,
    }
}

impl Framework for TvmFramework {
    fn name(&self) -> &str {
        "TVM"
    }

    fn passes(&self) -> PassManager {
        PassManager::new("TVM")
            .with_mem_model(MemModel {
                pooled: true,
                workspace_factor: 2.1,
                im2col: true,
                dispatch_scale: 1.0,
            })
            // Relay-style graph simplification runs before layout
            // legalization, mirroring TVM's SimplifyExpr/FoldConstant.
            .then(StreamlinePass)
            .then(RelayoutPass { rule: RelayoutRule::ConvBoundary })
            .then(LtePass::disabled())
            // TVM's bijective fusion is frequently blocked on the mobile
            // GPU path: ConvertLayout staging materializes the reshape
            // chain (hence Table 7's higher operator counts).
            .then(PolicyFusionPass {
                policy: FusePolicy {
                    fuse_unary: true,
                    fuse_binary: false,
                    fuse_reshape: false,
                    anchors_only: false,
                    max_group: 6,
                },
            })
            .then(AssembleGroupsPass)
            // TVM on Adreno uses texture memory for conv workloads via
            // its `texture` schedules; the generic default placement
            // models that.
            .then(UniformLayoutPass { style: LayoutStyle::TextureDefault })
            .then(UtilizationPass { tag: "tvm", scale: 0.5, adjust: tvm_adjust })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use smartmem_ir::{DType, GraphBuilder};
    use smartmem_sim::DeviceConfig;

    #[test]
    fn depthwise_conv_is_penalized() {
        let dw = Op::Conv2d { stride: (1, 1), padding: (1, 1), groups: 96 };
        let dense = Op::Conv2d { stride: (1, 1), padding: (1, 1), groups: 1 };
        assert!(tvm_adjust(&dw) < 0.1);
        assert_eq!(tvm_adjust(&dense), 1.0);
    }

    #[test]
    fn supports_transformers() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let m = b.matmul(x, w);
        let s = b.softmax(m, 2);
        b.output(s);
        let g = b.finish();
        let device = DeviceConfig::snapdragon_8gen2();
        assert!(TvmFramework::new().optimize(&g, &device).is_ok());
    }

    #[test]
    fn depthwise_model_runs_much_slower_than_dense() {
        let build = |groups: usize, cin: usize| {
            let mut b = GraphBuilder::new("g");
            let x = b.input("x", &[1, cin, 16, 16], DType::F16);
            let w = b.weight("w", &[cin, cin / groups, 3, 3], DType::F16);
            let c = b.conv2d(x, w, (1, 1), (1, 1), groups);
            b.output(c);
            b.finish()
        };
        let device = DeviceConfig::snapdragon_8gen2();
        let dense = TvmFramework::new().run(&build(1, 32), &device).unwrap();
        let dw = TvmFramework::new().run(&build(32, 32), &device).unwrap();
        // Depthwise has 32x fewer MACs but TVM's speed (GMACS) collapses.
        assert!(dw.gmacs < dense.gmacs / 4.0);
    }
}
