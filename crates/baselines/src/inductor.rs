//! The TorchInductor-style pipeline for the desktop-GPU comparison
//! (Table 9): strong element-wise fusion and pre-assigned row-major
//! layouts, no layout-transformation elimination.

use crate::common::{
    assign_layouts_uniform, baseline_groups, finalize_utilization, FusePolicy, LayoutStyle,
};
use smartmem_core::{Framework, MemModel, OptStats, OptimizedGraph, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;

/// TorchInductor as characterized in §5: "relies on pre-assigned layouts
/// of specific operators or satisfies layout constraints from library
/// calls" — good fusion and high-quality (TensorRT/Triton) kernels, but
/// `Reshape`/`Transpose` chains still materialize.
#[derive(Clone, Debug, Default)]
pub struct TorchInductorFramework;

impl TorchInductorFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        TorchInductorFramework
    }
}

impl Framework for TorchInductorFramework {
    fn name(&self) -> &str {
        "TorchInductor"
    }

    fn optimize(&self, graph: &Graph, device: &DeviceConfig) -> Result<OptimizedGraph, Unsupported> {
        let mut groups = baseline_groups(
            graph,
            FusePolicy { fuse_unary: true, fuse_binary: true, fuse_reshape: true, anchors_only: false, max_group: 16 },
        );
        assign_layouts_uniform(graph, &mut groups, device, LayoutStyle::RowMajor);
        // Triton/TensorRT kernels are close to hand-tuned.
        finalize_utilization(graph, &mut groups, 1.0, |_| 1.0);
        let stats = OptStats {
            source_ops: graph.op_count(),
            kernel_count: groups.len(),
            fused_ops: groups.iter().map(|g| g.members.len() - 1).sum(),
            ..OptStats::default()
        };
        Ok(OptimizedGraph {
            graph: graph.clone(),
            groups,
            stats,
            mem_model: MemModel { pooled: true, workspace_factor: 1.3, im2col: false, dispatch_scale: 1.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    #[test]
    fn inductor_fuses_elementwise_chains() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[64, 64], DType::F16);
        let w = b.weight("w", &[64, 64], DType::F16);
        let m = b.matmul(x, w);
        let a = b.unary(m, UnaryKind::Gelu);
        let c = b.unary(a, UnaryKind::Sigmoid);
        b.output(c);
        let g = b.finish();
        let device = DeviceConfig::tesla_v100();
        let opt = TorchInductorFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.kernel_count, 1);
    }
}
