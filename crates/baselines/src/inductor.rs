//! The TorchInductor-style pipeline for the desktop-GPU comparison
//! (Table 9): strong element-wise fusion and pre-assigned row-major
//! layouts, no layout-transformation elimination.

use crate::common::{FusePolicy, LayoutStyle};
use crate::passes::{PolicyFusionPass, UniformLayoutPass, UtilizationPass};
use smartmem_core::{
    AssembleGroupsPass, Framework, LtePass, MemModel, PassManager, StreamlinePass,
};
use smartmem_ir::Op;

/// TorchInductor as characterized in §5: "relies on pre-assigned layouts
/// of specific operators or satisfies layout constraints from library
/// calls" — good fusion and high-quality (TensorRT/Triton) kernels, but
/// `Reshape`/`Transpose` chains still materialize.
#[derive(Clone, Debug, Default)]
pub struct TorchInductorFramework;

impl TorchInductorFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        TorchInductorFramework
    }
}

/// Triton/TensorRT kernels are close to hand-tuned.
fn inductor_adjust(_op: &Op) -> f64 {
    1.0
}

impl Framework for TorchInductorFramework {
    fn name(&self) -> &str {
        "TorchInductor"
    }

    fn passes(&self) -> PassManager {
        PassManager::new("TorchInductor")
            .with_mem_model(MemModel {
                pooled: true,
                workspace_factor: 1.3,
                im2col: false,
                dispatch_scale: 1.0,
            })
            // FX-graph normalization (dead-code elimination, CSE,
            // permute folding) precedes lowering in Inductor.
            .then(StreamlinePass)
            .then(LtePass::disabled())
            .then(PolicyFusionPass {
                policy: FusePolicy {
                    fuse_unary: true,
                    fuse_binary: true,
                    fuse_reshape: true,
                    anchors_only: false,
                    max_group: 16,
                },
            })
            .then(AssembleGroupsPass)
            .then(UniformLayoutPass { style: LayoutStyle::RowMajor })
            .then(UtilizationPass { tag: "inductor", scale: 1.0, adjust: inductor_adjust })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use smartmem_ir::{DType, GraphBuilder, UnaryKind};
    use smartmem_sim::DeviceConfig;

    #[test]
    fn inductor_fuses_elementwise_chains() {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", &[64, 64], DType::F16);
        let w = b.weight("w", &[64, 64], DType::F16);
        let m = b.matmul(x, w);
        let a = b.unary(m, UnaryKind::Gelu);
        let c = b.unary(a, UnaryKind::Sigmoid);
        b.output(c);
        let g = b.finish();
        let device = DeviceConfig::tesla_v100();
        let opt = TorchInductorFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.kernel_count, 1);
    }
}
