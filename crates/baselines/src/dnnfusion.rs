//! The DNNFusion pipeline — the paper's strongest baseline and the
//! substrate SmartMem is built on. Advanced classification-based fusion
//! but no layout-transformation elimination and no reduction-dimension
//! layout selection.

use smartmem_core::{Framework, MemModel, PassManager, SmartMemConfig, SmartMemPipeline};

/// DNNFusion (PLDI'21). Shares SmartMem's fusion machinery with every
/// SmartMem-specific optimization disabled: explicit `Reshape`/
/// `Transpose` operators remain kernels, layouts are the framework
/// defaults, and execution configs are untuned.
#[derive(Clone, Debug, Default)]
pub struct DnnFusionFramework {
    inner: SmartMemPipeline,
}

impl DnnFusionFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        DnnFusionFramework {
            inner: SmartMemPipeline::with_config(SmartMemConfig::dnnfusion_level()),
        }
    }
}

impl Framework for DnnFusionFramework {
    fn name(&self) -> &str {
        "DNNFusion"
    }

    fn passes(&self) -> PassManager {
        // SmartMem's sequence with every SmartMem-specific optimization
        // disabled, renamed and given DNNFusion's memory model.
        self.inner.passes().named("DNNFusion").with_mem_model(MemModel {
            pooled: true,
            workspace_factor: 1.45,
            im2col: false,
            dispatch_scale: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::Graph;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};
    use smartmem_sim::DeviceConfig;

    fn transformer_snippet() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 64, 96], DType::F16);
        let w = b.weight("w", &[96, 96], DType::F16);
        let m = b.matmul(x, w);
        let r = b.reshape(m, &[1, 64, 3, 32]);
        let t = b.transpose(r, &[0, 2, 1, 3]);
        let g = b.unary(t, UnaryKind::Gelu);
        b.output(g);
        b.finish()
    }

    #[test]
    fn dnnfusion_keeps_layout_transforms() {
        let g = transformer_snippet();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = DnnFusionFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.eliminated_ops, 0);
        // SmartMem on the same graph has fewer kernels.
        let ours = smartmem_core::SmartMemPipeline::new().optimize(&g, &device).unwrap();
        assert!(ours.stats.kernel_count < opt.stats.kernel_count);
    }

    #[test]
    fn dnnfusion_faster_than_mnn_style_but_slower_than_smartmem() {
        let g = transformer_snippet();
        let device = DeviceConfig::snapdragon_8gen2();
        let dnnf = DnnFusionFramework::new().run(&g, &device).unwrap();
        let mnn = crate::MnnFramework::new().run(&g, &device).unwrap();
        let ours = smartmem_core::SmartMemPipeline::new().run(&g, &device).unwrap();
        assert!(ours.latency_ms < dnnf.latency_ms);
        assert!(dnnf.latency_ms < mnn.latency_ms);
    }
}
