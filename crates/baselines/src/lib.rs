//! # smartmem-baselines
//!
//! Re-implementations of the five frameworks SmartMem is compared
//! against (MNN, NCNN, TFLite, TVM, DNNFusion — §4.1) plus
//! TorchInductor for the desktop comparison (Table 9). All pipelines
//! emit the same [`smartmem_core::OptimizedGraph`] and are estimated by
//! the same simulator, so cross-framework comparisons isolate exactly
//! the *optimization strategies*:
//!
//! | framework | fusion | explicit transforms | implicit relayouts | layouts |
//! |---|---|---|---|---|
//! | MNN | fixed patterns | kept as kernels | `NC4HW4` boundaries | packed buffers |
//! | NCNN | none | kept | none | packed buffers |
//! | TFLite | fixed patterns | kept | conv boundaries | row-major buffers |
//! | TVM | injective rules | kept | ConvertLayout boundaries | default texture |
//! | DNNFusion | classification-based | kept | none | default texture |
//! | TorchInductor | aggressive epilogue | kept | none | row-major buffers |
//! | **SmartMem** | classification-based | **eliminated** | **none** | **reduction-dim 2.5D** |
//!
//! Operator-support gaps reproduce Table 7's "–" entries: NCNN and
//! TFLite reject transformer operators; TFLite additionally rejects the
//! slice/split detection heads of YOLO.
//!
//! Each framework is a declarative pass sequence through
//! [`smartmem_core::PassManager`]: an operator-support gate, optional
//! relayout insertion, policy fusion, a uniform layout style, and a
//! kernel-quality finalization (see the pass types re-exported below).
//!
//! # Example
//!
//! ```
//! use smartmem_baselines::{all_mobile_frameworks, MnnFramework};
//! use smartmem_core::Framework;
//!
//! assert_eq!(MnnFramework::new().name(), "MNN");
//! assert_eq!(all_mobile_frameworks().len(), 6); // 5 baselines + SmartMem
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod dnnfusion;
mod inductor;
mod mnn;
mod ncnn;
mod passes;
mod tflite;
mod tvm;

pub use common::{
    assign_layouts_uniform, baseline_groups, finalize_utilization, fuse_with_policy,
    has_selection_ops, has_transformer_ops, insert_relayouts, FusePolicy, LayoutStyle,
    RelayoutRule,
};
pub use dnnfusion::DnnFusionFramework;
pub use inductor::TorchInductorFramework;
pub use mnn::MnnFramework;
pub use ncnn::NcnnFramework;
pub use passes::{PolicyFusionPass, RelayoutPass, SupportPass, UniformLayoutPass, UtilizationPass};
pub use tflite::TfLiteFramework;
pub use tvm::TvmFramework;

use smartmem_core::{Framework, SmartMemPipeline};

/// The six frameworks of the mobile-GPU comparison, in the paper's
/// column order (MNN, NCNN, TFLite, TVM, DNNFusion, SmartMem).
pub fn all_mobile_frameworks() -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(MnnFramework::new()),
        Box::new(NcnnFramework::new()),
        Box::new(TfLiteFramework::new()),
        Box::new(TvmFramework::new()),
        Box::new(DnnFusionFramework::new()),
        Box::new(SmartMemPipeline::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_names_match_paper_order() {
        let names: Vec<String> =
            all_mobile_frameworks().iter().map(|f| f.name().to_string()).collect();
        assert_eq!(names, vec!["MNN", "NCNN", "TFLite", "TVM", "DNNFusion", "SmartMem"]);
    }
}
