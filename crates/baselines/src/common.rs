//! Shared machinery for the baseline pipelines: parameterized fusion
//! policies, framework-inserted relayout rewriting, layout styles and
//! utilization finalization.

use smartmem_core::{assemble_groups, eliminate, GroupDraft, KernelGroup, LteResult};
use smartmem_ir::{
    Graph, GraphBuilder, Layout, Node, Op, OpOrigin, TensorId, TensorKind, UnaryKind,
};
use smartmem_sim::DeviceConfig;
use std::collections::HashMap;

/// Fusion capabilities of a baseline framework.
#[derive(Clone, Copy, Debug)]
pub struct FusePolicy {
    /// Fuse unary element-wise ops into their producer.
    pub fuse_unary: bool,
    /// Fuse binary element-wise ops (bias-add, residual) into their
    /// producer.
    pub fuse_binary: bool,
    /// Fold `Reshape` into the producer kernel (bijective fusion, as in
    /// TVM and TorchInductor).
    pub fuse_reshape: bool,
    /// Only fuse into compute anchors (`Conv2d`/`MatMul`), the
    /// fixed-pattern style of MNN/TFLite; when false any producer kernel
    /// can absorb an epilogue (DNNFusion/TVM style).
    pub anchors_only: bool,
    /// Maximum members per kernel.
    pub max_group: usize,
}

impl FusePolicy {
    /// No fusion at all (NCNN executes the graph as-is on GPU).
    pub fn none() -> Self {
        FusePolicy {
            fuse_unary: false,
            fuse_binary: false,
            fuse_reshape: false,
            anchors_only: true,
            max_group: 1,
        }
    }

    /// Fixed patterns: `Conv/MatMul (+bias) (+activation)`.
    pub fn fixed_patterns() -> Self {
        FusePolicy {
            fuse_unary: true,
            fuse_binary: true,
            fuse_reshape: false,
            anchors_only: true,
            max_group: 3,
        }
    }

    /// TVM-style rule-based fusion of injective epilogues.
    pub fn injective() -> Self {
        FusePolicy {
            fuse_unary: true,
            fuse_binary: false,
            fuse_reshape: true,
            anchors_only: false,
            max_group: 6,
        }
    }
}

/// Groups operators under a baseline fusion policy (the counterpart of
/// `smartmem_core::fuse`, which models DNNFusion's more general rules).
pub fn fuse_with_policy(graph: &Graph, lte: &LteResult, policy: FusePolicy) -> Vec<GroupDraft> {
    let mut consumers: HashMap<TensorId, usize> = HashMap::new();
    for &id in &lte.kept {
        for &input in &graph.node(id).inputs {
            let src = lte.resolve(input).source;
            *consumers.entry(src).or_insert(0) += 1;
        }
    }
    for &out in graph.outputs() {
        let src = lte.resolve(out).source;
        *consumers.entry(src).or_insert(0) += 1;
    }

    let mut groups: Vec<GroupDraft> = Vec::new();
    let mut group_of_tensor: HashMap<TensorId, usize> = HashMap::new();
    for &id in &lte.kept {
        let node = graph.node(id);
        let fusable = match &node.op {
            Op::Unary { .. } => policy.fuse_unary,
            Op::Binary { .. } => policy.fuse_binary,
            Op::Reshape { .. } => policy.fuse_reshape,
            _ => false,
        };
        let mut fused = false;
        if fusable {
            for &input in &node.inputs {
                let src = lte.resolve(input).source;
                if graph.tensor(src).kind != TensorKind::Activation {
                    continue;
                }
                if consumers.get(&src).copied().unwrap_or(0) != 1 {
                    continue;
                }
                if let Some(&gidx) = group_of_tensor.get(&src) {
                    if groups[gidx].members.len() >= policy.max_group {
                        continue;
                    }
                    if policy.anchors_only {
                        let anchor_op = &graph.node(groups[gidx].anchor).op;
                        if !matches!(anchor_op, Op::Conv2d { .. } | Op::MatMul { .. }) {
                            continue;
                        }
                    }
                    groups[gidx].members.push(id);
                    group_of_tensor.remove(&src);
                    group_of_tensor.insert(node.outputs[0], gidx);
                    fused = true;
                    break;
                }
            }
        }
        if !fused {
            let gidx = groups.len();
            groups.push(GroupDraft { anchor: id, members: vec![id] });
            for &out in &node.outputs {
                group_of_tensor.insert(out, gidx);
            }
        }
    }
    groups
}

/// Where a baseline framework inserts implicit relayout operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayoutRule {
    /// No implicit transformations.
    None,
    /// Convert at every boundary between the conv-friendly packed layout
    /// and the generic layout (MNN's `NC4HW4` behaviour): before a
    /// conv-family op whose producer is not conv-family, and before a
    /// non-conv-family op whose producer is conv-family.
    ConvBoundary,
}

fn conv_family(op: &Op) -> bool {
    matches!(
        op,
        Op::Conv2d { .. }
            | Op::Pool2d { .. }
            | Op::InstanceNorm
            | Op::Binary { .. }
            | Op::Unary { .. }
    )
}

/// Rebuilds `graph` inserting framework-origin `Identity` relayout
/// operators per `rule`; returns the rewritten graph and the number of
/// inserted operators.
pub fn insert_relayouts(graph: &Graph, rule: RelayoutRule) -> (Graph, usize) {
    if rule == RelayoutRule::None {
        return (graph.clone(), 0);
    }
    let mut b = GraphBuilder::new(graph.name().to_string());
    let mut remap: HashMap<TensorId, TensorId> = HashMap::new();
    // Re-create inputs and weights first.
    for (i, t) in graph.tensors().iter().enumerate() {
        let old = TensorId(i as u32);
        match t.kind {
            TensorKind::Input => {
                let new = b.input(t.name.clone(), t.shape.dims(), t.dtype);
                remap.insert(old, new);
            }
            TensorKind::Weight => {
                let new = match &t.init {
                    Some(v) => b.weight_init(t.name.clone(), t.shape.dims(), t.dtype, v.clone()),
                    None => b.weight(t.name.clone(), t.shape.dims(), t.dtype),
                };
                remap.insert(old, new);
            }
            TensorKind::Activation => {}
        }
    }
    let mut inserted = 0usize;
    let needs_boundary = |node: &Node, input: TensorId| -> bool {
        let producer = graph.producer(input);
        let info = graph.tensor(input);
        if info.kind != TensorKind::Activation || info.shape.rank() != 4 {
            return false;
        }
        match producer {
            Some(p) => conv_family(&graph.node(p).op) != conv_family(&node.op),
            None => false,
        }
    };
    for node in graph.nodes() {
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            let mut mapped = *remap.get(&input).expect("topological remap");
            if needs_boundary(node, input) {
                b.set_origin(OpOrigin::Framework);
                mapped = b.unary(mapped, UnaryKind::Identity);
                b.set_origin(OpOrigin::Model);
                inserted += 1;
            }
            inputs.push(mapped);
        }
        let outs =
            b.try_push(node.op.clone(), &inputs).expect("rebuilding a valid graph cannot fail");
        for (o, &new) in node.outputs.iter().zip(outs.iter()) {
            remap.insert(*o, new);
        }
    }
    for &out in graph.outputs() {
        b.output(remap[&out]);
    }
    (b.finish(), inserted)
}

/// Uniform physical-layout styles used by the baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutStyle {
    /// Row-major buffers everywhere.
    RowMajor,
    /// MNN-style `NC4HW4` packing for rank-4 tensors, row-major
    /// otherwise.
    Nc4Hw4,
    /// Texture with the last logical dim on X for every tensor that
    /// fits (DNNFusion on mobile GPUs).
    TextureDefault,
}

/// Applies a uniform layout style to every read and output of `groups`.
pub fn assign_layouts_uniform(
    graph: &Graph,
    groups: &mut [KernelGroup],
    device: &DeviceConfig,
    style: LayoutStyle,
) {
    let layout_of = |t: TensorId| -> Layout {
        let shape = &graph.tensor(t).shape;
        let rank = shape.rank();
        match style {
            LayoutStyle::RowMajor => Layout::row_major(rank),
            LayoutStyle::Nc4Hw4 => {
                if rank == 4 {
                    Layout::nc4hw4()
                } else {
                    Layout::row_major(rank)
                }
            }
            LayoutStyle::TextureDefault => {
                if device.caps.texture_path && rank == 4 {
                    let l = Layout::texture_default(rank);
                    if smartmem_core::fits_texture(&l, shape, device.caps.max_texture_extent) {
                        l
                    } else {
                        Layout::row_major(rank)
                    }
                } else {
                    Layout::row_major(rank)
                }
            }
        }
    };
    for g in groups.iter_mut() {
        g.output_layout = layout_of(g.output);
        for r in &mut g.reads {
            r.layout = layout_of(r.source);
        }
    }
}

/// Sets per-group utilization from the default execution config scaled
/// by the framework's kernel quality, with an optional per-anchor
/// adjustment (e.g. TVM's grouped-convolution weakness).
pub fn finalize_utilization(
    graph: &Graph,
    groups: &mut [KernelGroup],
    util_scale: f64,
    adjust: impl Fn(&Op) -> f64,
) {
    for g in groups.iter_mut() {
        let node = graph.node(g.anchor);
        let dims = graph.tensor(node.outputs[0]).shape.dims().to_vec();
        let (m, n) = smartmem_core::iteration_mn(&dims);
        let base = smartmem_core::utilization(&node.op, m, n, &g.config);
        g.utilization = (base * util_scale * adjust(&node.op)).clamp(0.02, 0.95);
    }
}

/// Builds groups for a baseline: no elimination, policy fusion,
/// assembled through the shared machinery.
pub fn baseline_groups(graph: &Graph, policy: FusePolicy) -> Vec<KernelGroup> {
    let lte = eliminate(graph, false, false);
    let drafts = fuse_with_policy(graph, &lte, policy);
    assemble_groups(graph, &lte, &drafts)
}

/// Operator-support scan: does the graph contain operators that only
/// transformer-capable frameworks support?
pub fn has_transformer_ops(graph: &Graph) -> bool {
    graph.nodes().iter().any(|n| {
        matches!(
            n.op,
            Op::MatMul { .. } | Op::LayerNorm { .. } | Op::Softmax { .. } | Op::Gather { .. }
        )
    })
}

/// Operator-support scan for selection/detection-head operators (the
/// reason TFLite's GPU delegate rejects YOLO-style models in Table 7).
pub fn has_selection_ops(graph: &Graph) -> bool {
    graph
        .nodes()
        .iter()
        .any(|n| matches!(n.op, Op::Slice { .. } | Op::Split { .. } | Op::DepthToSpace { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::DType;

    fn conv_mix() -> Graph {
        let mut b = GraphBuilder::new("mix");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let rs = b.reshape(r, &[1, 8, 64]);
        let sm = b.softmax(rs, 2);
        b.output(sm);
        b.finish()
    }

    #[test]
    fn policy_none_keeps_every_op() {
        let g = conv_mix();
        let groups = baseline_groups(&g, FusePolicy::none());
        assert_eq!(groups.len(), g.op_count());
    }

    #[test]
    fn fixed_patterns_fuse_conv_relu_only() {
        let g = conv_mix();
        let groups = baseline_groups(&g, FusePolicy::fixed_patterns());
        // conv+relu fuse; reshape and softmax stay.
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn relayout_insertion_at_conv_boundaries() {
        let g = conv_mix();
        let (rewritten, inserted) = insert_relayouts(&g, RelayoutRule::ConvBoundary);
        // relu -> reshape crosses from conv-family to generic on a 4D
        // tensor: one conversion.
        assert_eq!(inserted, 1);
        assert_eq!(rewritten.op_count(), g.op_count() + 1);
        assert!(rewritten.validate().is_ok());
        // Inserted ops carry Framework origin.
        let framework_ops =
            rewritten.nodes().iter().filter(|n| n.origin == OpOrigin::Framework).count();
        assert_eq!(framework_ops, 1);
    }

    #[test]
    fn relayout_none_is_identity() {
        let g = conv_mix();
        let (rewritten, inserted) = insert_relayouts(&g, RelayoutRule::None);
        assert_eq!(inserted, 0);
        assert_eq!(rewritten.op_count(), g.op_count());
    }

    #[test]
    fn uniform_layout_styles() {
        let g = conv_mix();
        let device = DeviceConfig::snapdragon_8gen2();
        let mut groups = baseline_groups(&g, FusePolicy::none());
        assign_layouts_uniform(&g, &mut groups, &device, LayoutStyle::Nc4Hw4);
        let conv_read = &groups[0].reads[0];
        assert_eq!(conv_read.layout, Layout::nc4hw4());
        assign_layouts_uniform(&g, &mut groups, &device, LayoutStyle::RowMajor);
        assert_eq!(groups[0].reads[0].layout, Layout::row_major(4));
    }

    #[test]
    fn support_scans() {
        let g = conv_mix();
        assert!(has_transformer_ops(&g)); // softmax
        assert!(!has_selection_ops(&g));
    }

    #[test]
    fn utilization_finalize_scales() {
        let g = conv_mix();
        let mut groups = baseline_groups(&g, FusePolicy::none());
        finalize_utilization(&g, &mut groups, 0.5, |_| 1.0);
        let low: Vec<f64> = groups.iter().map(|g| g.utilization).collect();
        finalize_utilization(&g, &mut groups, 1.0, |_| 1.0);
        for (l, g2) in low.iter().zip(groups.iter()) {
            assert!(*l < g2.utilization);
        }
    }
}
