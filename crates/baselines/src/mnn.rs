//! The MNN-style pipeline: fixed-pattern fusion, `NC4HW4` packed
//! layouts with implicit conversions at conv/generic boundaries, and a
//! memory pool with substantial per-op workspaces.

use crate::common::{
    assign_layouts_uniform, baseline_groups, finalize_utilization, insert_relayouts, FusePolicy,
    LayoutStyle, RelayoutRule,
};
use smartmem_core::{Framework, MemModel, OptStats, OptimizedGraph, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;

/// MNN (Alibaba's mobile inference engine) as characterized in the
/// paper: supports all evaluated models, employs fixed-pattern fusion
/// (`Conv/MatMul + bias + activation`), keeps every explicit
/// `Reshape`/`Transpose` as a kernel, and inserts implicit `NC4HW4`
/// conversions between conv-friendly and generic operators.
#[derive(Clone, Debug, Default)]
pub struct MnnFramework;

impl MnnFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        MnnFramework
    }
}

impl Framework for MnnFramework {
    fn name(&self) -> &str {
        "MNN"
    }

    fn optimize(&self, graph: &Graph, device: &DeviceConfig) -> Result<OptimizedGraph, Unsupported> {
        let (rewritten, inserted) = insert_relayouts(graph, RelayoutRule::ConvBoundary);
        let mut groups = baseline_groups(&rewritten, FusePolicy::fixed_patterns());
        assign_layouts_uniform(&rewritten, &mut groups, device, LayoutStyle::Nc4Hw4);
        finalize_utilization(&rewritten, &mut groups, 0.85, |op| {
            use smartmem_ir::Op;
            // MNN's convolution kernels are excellent (Table 1: ResNet50
            // at 293 GMACS); its transformer and transform/movement
            // kernels are not (Swin at 15 GMACS, 54% of time in
            // explicit transforms).
            if op.is_layout_transform() || matches!(op.category(), smartmem_ir::OpCategory::DataMovement) {
                0.06
            } else {
                match op {
                    Op::Conv2d { .. } | Op::Pool2d { .. } => 1.0,
                    Op::MatMul { .. } | Op::LayerNorm { .. } | Op::Softmax { .. } | Op::InstanceNorm => 0.18,
                    _ => 0.4,
                }
            }
        });
        let stats = OptStats {
            source_ops: graph.op_count(),
            kernel_count: groups.len(),
            eliminated_ops: 0,
            fused_ops: groups.iter().map(|g| g.members.len() - 1).sum(),
            implicit_inserted: inserted,
            redundant_tensors: 0,
            redundant_bytes_max: 0,
        };
        Ok(OptimizedGraph {
            graph: rewritten,
            groups,
            stats,
            mem_model: MemModel { pooled: true, workspace_factor: 2.6, im2col: true, dispatch_scale: 1.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};

    fn model() -> Graph {
        let mut b = GraphBuilder::new("m");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let rs = b.reshape(r, &[1, 8, 64]);
        let t = b.transpose(rs, &[0, 2, 1]);
        b.output(t);
        b.finish()
    }

    #[test]
    fn mnn_keeps_transforms_and_inserts_relayouts() {
        let g = model();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = MnnFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.eliminated_ops, 0);
        assert!(opt.stats.implicit_inserted >= 1);
        assert!(opt.stats.kernel_count > 2);
    }

    #[test]
    fn mnn_estimates_slower_than_smartmem() {
        let g = model();
        let device = DeviceConfig::snapdragon_8gen2();
        let mnn = MnnFramework::new().run(&g, &device).unwrap();
        let ours = smartmem_core::SmartMemPipeline::new().run(&g, &device).unwrap();
        assert!(mnn.latency_ms > ours.latency_ms);
        assert!(mnn.kernel_count > ours.kernel_count);
    }
}
