//! The MNN-style pipeline: fixed-pattern fusion, `NC4HW4` packed
//! layouts with implicit conversions at conv/generic boundaries, and a
//! memory pool with substantial per-op workspaces.

use crate::common::{FusePolicy, LayoutStyle, RelayoutRule};
use crate::passes::{PolicyFusionPass, RelayoutPass, UniformLayoutPass, UtilizationPass};
use smartmem_core::{AssembleGroupsPass, Framework, LtePass, MemModel, PassManager};
use smartmem_ir::Op;

/// MNN (Alibaba's mobile inference engine) as characterized in the
/// paper: supports all evaluated models, employs fixed-pattern fusion
/// (`Conv/MatMul + bias + activation`), keeps every explicit
/// `Reshape`/`Transpose` as a kernel, and inserts implicit `NC4HW4`
/// conversions between conv-friendly and generic operators.
#[derive(Clone, Debug, Default)]
pub struct MnnFramework;

impl MnnFramework {
    /// Creates the pipeline.
    pub fn new() -> Self {
        MnnFramework
    }
}

/// MNN's convolution kernels are excellent (Table 1: ResNet50 at 293
/// GMACS); its transformer and transform/movement kernels are not (Swin
/// at 15 GMACS, 54% of time in explicit transforms).
fn mnn_adjust(op: &Op) -> f64 {
    if op.is_layout_transform() || matches!(op.category(), smartmem_ir::OpCategory::DataMovement) {
        0.06
    } else {
        match op {
            Op::Conv2d { .. } | Op::Pool2d { .. } => 1.0,
            Op::MatMul { .. } | Op::LayerNorm { .. } | Op::Softmax { .. } | Op::InstanceNorm => {
                0.18
            }
            _ => 0.4,
        }
    }
}

impl Framework for MnnFramework {
    fn name(&self) -> &str {
        "MNN"
    }

    fn passes(&self) -> PassManager {
        PassManager::new("MNN")
            .with_mem_model(MemModel {
                pooled: true,
                workspace_factor: 2.6,
                im2col: true,
                dispatch_scale: 1.0,
            })
            .then(RelayoutPass { rule: RelayoutRule::ConvBoundary })
            .then(LtePass::disabled())
            .then(PolicyFusionPass { policy: FusePolicy::fixed_patterns() })
            .then(AssembleGroupsPass)
            .then(UniformLayoutPass { style: LayoutStyle::Nc4Hw4 })
            .then(UtilizationPass { tag: "mnn", scale: 0.85, adjust: mnn_adjust })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::Graph;
    use smartmem_ir::{DType, GraphBuilder, UnaryKind};
    use smartmem_sim::DeviceConfig;

    fn model() -> Graph {
        let mut b = GraphBuilder::new("m");
        let x = b.input("x", &[1, 8, 8, 8], DType::F16);
        let w = b.weight("w", &[8, 8, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let rs = b.reshape(r, &[1, 8, 64]);
        let t = b.transpose(rs, &[0, 2, 1]);
        b.output(t);
        b.finish()
    }

    #[test]
    fn mnn_keeps_transforms_and_inserts_relayouts() {
        let g = model();
        let device = DeviceConfig::snapdragon_8gen2();
        let opt = MnnFramework::new().optimize(&g, &device).unwrap();
        assert_eq!(opt.stats.eliminated_ops, 0);
        assert!(opt.stats.implicit_inserted >= 1);
        assert!(opt.stats.kernel_count > 2);
    }

    #[test]
    fn mnn_estimates_slower_than_smartmem() {
        let g = model();
        let device = DeviceConfig::snapdragon_8gen2();
        let mnn = MnnFramework::new().run(&g, &device).unwrap();
        let ours = smartmem_core::SmartMemPipeline::new().run(&g, &device).unwrap();
        assert!(mnn.latency_ms > ours.latency_ms);
        assert!(mnn.kernel_count > ours.kernel_count);
    }
}
