//! Property-based tests for shapes and layouts: address maps must be
//! bijections, shape algebra must roundtrip.

use proptest::prelude::*;
use smartmem_ir::{Layout, PhysicalAddress, Shape, TexturePlacement};

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..7, 1..5)
}

fn enumerate(dims: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for &d in dims {
        let mut next = Vec::new();
        for c in &out {
            for v in 0..d {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        out = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn linearize_delinearize_roundtrip(dims in arb_dims()) {
        let s = Shape::new(dims);
        for off in 0..s.numel().min(512) {
            let c = s.delinearize(off);
            prop_assert_eq!(s.linearize(&c), off);
        }
    }

    /// Every buffer layout (any dimension permutation, any vectorized
    /// dim) must map distinct coordinates to distinct addresses.
    #[test]
    fn buffer_layouts_are_injective(dims in arb_dims(), seed in 0u64..100, vec_choice in 0usize..5) {
        let rank = dims.len();
        let mut perm: Vec<usize> = (0..rank).collect();
        let mut s = seed;
        for i in (1..rank).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let vector_dim = if vec_choice < rank { Some(vec_choice) } else { None };
        let layout = Layout::Buffer { perm, vector_dim };
        prop_assert!(layout.validate(rank).is_ok());
        let shape = Shape::new(dims.clone());
        let mut seen = std::collections::HashSet::new();
        for c in enumerate(&dims) {
            let a = layout.address(&shape, &c);
            prop_assert!(seen.insert(a), "duplicate address {:?} at {:?}", a, c);
        }
    }

    /// Texture placements partitioning the dims are injective as well.
    #[test]
    fn texture_layouts_are_injective(dims in arb_dims(), split in 0usize..4, vec_choice in 0usize..5) {
        let rank = dims.len();
        let split = split.min(rank);
        let height: Vec<usize> = (0..split).collect();
        let width: Vec<usize> = (split..rank).collect();
        if width.is_empty() {
            return Ok(());
        }
        let vector_dim = if vec_choice < rank { Some(vec_choice) } else { None };
        let layout = Layout::Texture(TexturePlacement {
            height_dims: height,
            width_dims: width,
            vector_dim,
        });
        prop_assert!(layout.validate(rank).is_ok());
        let shape = Shape::new(dims.clone());
        let mut seen = std::collections::HashSet::new();
        for c in enumerate(&dims) {
            let a = layout.address(&shape, &c);
            prop_assert!(seen.insert(a), "duplicate {:?} at {:?}", a, c);
        }
    }

    /// Texture extents bound every texel coordinate produced.
    #[test]
    fn texture_extent_bounds_addresses(dims in arb_dims()) {
        let rank = dims.len();
        let layout = Layout::texture_default(rank);
        if layout.validate(rank).is_err() {
            return Ok(());
        }
        let shape = Shape::new(dims.clone());
        let (w, h) = layout.texture_extent(&shape).unwrap();
        for c in enumerate(&dims) {
            if let PhysicalAddress::Texel { x, y, lane } = layout.address(&shape, &c) {
                prop_assert!(x < w, "x {x} >= width {w}");
                prop_assert!(y < h, "y {y} >= height {h}");
                prop_assert!(lane < 4);
            }
        }
    }

    #[test]
    fn broadcast_is_commutative(a in arb_dims(), b in arb_dims()) {
        let (sa, sb) = (Shape::new(a), Shape::new(b));
        let ab = sa.broadcast(&sb);
        let ba = sb.broadcast(&sa);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(x.dims(), y.dims());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated graphs — including weight initializers, which ride the
    /// v2 `TensorInfo` wire layout — survive a wire round trip exactly.
    #[test]
    fn graphs_with_initializers_roundtrip_on_the_wire(seed in 0u64..500) {
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        let g = smartmem_ir::generate::random_graph(seed);
        let bytes = encode_to_vec(&g);
        let back: smartmem_ir::Graph = decode_from(&bytes).expect("decode");
        back.validate().expect("decoded graph invalid");
        prop_assert_eq!(g.to_string(), back.to_string());
        // Initializers are value-exact (bit-level f32 equality).
        for (a, b) in g.tensors().iter().zip(back.tensors()) {
            prop_assert_eq!(&a.name, &b.name);
            match (&a.init, &b.init) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.len(), y.len());
                    for (u, v) in x.iter().zip(y) {
                        prop_assert_eq!(u.to_bits(), v.to_bits());
                    }
                }
                (None, None) => {}
                _ => prop_assert!(false, "init presence changed"),
            }
        }
        // Re-encoding the decoded graph is byte-stable.
        prop_assert_eq!(bytes, encode_to_vec(&back));
    }

    /// Bucket rounding is total, monotone and idempotent over arbitrary
    /// strictly-increasing tables, and always lands on a bucket (or the
    /// saturating ceiling for out-of-range extents).
    #[test]
    fn bucket_rounding_is_monotone_and_idempotent(
        raw in prop::collection::vec(1usize..200, 1..6),
        a in 0usize..250,
        b in 0usize..250,
    ) {
        use smartmem_ir::BucketTable;
        let mut buckets = raw.clone();
        buckets.sort_unstable();
        buckets.dedup();
        let table = BucketTable::new(buckets).expect("sorted deduped list validates");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            table.round_up(lo) <= table.round_up(hi),
            "rounding not monotone: {} -> {}, {} -> {}",
            lo, table.round_up(lo), hi, table.round_up(hi)
        );
        for n in [lo, hi] {
            let r = table.round_up(n);
            prop_assert!(table.contains(r), "round_up({n}) = {r} is not a bucket");
            prop_assert_eq!(table.round_up(r), r, "rounding not idempotent at {}", r);
            if n <= table.ceiling() {
                prop_assert!(r >= n, "in-range extent {n} shrank to {r}");
            } else {
                prop_assert_eq!(r, table.ceiling(), "out-of-range {} must saturate", n);
            }
        }
    }

    /// A graph carrying a bound symbolic dimension survives both codecs
    /// byte-identically: wire encode → decode → re-encode is stable,
    /// and JSON export → import → re-export is stable, with the bucket
    /// table and binding intact.
    #[test]
    fn sym_graphs_roundtrip_wire_and_json(max_pow in 2u32..7, raw_seq in 1usize..64) {
        use smartmem_ir::import::{export_json, import_json};
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        use smartmem_ir::{BucketTable, DType, GraphBuilder};
        let table = BucketTable::powers_of_two(1 << max_pow);
        let seq = (raw_seq % table.ceiling()).max(1);
        if seq == 5 || seq == 48 {
            // Collides with a fixed extent: the binding would claim the
            // batch/head axes too. Legal, but not the shape under test.
            return Ok(());
        }
        let mut b = GraphBuilder::new("sym_rt");
        let x = b.input("x", &[5, seq, 48], DType::F16);
        let w = b.weight("w", &[48, 48], DType::F16);
        let y = b.matmul(x, w);
        b.output(y);
        let g = b.finish().with_sym_dim("seq", &table, seq).expect("binding validates");

        let bytes = encode_to_vec(&g);
        let back: smartmem_ir::Graph = decode_from(&bytes).expect("wire decode");
        back.validate().expect("decoded graph invalid");
        prop_assert_eq!(&bytes, &encode_to_vec(&back), "wire re-encode not byte-stable");
        prop_assert_eq!(back.sym_dims(), g.sym_dims());
        prop_assert_eq!(back.sym_axes(), g.sym_axes());
        prop_assert_eq!(back.sym_dims()[0].bucket(), table.round_up(seq));

        let json = export_json(&g);
        let back_json = import_json(&json).expect("json import");
        prop_assert_eq!(&json, &export_json(&back_json), "json re-export not byte-stable");
        prop_assert_eq!(back_json.sym_dims(), g.sym_dims());
        prop_assert_eq!(back_json.sym_axes(), g.sym_axes());
    }

    /// Non-finite initializers survive the wire bit-exactly too.
    #[test]
    fn nonfinite_inits_roundtrip(bits in 0usize..6) {
        use smartmem_ir::wire::{decode_from, encode_to_vec};
        use smartmem_ir::{DType, GraphBuilder, UnaryKind};
        let v = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0, f32::MIN_POSITIVE][bits];
        let mut b = GraphBuilder::new("nf");
        let x = b.input("x", &[1], DType::F32);
        let w = b.weight_init("w", &[1], DType::F32, vec![v]);
        let s = b.add(x, w);
        let y = b.unary(s, UnaryKind::Relu);
        b.output(y);
        let g = b.finish();
        let back: smartmem_ir::Graph = decode_from(&encode_to_vec(&g)).expect("decode");
        let got = back.tensors().iter().find(|t| t.name == "w").unwrap().init.as_ref().unwrap()[0];
        prop_assert_eq!(got.to_bits(), v.to_bits());
    }
}
