//! Corrupt-input fuzzing for the graph importer.
//!
//! The importer parses untrusted bytes, so every malformed input —
//! truncations, byte flips, structural mutations, adversarial field
//! values — must map to a typed [`ImportError`], never a panic and
//! never an invalid [`Graph`]. The proptests mutate the checked-in
//! fixtures (the same files `tests/fixtures/` feeds the snapshot
//! tests) plus generator exports, so coverage tracks the real formats.

use proptest::prelude::*;
use smartmem_ir::import::{export_json, import_json};
use smartmem_ir::{generate, ImportError};

const FINN_MLP: &str = include_str!("../../../tests/fixtures/finn_mlp.json");
const CNN: &str = include_str!("../../../tests/fixtures/convertlayout_cnn.json");
const SINGLE: &str = include_str!("../../../tests/fixtures/single_op.json");

/// The invariant under fuzz: any input either imports to a graph that
/// passes `validate()`, or yields a typed error. (Rust aborts the test
/// on panic, so "returns at all" is the no-panic check.)
fn well_behaved(src: &str) {
    match import_json(src) {
        Ok(g) => g.validate().expect("imported graph failed validation"),
        Err(e) => {
            // Errors must render (Display is part of the API contract).
            let _ = e.to_string();
        }
    }
}

#[test]
fn fixtures_import_cleanly() {
    for src in [FINN_MLP, CNN, SINGLE] {
        let g = import_json(src).expect("fixture must import");
        g.validate().expect("fixture graph must validate");
        // Export → import is stable on the fixtures.
        let j = export_json(&g);
        let g2 = import_json(&j).expect("reimport");
        assert_eq!(j, export_json(&g2));
    }
}

#[test]
fn truncations_never_panic() {
    for src in [FINN_MLP, CNN, SINGLE] {
        for cut in 0..src.len() {
            if !src.is_char_boundary(cut) {
                continue;
            }
            let t = &src[..cut];
            // Cutting only trailing whitespace leaves valid JSON; any
            // cut into the payload must fail with a typed error.
            if t.trim_end() == src.trim_end() {
                well_behaved(t);
            } else {
                assert!(import_json(t).is_err(), "truncation at {cut} unexpectedly imported");
            }
        }
    }
}

#[test]
fn targeted_corruptions_yield_typed_errors() {
    // Each corruption exercises one ImportError variant by name.
    type Case = (&'static str, fn(&ImportError) -> bool);
    let cases: &[Case] = &[
        (r#"{"name": 3}"#, |e| matches!(e, ImportError::BadField { .. })),
        (r#"{"name": "g"}"#, |e| matches!(e, ImportError::MissingField { .. })),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2]}],
                "ops":[{"kind":"warp","inputs":["x"],"outputs":["y"]}],"outputs":["y"]}"#,
            |e| matches!(e, ImportError::UnknownOp(_)),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2],"dtype":"f64"}],
                "ops":[],"outputs":["x"]}"#,
            |e| matches!(e, ImportError::UnknownDType(_)),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2]}],
                "ops":[{"kind":"unary","f":"relu","inputs":["ghost"],"outputs":["y"]}],
                "outputs":["y"]}"#,
            |e| matches!(e, ImportError::UnknownTensor(_)),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2]},
                {"name":"x","kind":"input","shape":[3]}],"ops":[],"outputs":["x"]}"#,
            |e| matches!(e, ImportError::DuplicateTensor(_)),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2]}],
                "ops":[{"kind":"unary","f":"relu","inputs":["b"],"outputs":["a"]},
                       {"kind":"unary","f":"relu","inputs":["a"],"outputs":["b"]}],
                "outputs":["a"]}"#,
            |e| matches!(e, ImportError::Cycle(_)),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2],"dtype":"f32"},
                {"name":"w","kind":"weight","shape":[2],"dtype":"i8"}],
                "ops":[{"kind":"binary","f":"add","inputs":["x","w"],"outputs":["y"]}],
                "outputs":["y"]}"#,
            |e| matches!(e, ImportError::DTypeMismatch { .. }),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"w","kind":"weight","shape":[3],"init":[1.0]}],
                "ops":[],"outputs":["w"]}"#,
            |e| matches!(e, ImportError::BadInit { .. }),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[4]}],
                "ops":[{"kind":"split","axis":0,"parts":2,"inputs":["x"],
                        "outputs":["a","b","c"]}],"outputs":["a"]}"#,
            |e| matches!(e, ImportError::ArityMismatch { .. }),
        ),
        (
            r#"{"name":"g","tensors":[{"name":"x","kind":"input","shape":[2,3]}],
                "ops":[{"kind":"transpose","perm":[0],"inputs":["x"],"outputs":["y"]}],
                "outputs":["y"]}"#,
            |e| matches!(e, ImportError::Graph(_)),
        ),
        ("{", |e| matches!(e, ImportError::Parse { .. })),
    ];
    for (src, matches_variant) in cases {
        let err = import_json(src).expect_err("corrupt input imported");
        assert!(matches_variant(&err), "wrong variant for {src:?}: {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Byte-level flips anywhere in a fixture parse or fail cleanly.
    #[test]
    fn byte_flips_are_well_behaved(which in 0usize..3, pos in 0usize..2048, byte in 0usize..256) {
        let src = [FINN_MLP, CNN, SINGLE][which];
        let mut bytes = src.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = byte as u8;
        if let Ok(s) = String::from_utf8(bytes) {
            well_behaved(&s);
        }
    }

    /// Structural splices: chop out or duplicate a random span.
    #[test]
    fn span_splices_are_well_behaved(which in 0usize..3, a in 0usize..2048, b in 0usize..2048, dup in 0usize..2) {
        let src = [FINN_MLP, CNN, SINGLE][which];
        let (mut a, mut b) = (a % src.len(), b % src.len());
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if !src.is_char_boundary(a) || !src.is_char_boundary(b) {
            return Ok(());
        }
        let s = if dup == 1 {
            format!("{}{}{}", &src[..b], &src[a..b], &src[b..])
        } else {
            format!("{}{}", &src[..a], &src[b..])
        };
        well_behaved(&s);
    }

    /// Generator exports mutated at a random token keep the invariant
    /// (covers a much wider op/attr surface than the fixtures).
    #[test]
    fn mutated_generator_exports_are_well_behaved(seed in 0u64..150, pos in 0usize..4096, byte in 0usize..256) {
        let g = generate::random_graph(seed);
        let src = export_json(&g);
        let mut bytes = src.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte as u8;
        if let Ok(s) = String::from_utf8(bytes) {
            well_behaved(&s);
        }
    }
}
