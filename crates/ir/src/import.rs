//! Text/JSON graph import and export.
//!
//! A small, hand-rolled interchange format so external graphs — importer
//! fixtures, fuzzer counterexamples, user models — can flow through every
//! optimizing pipeline without linking a serialization crate. The format
//! is a single JSON object:
//!
//! ```json
//! {
//!   "name": "finn-mlp",
//!   "tensors": [
//!     {"name": "x",  "kind": "input",  "shape": [1, 64], "dtype": "f32"},
//!     {"name": "s0", "kind": "weight", "shape": [1], "dtype": "f32", "init": [0.5]}
//!   ],
//!   "ops": [
//!     {"kind": "transpose", "perm": [1, 0], "inputs": ["x"], "outputs": ["xt"]},
//!     {"kind": "binary", "f": "mul", "inputs": ["xt", "s0"], "outputs": ["y"]}
//!   ],
//!   "outputs": ["y"]
//! }
//! ```
//!
//! Rules:
//!
//! - `tensors` declares graph inputs and weights only; activations are
//!   declared implicitly by the `outputs` lists of ops. Every tensor name
//!   must be unique. `dtype` defaults to `"f16"` (the zoo convention);
//!   `init` (row-major values, weights only) may contain numbers or the
//!   strings `"nan"`, `"inf"`, `"-inf"`.
//! - `ops` reference tensors by name and may appear in any order; the
//!   importer topologically sorts them and reports [`ImportError::Cycle`]
//!   when no order exists. Operator kinds are the snake-case mnemonics
//!   (`conv2d`, `matmul`, `layer_norm`, `instance_norm`, `softmax`,
//!   `reduce`, `pool2d`, `unary`, `binary`, `concat`, `reshape`,
//!   `transpose`, `depth_to_space`, `space_to_depth`, `gather`, `slice`,
//!   `split`) with the attribute fields shown by [`export_json`].
//! - `outputs` names the graph outputs (at least one).
//!
//! Malformed input of any kind maps to a typed [`ImportError`]; the
//! importer never panics on untrusted bytes.

use crate::dtype::DType;
use crate::error::ImportError;
use crate::graph::{Graph, GraphBuilder, TensorKind};
use crate::ops::{BinaryKind, Op, PoolKind, ReduceKind, UnaryKind};
use crate::sym::BucketTable;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Hard cap on elements per declared tensor (2^40): rejects absurd shape
/// declarations before they reach shape inference or allocation.
const MAX_TENSOR_NUMEL: u64 = 1 << 40;

/// Maximum JSON nesting depth the parser accepts (guards the recursive
/// parser's stack against `[[[[…` bombs).
const MAX_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

/// Parsed JSON value. Objects keep insertion order; duplicate keys keep
/// the first occurrence (lookup scans front to back).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ImportError {
        ImportError::Parse { offset: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), ImportError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ImportError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect("null").map(|_| Json::Null),
            Some(b't') => self.expect("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.expect("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ImportError> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ImportError> {
        self.bump(); // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected `:` after object key"));
            }
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ImportError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => s.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(c) if c < 0x80 => s.push(c as char),
                Some(c) => {
                    // Re-decode the UTF-8 sequence starting at `c`.
                    let start = self.pos - 1;
                    let width = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 in string"))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ImportError> {
        let first = self.hex4()?;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: must be followed by `\uDC00`–`\uDFFF`.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("lone high surrogate in \\u escape"));
            }
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.err("invalid low surrogate in \\u escape"));
            }
            let cp = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&first) {
            Err(self.err("lone low surrogate in \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ImportError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ImportError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number chars");
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }
}

fn parse_json(src: &str) -> Result<Json, ImportError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after top-level value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Field extraction helpers
// ---------------------------------------------------------------------------

fn bad(field: impl Into<String>, expected: &'static str) -> ImportError {
    ImportError::BadField { field: field.into(), expected }
}

fn as_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, ImportError> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(bad(field, "a string")),
    }
}

fn as_arr<'a>(v: &'a Json, field: &str) -> Result<&'a [Json], ImportError> {
    match v {
        Json::Arr(items) => Ok(items),
        _ => Err(bad(field, "an array")),
    }
}

fn as_bool(v: &Json, field: &str) -> Result<bool, ImportError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(field, "a boolean")),
    }
}

/// A JSON number that is a non-negative integer fitting in u32.
fn as_usize(v: &Json, field: &str) -> Result<usize, ImportError> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => Ok(*n as usize),
        _ => Err(bad(field, "a non-negative integer")),
    }
}

fn usize_vec(v: &Json, field: &str) -> Result<Vec<usize>, ImportError> {
    as_arr(v, field)?.iter().map(|x| as_usize(x, field)).collect()
}

/// A `[a, b]` pair of non-negative integers (stride/padding/kernel).
fn usize_pair(v: &Json, field: &str) -> Result<(usize, usize), ImportError> {
    let items = as_arr(v, field)?;
    if items.len() != 2 {
        return Err(bad(field, "an array of exactly 2 integers"));
    }
    Ok((as_usize(&items[0], field)?, as_usize(&items[1], field)?))
}

fn opt_field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    obj.get(key).filter(|v| !matches!(v, Json::Null))
}

fn req_field<'a>(
    obj: &'a Json,
    object: &'static str,
    key: &'static str,
) -> Result<&'a Json, ImportError> {
    opt_field(obj, key).ok_or(ImportError::MissingField { object, field: key })
}

fn parse_dtype(s: &str) -> Result<DType, ImportError> {
    match s {
        "f16" => Ok(DType::F16),
        "f32" => Ok(DType::F32),
        "i32" => Ok(DType::I32),
        "i8" => Ok(DType::I8),
        other => Err(ImportError::UnknownDType(other.to_string())),
    }
}

fn dtype_str(d: DType) -> &'static str {
    match d {
        DType::F16 => "f16",
        DType::F32 => "f32",
        DType::I32 => "i32",
        DType::I8 => "i8",
    }
}

/// One init value: a finite number (checked after the f32 cast) or one of
/// the sentinel strings `"nan"` / `"inf"` / `"-inf"` that [`export_json`]
/// writes for non-finite values.
fn init_value(v: &Json) -> Result<f32, ImportError> {
    match v {
        Json::Num(n) => {
            let f = *n as f32;
            if f.is_finite() {
                Ok(f)
            } else {
                Err(bad("init", "values representable as finite f32"))
            }
        }
        Json::Str(s) => match s.as_str() {
            "nan" => Ok(f32::NAN),
            "inf" => Ok(f32::INFINITY),
            "-inf" => Ok(f32::NEG_INFINITY),
            _ => Err(bad("init", "a number or \"nan\"/\"inf\"/\"-inf\"")),
        },
        _ => Err(bad("init", "a number or \"nan\"/\"inf\"/\"-inf\"")),
    }
}

// ---------------------------------------------------------------------------
// Operator descriptions
// ---------------------------------------------------------------------------

fn parse_unary_kind(s: &str) -> Result<UnaryKind, ImportError> {
    Ok(match s {
        "relu" => UnaryKind::Relu,
        "gelu" => UnaryKind::Gelu,
        "silu" => UnaryKind::Silu,
        "sigmoid" => UnaryKind::Sigmoid,
        "tanh" => UnaryKind::Tanh,
        "exp" => UnaryKind::Exp,
        "sqrt" => UnaryKind::Sqrt,
        "recip" => UnaryKind::Recip,
        "neg" => UnaryKind::Neg,
        "identity" => UnaryKind::Identity,
        other => return Err(ImportError::UnknownOp(format!("unary:{other}"))),
    })
}

fn parse_binary_kind(s: &str) -> Result<BinaryKind, ImportError> {
    Ok(match s {
        "add" => BinaryKind::Add,
        "sub" => BinaryKind::Sub,
        "mul" => BinaryKind::Mul,
        "div" => BinaryKind::Div,
        "max" => BinaryKind::Max,
        other => return Err(ImportError::UnknownOp(format!("binary:{other}"))),
    })
}

pub(crate) fn unary_kind_str(k: UnaryKind) -> &'static str {
    match k {
        UnaryKind::Relu => "relu",
        UnaryKind::Gelu => "gelu",
        UnaryKind::Silu => "silu",
        UnaryKind::Sigmoid => "sigmoid",
        UnaryKind::Tanh => "tanh",
        UnaryKind::Exp => "exp",
        UnaryKind::Sqrt => "sqrt",
        UnaryKind::Recip => "recip",
        UnaryKind::Neg => "neg",
        UnaryKind::Identity => "identity",
    }
}

pub(crate) fn binary_kind_str(k: BinaryKind) -> &'static str {
    match k {
        BinaryKind::Add => "add",
        BinaryKind::Sub => "sub",
        BinaryKind::Mul => "mul",
        BinaryKind::Div => "div",
        BinaryKind::Max => "max",
    }
}

fn parse_op(kind: &str, obj: &Json) -> Result<Op, ImportError> {
    let op = match kind {
        "conv2d" => Op::Conv2d {
            stride: opt_field(obj, "stride")
                .map(|v| usize_pair(v, "stride"))
                .transpose()?
                .unwrap_or((1, 1)),
            padding: opt_field(obj, "padding")
                .map(|v| usize_pair(v, "padding"))
                .transpose()?
                .unwrap_or((0, 0)),
            groups: opt_field(obj, "groups")
                .map(|v| as_usize(v, "groups"))
                .transpose()?
                .unwrap_or(1),
        },
        "matmul" => Op::MatMul {
            trans_a: opt_field(obj, "trans_a")
                .map(|v| as_bool(v, "trans_a"))
                .transpose()?
                .unwrap_or(false),
            trans_b: opt_field(obj, "trans_b")
                .map(|v| as_bool(v, "trans_b"))
                .transpose()?
                .unwrap_or(false),
        },
        "layer_norm" => Op::LayerNorm { axes: usize_vec(req_field(obj, "op", "axes")?, "axes")? },
        "instance_norm" => Op::InstanceNorm,
        "softmax" => Op::Softmax { axis: as_usize(req_field(obj, "op", "axis")?, "axis")? },
        "reduce" => Op::Reduce {
            kind: match as_str(req_field(obj, "op", "reduce")?, "reduce")? {
                "sum" => ReduceKind::Sum,
                "mean" => ReduceKind::Mean,
                "max" => ReduceKind::Max,
                "min" => ReduceKind::Min,
                other => return Err(ImportError::UnknownOp(format!("reduce:{other}"))),
            },
            axes: usize_vec(req_field(obj, "op", "axes")?, "axes")?,
            keep_dims: opt_field(obj, "keep_dims")
                .map(|v| as_bool(v, "keep_dims"))
                .transpose()?
                .unwrap_or(false),
        },
        "pool2d" => {
            let kernel = usize_pair(req_field(obj, "op", "kernel")?, "kernel")?;
            Op::Pool2d {
                kind: match as_str(req_field(obj, "op", "pool")?, "pool")? {
                    "max" => PoolKind::Max,
                    "avg" => PoolKind::Avg,
                    other => return Err(ImportError::UnknownOp(format!("pool2d:{other}"))),
                },
                kernel,
                stride: opt_field(obj, "stride")
                    .map(|v| usize_pair(v, "stride"))
                    .transpose()?
                    .unwrap_or(kernel),
                padding: opt_field(obj, "padding")
                    .map(|v| usize_pair(v, "padding"))
                    .transpose()?
                    .unwrap_or((0, 0)),
            }
        }
        "unary" => Op::Unary { kind: parse_unary_kind(as_str(req_field(obj, "op", "f")?, "f")?)? },
        "binary" => {
            Op::Binary { kind: parse_binary_kind(as_str(req_field(obj, "op", "f")?, "f")?)? }
        }
        "concat" => Op::Concat { axis: as_usize(req_field(obj, "op", "axis")?, "axis")? },
        "reshape" => Op::Reshape { shape: usize_vec(req_field(obj, "op", "shape")?, "shape")? },
        "transpose" => Op::Transpose { perm: usize_vec(req_field(obj, "op", "perm")?, "perm")? },
        "depth_to_space" => {
            Op::DepthToSpace { block: as_usize(req_field(obj, "op", "block")?, "block")? }
        }
        "space_to_depth" => {
            Op::SpaceToDepth { block: as_usize(req_field(obj, "op", "block")?, "block")? }
        }
        "gather" => Op::Gather { axis: as_usize(req_field(obj, "op", "axis")?, "axis")? },
        "slice" => Op::Slice {
            axis: as_usize(req_field(obj, "op", "axis")?, "axis")?,
            start: as_usize(req_field(obj, "op", "start")?, "start")?,
            len: as_usize(req_field(obj, "op", "len")?, "len")?,
        },
        "split" => Op::Split {
            axis: as_usize(req_field(obj, "op", "axis")?, "axis")?,
            parts: as_usize(req_field(obj, "op", "parts")?, "parts")?,
        },
        other => return Err(ImportError::UnknownOp(other.to_string())),
    };
    Ok(op)
}

struct OpDesc {
    kind: String,
    op: Op,
    inputs: Vec<String>,
    outputs: Vec<String>,
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

/// Imports a graph from its JSON description.
///
/// See the [module docs](self) for the format. Ops may appear in any
/// order; the importer topologically sorts them, runs shape inference on
/// every operator, and validates dtypes, initializers and references.
///
/// # Errors
///
/// Any malformed input returns a typed [`ImportError`]; this function
/// never panics on untrusted input.
///
/// # Examples
///
/// ```
/// let src = r#"{
///   "name": "tiny",
///   "tensors": [
///     {"name": "x", "kind": "input", "shape": [2, 3], "dtype": "f32"},
///     {"name": "s", "kind": "weight", "shape": [1], "dtype": "f32", "init": [0.5]}
///   ],
///   "ops": [
///     {"kind": "transpose", "perm": [1, 0], "inputs": ["x"], "outputs": ["xt"]},
///     {"kind": "binary", "f": "mul", "inputs": ["xt", "s"], "outputs": ["y"]}
///   ],
///   "outputs": ["y"]
/// }"#;
/// let g = smartmem_ir::import::import_json(src).unwrap();
/// assert_eq!(g.op_count(), 2);
/// assert_eq!(g.layout_transform_count(), 1);
/// assert_eq!(g.tensor(g.outputs()[0]).name, "y");
/// ```
pub fn import_json(src: &str) -> Result<Graph, ImportError> {
    let root = parse_json(src)?;
    if !matches!(root, Json::Obj(_)) {
        return Err(bad("$", "a top-level JSON object"));
    }
    let name = match opt_field(&root, "name") {
        Some(v) => as_str(v, "name")?.to_string(),
        None => "imported".to_string(),
    };
    let mut b = GraphBuilder::new(name);

    // Pass 1: declared tensors (inputs + weights).
    let mut ids: HashMap<String, crate::TensorId> = HashMap::new();
    for t in as_arr(req_field(&root, "graph", "tensors")?, "tensors")? {
        if !matches!(t, Json::Obj(_)) {
            return Err(bad("tensors", "an array of tensor objects"));
        }
        let tname = as_str(req_field(t, "tensor", "name")?, "name")?.to_string();
        let kind = as_str(req_field(t, "tensor", "kind")?, "kind")?;
        let dims = usize_vec(req_field(t, "tensor", "shape")?, "shape")?;
        let numel = dims.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d as u64));
        match numel {
            Some(n) if n <= MAX_TENSOR_NUMEL => {}
            _ => return Err(bad("shape", "a tensor with at most 2^40 elements")),
        }
        let dtype = match opt_field(t, "dtype") {
            Some(v) => parse_dtype(as_str(v, "dtype")?)?,
            None => DType::F16,
        };
        let init = opt_field(t, "init")
            .map(|v| as_arr(v, "init")?.iter().map(init_value).collect::<Result<Vec<f32>, _>>())
            .transpose()?;
        if ids.contains_key(&tname) {
            return Err(ImportError::DuplicateTensor(tname));
        }
        let id = match kind {
            "input" => {
                if init.is_some() {
                    return Err(bad("init", "initializers on weights only"));
                }
                b.input(tname.clone(), &dims, dtype)
            }
            "weight" => match init {
                Some(vals) => {
                    let need: u64 = dims.iter().map(|&d| d as u64).product();
                    if vals.len() as u64 != need {
                        return Err(ImportError::BadInit {
                            tensor: tname,
                            expected: need,
                            got: vals.len(),
                        });
                    }
                    b.weight_init(tname.clone(), &dims, dtype, vals)
                }
                None => b.weight(tname.clone(), &dims, dtype),
            },
            _ => return Err(bad("kind", "\"input\" or \"weight\"")),
        };
        ids.insert(tname, id);
    }

    // Pass 2: parse op descriptions and check name-level integrity
    // (duplicates, dangling references) before ordering.
    let mut pending: Vec<OpDesc> = Vec::new();
    let mut definable: HashSet<String> = ids.keys().cloned().collect();
    for o in as_arr(req_field(&root, "graph", "ops")?, "ops")? {
        if !matches!(o, Json::Obj(_)) {
            return Err(bad("ops", "an array of op objects"));
        }
        let kind = as_str(req_field(o, "op", "kind")?, "kind")?.to_string();
        let op = parse_op(&kind, o)?;
        let inputs: Vec<String> = as_arr(req_field(o, "op", "inputs")?, "inputs")?
            .iter()
            .map(|v| as_str(v, "inputs").map(str::to_string))
            .collect::<Result<_, _>>()?;
        let outputs: Vec<String> = as_arr(req_field(o, "op", "outputs")?, "outputs")?
            .iter()
            .map(|v| as_str(v, "outputs").map(str::to_string))
            .collect::<Result<_, _>>()?;
        if inputs.is_empty() {
            return Err(bad("inputs", "at least one input tensor"));
        }
        if outputs.is_empty() {
            return Err(bad("outputs", "at least one output tensor"));
        }
        for out in &outputs {
            if !definable.insert(out.clone()) {
                return Err(ImportError::DuplicateTensor(out.clone()));
            }
        }
        pending.push(OpDesc { kind, op, inputs, outputs });
    }
    for d in &pending {
        for input in &d.inputs {
            if !definable.contains(input) {
                return Err(ImportError::UnknownTensor(input.clone()));
            }
        }
    }

    // Pass 3: Kahn-style topological ordering — repeatedly push every op
    // whose inputs are all defined; a full sweep with no progress while
    // ops remain means their dependencies form a cycle.
    while !pending.is_empty() {
        let mut progressed = false;
        let mut still_pending = Vec::with_capacity(pending.len());
        for d in pending {
            if !d.inputs.iter().all(|i| ids.contains_key(i)) {
                still_pending.push(d);
                continue;
            }
            progressed = true;
            let in_ids: Vec<crate::TensorId> = d.inputs.iter().map(|i| ids[i]).collect();
            check_dtypes(&d, &in_ids, &b)?;
            let outs = b.try_push(d.op.clone(), &in_ids)?;
            if outs.len() != d.outputs.len() {
                return Err(ImportError::ArityMismatch {
                    op: d.kind.clone(),
                    expected: outs.len(),
                    got: d.outputs.len(),
                });
            }
            for (tid, oname) in outs.iter().zip(&d.outputs) {
                b.set_tensor_name(*tid, oname.clone());
                ids.insert(oname.clone(), *tid);
            }
        }
        if !progressed {
            let names: Vec<&str> = still_pending.iter().map(|d| d.kind.as_str()).take(4).collect();
            return Err(ImportError::Cycle(format!(
                "{} op(s) never became ready (kinds: {})",
                still_pending.len(),
                names.join(", ")
            )));
        }
        pending = still_pending;
    }

    // Pass 4: graph outputs.
    let outs = as_arr(req_field(&root, "graph", "outputs")?, "outputs")?;
    if outs.is_empty() {
        return Err(ImportError::MissingField { object: "graph", field: "outputs" });
    }
    for o in outs {
        let oname = as_str(o, "outputs")?;
        let id = *ids.get(oname).ok_or_else(|| ImportError::UnknownTensor(oname.to_string()))?;
        b.output(id);
    }
    let mut g = b.finish();

    // Pass 5: optional symbolic dimensions. Axes are re-derived by
    // `with_sym_dim` (deterministically), so the JSON form carries only
    // the bindings.
    if let Some(syms) = opt_field(&root, "sym_dims") {
        for s in as_arr(syms, "sym_dims")? {
            if !matches!(s, Json::Obj(_)) {
                return Err(bad("sym_dims", "an array of sym-dim objects"));
            }
            let sname = as_str(req_field(s, "sym_dim", "name")?, "name")?.to_string();
            let buckets = usize_vec(req_field(s, "sym_dim", "buckets")?, "buckets")?;
            let value = as_usize(req_field(s, "sym_dim", "value")?, "value")?;
            let table = BucketTable::new(buckets)
                .map_err(|_| bad("buckets", "a strictly increasing list of positive extents"))?;
            g = g.with_sym_dim(sname, &table, value)?;
        }
    }
    Ok(g)
}

/// Operand dtype agreement: multi-input compute ops require matching
/// element types; `gather` requires `i32` indices.
fn check_dtypes(
    d: &OpDesc,
    in_ids: &[crate::TensorId],
    b: &GraphBuilder,
) -> Result<(), ImportError> {
    match &d.op {
        Op::Gather { .. } => {
            let idx = b.dtype_of(in_ids[1]);
            if idx != DType::I32 {
                return Err(ImportError::DTypeMismatch {
                    op: d.kind.clone(),
                    lhs: "i32 indices".to_string(),
                    rhs: dtype_str(idx).to_string(),
                });
            }
        }
        Op::Conv2d { .. } | Op::MatMul { .. } | Op::Binary { .. } | Op::Concat { .. } => {
            let first = b.dtype_of(in_ids[0]);
            for &t in &in_ids[1..] {
                let dt = b.dtype_of(t);
                if dt != first {
                    return Err(ImportError::DTypeMismatch {
                        op: d.kind.clone(),
                        lhs: dtype_str(first).to_string(),
                        rhs: dtype_str(dt).to_string(),
                    });
                }
            }
        }
        _ => {}
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn f32_json(v: f32) -> String {
    if v.is_nan() {
        "\"nan\"".to_string()
    } else if v == f32::INFINITY {
        "\"inf\"".to_string()
    } else if v == f32::NEG_INFINITY {
        "\"-inf\"".to_string()
    } else {
        // Rust's `{}` prints the shortest representation that round-trips.
        format!("{v}")
    }
}

fn usize_list(vs: &[usize]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn op_attrs(op: &Op) -> String {
    match op {
        Op::Conv2d { stride, padding, groups } => format!(
            ", \"stride\": [{}, {}], \"padding\": [{}, {}], \"groups\": {}",
            stride.0, stride.1, padding.0, padding.1, groups
        ),
        Op::MatMul { trans_a, trans_b } => {
            format!(", \"trans_a\": {trans_a}, \"trans_b\": {trans_b}")
        }
        Op::LayerNorm { axes } => format!(", \"axes\": {}", usize_list(axes)),
        Op::InstanceNorm => String::new(),
        Op::Softmax { axis } => format!(", \"axis\": {axis}"),
        Op::Reduce { kind, axes, keep_dims } => {
            let k = match kind {
                ReduceKind::Sum => "sum",
                ReduceKind::Mean => "mean",
                ReduceKind::Max => "max",
                ReduceKind::Min => "min",
            };
            format!(
                ", \"reduce\": \"{k}\", \"axes\": {}, \"keep_dims\": {keep_dims}",
                usize_list(axes)
            )
        }
        Op::Pool2d { kind, kernel, stride, padding } => {
            let k = match kind {
                PoolKind::Max => "max",
                PoolKind::Avg => "avg",
            };
            format!(
                ", \"pool\": \"{k}\", \"kernel\": [{}, {}], \"stride\": [{}, {}], \"padding\": [{}, {}]",
                kernel.0, kernel.1, stride.0, stride.1, padding.0, padding.1
            )
        }
        Op::Unary { kind } => format!(", \"f\": \"{}\"", unary_kind_str(*kind)),
        Op::Binary { kind } => format!(", \"f\": \"{}\"", binary_kind_str(*kind)),
        Op::Concat { axis } => format!(", \"axis\": {axis}"),
        Op::Reshape { shape } => format!(", \"shape\": {}", usize_list(shape)),
        Op::Transpose { perm } => format!(", \"perm\": {}", usize_list(perm)),
        Op::DepthToSpace { block } | Op::SpaceToDepth { block } => format!(", \"block\": {block}"),
        Op::Gather { axis } => format!(", \"axis\": {axis}"),
        Op::Slice { axis, start, len } => {
            format!(", \"axis\": {axis}, \"start\": {start}, \"len\": {len}")
        }
        Op::Split { axis, parts } => format!(", \"axis\": {axis}, \"parts\": {parts}"),
    }
}

fn op_kind_str(op: &Op) -> &'static str {
    match op {
        Op::Conv2d { .. } => "conv2d",
        Op::MatMul { .. } => "matmul",
        Op::LayerNorm { .. } => "layer_norm",
        Op::InstanceNorm => "instance_norm",
        Op::Softmax { .. } => "softmax",
        Op::Reduce { .. } => "reduce",
        Op::Pool2d { .. } => "pool2d",
        Op::Unary { .. } => "unary",
        Op::Binary { .. } => "binary",
        Op::Concat { .. } => "concat",
        Op::Reshape { .. } => "reshape",
        Op::Transpose { .. } => "transpose",
        Op::DepthToSpace { .. } => "depth_to_space",
        Op::SpaceToDepth { .. } => "space_to_depth",
        Op::Gather { .. } => "gather",
        Op::Slice { .. } => "slice",
        Op::Split { .. } => "split",
    }
}

/// Serializes a graph back to the JSON import format.
///
/// Only inputs and weights appear in `tensors`; activations are implied
/// by op outputs, referenced by tensor name. The output is accepted by
/// [`import_json`], and `import_json(&export_json(&g))` reproduces the
/// graph structure (ops, shapes, dtypes, names, initializers) for any
/// graph whose tensor names are unique — which builder- and
/// importer-produced graphs guarantee.
pub fn export_json(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"name\": \"{}\",", esc(g.name()));
    let _ = writeln!(out, "  \"tensors\": [");
    let decls: Vec<&crate::TensorInfo> = g
        .tensors()
        .iter()
        .filter(|t| matches!(t.kind, TensorKind::Input | TensorKind::Weight))
        .collect();
    for (i, t) in decls.iter().enumerate() {
        let kind = if t.kind == TensorKind::Input { "input" } else { "weight" };
        let init = match &t.init {
            Some(vals) => {
                let items: Vec<String> = vals.iter().map(|&v| f32_json(v)).collect();
                format!(", \"init\": [{}]", items.join(", "))
            }
            None => String::new(),
        };
        let comma = if i + 1 == decls.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"shape\": {}, \"dtype\": \"{}\"{init}}}{comma}",
            esc(&t.name),
            usize_list(t.shape.dims()),
            dtype_str(t.dtype)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"ops\": [");
    for (i, n) in g.nodes().iter().enumerate() {
        let ins: Vec<String> =
            n.inputs.iter().map(|&t| format!("\"{}\"", esc(&g.tensor(t).name))).collect();
        let outs: Vec<String> =
            n.outputs.iter().map(|&t| format!("\"{}\"", esc(&g.tensor(t).name))).collect();
        let comma = if i + 1 == g.nodes().len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\"{}, \"inputs\": [{}], \"outputs\": [{}]}}{comma}",
            op_kind_str(&n.op),
            op_attrs(&n.op),
            ins.join(", "),
            outs.join(", ")
        );
    }
    let _ = writeln!(out, "  ],");
    let onames: Vec<String> =
        g.outputs().iter().map(|&t| format!("\"{}\"", esc(&g.tensor(t).name))).collect();
    if g.sym_dims().is_empty() {
        let _ = writeln!(out, "  \"outputs\": [{}]", onames.join(", "));
    } else {
        let _ = writeln!(out, "  \"outputs\": [{}],", onames.join(", "));
        let _ = writeln!(out, "  \"sym_dims\": [");
        for (i, d) in g.sym_dims().iter().enumerate() {
            let comma = if i + 1 == g.sym_dims().len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"buckets\": {}, \"value\": {}}}{comma}",
                esc(&d.name),
                usize_list(d.table.buckets()),
                d.value
            );
        }
        let _ = writeln!(out, "  ]");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    const TINY: &str = r#"{
      "name": "tiny",
      "tensors": [
        {"name": "x", "kind": "input", "shape": [2, 3], "dtype": "f32"},
        {"name": "s", "kind": "weight", "shape": [1], "dtype": "f32", "init": [0.5]}
      ],
      "ops": [
        {"kind": "binary", "f": "mul", "inputs": ["xt", "s"], "outputs": ["y"]},
        {"kind": "transpose", "perm": [1, 0], "inputs": ["x"], "outputs": ["xt"]}
      ],
      "outputs": ["y"]
    }"#;

    #[test]
    fn imports_out_of_order_ops() {
        let g = import_json(TINY).unwrap();
        assert_eq!(g.op_count(), 2);
        assert_eq!(g.name(), "tiny");
        // Topological order: transpose first even though listed second.
        assert_eq!(g.nodes()[0].op.mnemonic(), "Transpose");
        assert_eq!(g.tensor(g.outputs()[0]).name, "y");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn roundtrips_through_export() {
        let g = import_json(TINY).unwrap();
        let text = export_json(&g);
        let g2 = import_json(&text).unwrap();
        assert_eq!(export_json(&g2), text);
        assert_eq!(g2.op_count(), g.op_count());
        let w = g2.tensors().iter().find(|t| t.name == "s").unwrap();
        assert_eq!(w.init.as_deref(), Some(&[0.5f32][..]));
    }

    #[test]
    fn export_of_builder_graph_imports() {
        let mut b = GraphBuilder::new("zoo-ish");
        let x = b.input("x", &[1, 4, 6, 6], DType::F16);
        let w = b.weight("w", &[8, 4, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let parts = b.split(r, 1, 2);
        let cat = b.concat(&parts, 1);
        b.output(cat);
        let g = b.finish();
        let g2 = import_json(&export_json(&g)).unwrap();
        assert_eq!(g2.op_count(), g.op_count());
        assert_eq!(export_json(&g2), export_json(&g));
    }

    #[test]
    fn truncated_input_is_a_parse_error() {
        let cut = &TINY[..TINY.len() / 2];
        assert!(matches!(import_json(cut), Err(ImportError::Parse { .. })));
    }

    #[test]
    fn unknown_op_is_typed() {
        let src = TINY.replace("\"transpose\"", "\"warp\"");
        assert!(matches!(import_json(&src), Err(ImportError::UnknownOp(k)) if k == "warp"));
    }

    #[test]
    fn dangling_edge_is_typed() {
        let src = TINY.replace("[\"xt\", \"s\"]", "[\"xt\", \"ghost\"]");
        assert!(matches!(import_json(&src), Err(ImportError::UnknownTensor(n)) if n == "ghost"));
    }

    #[test]
    fn cycle_is_detected() {
        let src = r#"{
          "tensors": [{"name": "x", "kind": "input", "shape": [2, 2], "dtype": "f32"}],
          "ops": [
            {"kind": "binary", "f": "add", "inputs": ["x", "b"], "outputs": ["a"]},
            {"kind": "binary", "f": "add", "inputs": ["x", "a"], "outputs": ["b"]}
          ],
          "outputs": ["b"]
        }"#;
        assert!(matches!(import_json(src), Err(ImportError::Cycle(_))));
    }

    #[test]
    fn dtype_mismatch_is_typed() {
        let src = TINY.replace(
            "{\"name\": \"s\", \"kind\": \"weight\", \"shape\": [1], \"dtype\": \"f32\", \"init\": [0.5]}",
            "{\"name\": \"s\", \"kind\": \"weight\", \"shape\": [1], \"dtype\": \"i8\"}",
        );
        assert!(matches!(import_json(&src), Err(ImportError::DTypeMismatch { .. })));
    }

    #[test]
    fn bad_init_length_is_typed() {
        let src = TINY.replace("\"init\": [0.5]", "\"init\": [0.5, 1.5]");
        assert!(matches!(import_json(&src), Err(ImportError::BadInit { expected: 1, got: 2, .. })));
    }

    #[test]
    fn shape_inference_errors_are_wrapped() {
        let src = TINY.replace("\"perm\": [1, 0]", "\"perm\": [0, 0]");
        assert!(matches!(import_json(&src), Err(ImportError::Graph(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let src = TINY.replace("\"outputs\": [\"y\"]}", "\"outputs\": [\"x\"]}");
        // First replaced occurrence is the binary op's outputs list.
        assert!(matches!(import_json(&src), Err(ImportError::DuplicateTensor(_))));
    }

    #[test]
    fn deep_nesting_rejected_without_stack_overflow() {
        let bomb = "[".repeat(10_000);
        assert!(matches!(import_json(&bomb), Err(ImportError::Parse { .. })));
    }

    #[test]
    fn non_finite_init_roundtrips() {
        let mut b = GraphBuilder::new("nf");
        let x = b.input("x", &[2], DType::F32);
        let w = b.weight_init("w", &[2], DType::F32, vec![f32::INFINITY, 1.0]);
        let y = b.add(x, w);
        b.output(y);
        let g = b.finish();
        let g2 = import_json(&export_json(&g)).unwrap();
        let w2 = g2.tensors().iter().find(|t| t.name == "w").unwrap();
        assert_eq!(w2.init.as_ref().unwrap()[0], f32::INFINITY);
    }

    #[test]
    fn sym_dims_roundtrip_byte_identically() {
        let mut b = GraphBuilder::new("sym-json");
        let x = b.input("x", &[1, 48, 24], DType::F16);
        let w = b.weight("w", &[24, 24], DType::F16);
        let m = b.matmul(x, w);
        b.output(m);
        let table = crate::sym::BucketTable::new(vec![32, 64, 128]).unwrap();
        let g = b.finish().with_sym_dim("seq", &table, 48).unwrap();
        let text = export_json(&g);
        assert!(text.contains("\"sym_dims\""));
        let g2 = import_json(&text).unwrap();
        assert_eq!(export_json(&g2), text, "sym export must be byte-stable");
        assert_eq!(g2.sym_dims(), g.sym_dims());
        assert_eq!(g2.sym_axes(), g.sym_axes());
    }

    #[test]
    fn bad_sym_dims_are_typed_errors() {
        let decreasing = r#"{
          "tensors": [{"name": "x", "kind": "input", "shape": [1, 48], "dtype": "f32"}],
          "ops": [{"kind": "unary", "f": "relu", "inputs": ["x"], "outputs": ["y"]}],
          "outputs": ["y"],
          "sym_dims": [{"name": "seq", "buckets": [64, 32], "value": 48}]
        }"#;
        assert!(matches!(import_json(decreasing), Err(ImportError::BadField { .. })));
        let unmatched =
            decreasing.replace("[64, 32]", "[32, 64]").replace("\"value\": 48", "\"value\": 7");
        assert!(matches!(import_json(&unmatched), Err(ImportError::Graph(_))));
    }

    #[test]
    fn split_arity_mismatch_is_typed() {
        let src = r#"{
          "tensors": [{"name": "x", "kind": "input", "shape": [4, 2], "dtype": "f32"}],
          "ops": [{"kind": "split", "axis": 0, "parts": 2, "inputs": ["x"], "outputs": ["a"]}],
          "outputs": ["a"]
        }"#;
        assert!(matches!(
            import_json(src),
            Err(ImportError::ArityMismatch { expected: 2, got: 1, .. })
        ));
    }
}
