//! Element data types.

use std::fmt;

/// Element type of a tensor.
///
/// The paper evaluates mobile GPUs with FP16 and the desktop GPU with
/// FP32 (§4.1); integer types appear in embedding/gather indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DType {
    /// 16-bit IEEE floating point (mobile GPU default in the paper).
    #[default]
    F16,
    /// 32-bit IEEE floating point (desktop GPU evaluation).
    F32,
    /// 32-bit signed integer (indices).
    I32,
    /// 8-bit signed integer (quantized paths; unused by the paper's
    /// main evaluation but supported by the IR).
    I8,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use smartmem_ir::DType;
    /// assert_eq!(DType::F16.size_bytes(), 2);
    /// assert_eq!(DType::F32.size_bytes(), 4);
    /// ```
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
            DType::I32 => 4,
            DType::I8 => 1,
        }
    }

    /// Whether the type is floating point.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::F32)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
            DType::I32 => "i32",
            DType::I8 => "i8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I8.size_bytes(), 1);
    }

    #[test]
    fn float_predicate() {
        assert!(DType::F16.is_float());
        assert!(!DType::I32.is_float());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F16.to_string(), "f16");
    }
}
