//! IR construction and validation errors.

use std::error::Error;
use std::fmt;

/// Error produced while building or validating a computational graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A reshape target shape does not preserve the element count.
    ReshapeNumelMismatch {
        /// Elements in the input shape.
        from: u64,
        /// Elements in the requested output shape.
        to: u64,
    },
    /// A permutation is not a bijection over `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
        /// The expected rank.
        rank: usize,
    },
    /// Two operand shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left shape rendered as text.
        lhs: String,
        /// Right shape rendered as text.
        rhs: String,
    },
    /// An axis index is out of range for the operand rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The operand rank.
        rank: usize,
    },
    /// Generic shape error with a human-readable explanation.
    Shape(String),
    /// Reference to a tensor that does not exist in the graph.
    UnknownTensor(u32),
    /// The graph contains a cycle (should be impossible via the builder).
    Cyclic,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ReshapeNumelMismatch { from, to } => {
                write!(f, "reshape changes element count from {from} to {to}")
            }
            IrError::InvalidPermutation { perm, rank } => {
                write!(f, "permutation {perm:?} is not a bijection over 0..{rank}")
            }
            IrError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} cannot be broadcast together")
            }
            IrError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            IrError::Shape(msg) => write!(f, "shape error: {msg}"),
            IrError::UnknownTensor(id) => write!(f, "unknown tensor id {id}"),
            IrError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IrError::ReshapeNumelMismatch { from: 8, to: 9 };
        assert!(e.to_string().contains("8"));
        let e = IrError::AxisOutOfRange { axis: 5, rank: 3 };
        assert!(e.to_string().contains("axis 5"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_err(IrError::Cyclic);
    }
}
