//! IR construction and validation errors.

use std::error::Error;
use std::fmt;

/// Error produced while building or validating a computational graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A reshape target shape does not preserve the element count.
    ReshapeNumelMismatch {
        /// Elements in the input shape.
        from: u64,
        /// Elements in the requested output shape.
        to: u64,
    },
    /// A permutation is not a bijection over `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
        /// The expected rank.
        rank: usize,
    },
    /// Two operand shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left shape rendered as text.
        lhs: String,
        /// Right shape rendered as text.
        rhs: String,
    },
    /// An axis index is out of range for the operand rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The operand rank.
        rank: usize,
    },
    /// Generic shape error with a human-readable explanation.
    Shape(String),
    /// Reference to a tensor that does not exist in the graph.
    UnknownTensor(u32),
    /// The graph contains a cycle (should be impossible via the builder).
    Cyclic,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ReshapeNumelMismatch { from, to } => {
                write!(f, "reshape changes element count from {from} to {to}")
            }
            IrError::InvalidPermutation { perm, rank } => {
                write!(f, "permutation {perm:?} is not a bijection over 0..{rank}")
            }
            IrError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} cannot be broadcast together")
            }
            IrError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            IrError::Shape(msg) => write!(f, "shape error: {msg}"),
            IrError::UnknownTensor(id) => write!(f, "unknown tensor id {id}"),
            IrError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl Error for IrError {}

/// Error produced while importing an external graph description
/// (see [`crate::import`]).
///
/// Every malformed input — truncated files, unknown operators, dangling
/// tensor references, cycles, dtype mismatches, bad initializers —
/// surfaces as one of these variants; the importer never panics on
/// untrusted input.
#[derive(Clone, Debug, PartialEq)]
pub enum ImportError {
    /// The input is not well-formed JSON (byte offset of the failure).
    Parse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What the parser expected or found.
        msg: String,
    },
    /// A required field is absent.
    MissingField {
        /// The object missing the field (`"graph"`, `"tensor"`, `"op"`).
        object: &'static str,
        /// The field name.
        field: &'static str,
    },
    /// A field holds a value of the wrong type or out-of-range content.
    BadField {
        /// The offending field.
        field: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An operator kind the importer does not know.
    UnknownOp(String),
    /// A dtype string the importer does not know.
    UnknownDType(String),
    /// An edge references a tensor name that is never defined
    /// (dangling edge id).
    UnknownTensor(String),
    /// Two tensors (declared or op outputs) share a name.
    DuplicateTensor(String),
    /// The op dependency graph contains a cycle.
    Cycle(String),
    /// Operands of one operator disagree on element type.
    DTypeMismatch {
        /// The operator kind.
        op: String,
        /// First operand type seen.
        lhs: String,
        /// Conflicting operand type.
        rhs: String,
    },
    /// An initializer's length does not match its tensor's shape.
    BadInit {
        /// The tensor name.
        tensor: String,
        /// Elements the shape requires.
        expected: u64,
        /// Elements the initializer provided.
        got: usize,
    },
    /// An op declared the wrong number of outputs for its kind.
    ArityMismatch {
        /// The operator kind.
        op: String,
        /// Outputs the operator produces.
        expected: usize,
        /// Outputs the description declared.
        got: usize,
    },
    /// Shape inference rejected the operator (wraps [`IrError`]).
    Graph(IrError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Parse { offset, msg } => {
                write!(f, "JSON parse error at byte {offset}: {msg}")
            }
            ImportError::MissingField { object, field } => {
                write!(f, "{object} is missing required field `{field}`")
            }
            ImportError::BadField { field, expected } => {
                write!(f, "field `{field}`: expected {expected}")
            }
            ImportError::UnknownOp(kind) => write!(f, "unknown operator kind `{kind}`"),
            ImportError::UnknownDType(d) => write!(f, "unknown dtype `{d}`"),
            ImportError::UnknownTensor(name) => {
                write!(f, "reference to undefined tensor `{name}`")
            }
            ImportError::DuplicateTensor(name) => {
                write!(f, "tensor name `{name}` defined more than once")
            }
            ImportError::Cycle(detail) => write!(f, "op dependencies contain a cycle: {detail}"),
            ImportError::DTypeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: operand dtypes disagree ({lhs} vs {rhs})")
            }
            ImportError::BadInit { tensor, expected, got } => {
                write!(f, "tensor `{tensor}`: initializer has {got} values, shape needs {expected}")
            }
            ImportError::ArityMismatch { op, expected, got } => {
                write!(f, "{op}: declares {got} outputs, operator produces {expected}")
            }
            ImportError::Graph(e) => write!(f, "shape inference rejected the graph: {e}"),
        }
    }
}

impl Error for ImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImportError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for ImportError {
    fn from(e: IrError) -> Self {
        ImportError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IrError::ReshapeNumelMismatch { from: 8, to: 9 };
        assert!(e.to_string().contains("8"));
        let e = IrError::AxisOutOfRange { axis: 5, rank: 3 };
        assert!(e.to_string().contains("axis 5"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_err(IrError::Cyclic);
    }
}
