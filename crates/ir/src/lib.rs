//! # smartmem-ir
//!
//! The tensor intermediate representation underlying the SmartMem
//! reproduction: shapes, data types, logical/physical layouts, operator
//! definitions and the computational graph (a DAG of operators connected
//! by tensors).
//!
//! The operator set mirrors Tables 3–4 of the paper:
//!
//! * **ILD & Variable** (input-layout dependent, customizable output):
//!   [`Op::Conv2d`], [`Op::MatMul`], [`Op::LayerNorm`], [`Op::Softmax`],
//!   [`Op::Reduce`], [`Op::Pool2d`], [`Op::InstanceNorm`].
//! * **ILI & Variable**: [`Op::Unary`], [`Op::Binary`], [`Op::Concat`].
//! * **ILD & Fixed** (layout transformations): [`Op::Reshape`],
//!   [`Op::Transpose`], [`Op::DepthToSpace`], [`Op::SpaceToDepth`].
//! * **ILI & Fixed**: [`Op::Gather`], [`Op::Slice`], [`Op::Split`].
//!
//! # Example
//!
//! ```
//! use smartmem_ir::{GraphBuilder, DType, UnaryKind};
//!
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("x", &[1, 64, 56, 56], DType::F16);
//! let w = b.weight("w", &[128, 64, 3, 3], DType::F16);
//! let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
//! let r = b.unary(c, UnaryKind::Relu);
//! b.output(r);
//! let g = b.finish();
//! assert_eq!(g.op_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod error;
pub mod generate;
mod graph;
pub mod import;
pub mod interp;
mod layout;
mod ops;
mod shape;
pub mod sym;
pub mod wire;

pub use dtype::DType;
pub use error::{ImportError, IrError};
pub use graph::{
    infer_output_shapes, Graph, GraphBuilder, Node, OpId, OpOrigin, SymAxis, TensorId, TensorInfo,
    TensorKind,
};
pub use layout::{Layout, MemoryClass, PhysicalAddress, TexturePlacement};
pub use ops::{BinaryKind, Op, OpCategory, PoolKind, ReduceKind, UnaryKind};
pub use shape::Shape;
pub use sym::{BucketTable, SymDim};
