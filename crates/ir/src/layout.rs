//! Physical tensor layouts for 1D buffer memory and 2.5D texture memory.
//!
//! A [`Layout`] maps a logical coordinate (indices per logical dimension)
//! to a [`PhysicalAddress`]: either a linear element offset (1D buffer
//! memory) or a `(x, y, lane)` texel coordinate (2.5D texture memory,
//! §2.3 of the paper — the texture is a 2-D grid of `vec4` texels, hence
//! "2.5D": width × height × 0.5D vector).

use crate::shape::Shape;
use std::fmt;

/// The memory class a tensor is physically placed in (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemoryClass {
    /// Contiguous, pointer-addressed 1D buffer (global memory).
    Buffer1D,
    /// Coordinate-addressed 2D texture of `vec4` texels with a dedicated
    /// read-only cache ("2.5D" memory).
    Texture2p5D,
}

impl fmt::Display for MemoryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryClass::Buffer1D => f.write_str("1D buffer"),
            MemoryClass::Texture2p5D => f.write_str("2.5D texture"),
        }
    }
}

/// Placement of a logical tensor into 2.5D texture memory.
///
/// Logical dimensions are partitioned between the texture's height (Y)
/// and width (X) axes; within each axis, listed dimensions fold
/// outer-to-inner. Optionally one dimension is *vectorized*: packed four
/// elements to a texel lane (the "0.5D"), which is how SmartMem maps a
/// reduction dimension for SIMD loads (Fig. 5).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TexturePlacement {
    /// Logical dims folded into the texture Y axis, outer→inner.
    pub height_dims: Vec<usize>,
    /// Logical dims folded into the texture X axis, outer→inner.
    pub width_dims: Vec<usize>,
    /// Logical dim packed into the 4 texel lanes (must appear in one of
    /// the axis lists; its folded extent becomes `ceil(extent/4)`).
    pub vector_dim: Option<usize>,
}

/// Physical address of one element under a [`Layout`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PhysicalAddress {
    /// Element offset into a linear buffer.
    Linear(u64),
    /// Texel coordinate plus lane within the `vec4`.
    Texel {
        /// Texel column.
        x: u64,
        /// Texel row.
        y: u64,
        /// Lane within the texel (0..4).
        lane: u8,
    },
}

/// A physical layout for a tensor of some rank.
///
/// # Example
///
/// ```
/// use smartmem_ir::{Layout, Shape};
/// let shape = Shape::new(vec![2, 3, 4]);
/// let l = Layout::row_major(3);
/// // row-major: last dim contiguous
/// assert_eq!(l.contiguous_dims(&shape), vec![2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Layout {
    /// Linear buffer with physical dimension order `perm` (outer→inner)
    /// and optional vec4 packing of one logical dim (e.g. MNN's NC4HW4
    /// packs the channel dim).
    Buffer {
        /// Physical order of logical dims, outermost first. `perm[last]`
        /// is contiguous in memory.
        perm: Vec<usize>,
        /// Logical dim packed 4-wide as the innermost unit.
        vector_dim: Option<usize>,
    },
    /// 2.5D texture placement.
    Texture(TexturePlacement),
}

impl Layout {
    /// Row-major buffer layout for `rank` dims (the default layout every
    /// framework starts from).
    pub fn row_major(rank: usize) -> Self {
        Layout::Buffer { perm: (0..rank).collect(), vector_dim: None }
    }

    /// Buffer layout with an explicit physical dimension order.
    pub fn permuted(perm: Vec<usize>) -> Self {
        Layout::Buffer { perm, vector_dim: None }
    }

    /// MNN-style `NC/4 H W 4` buffer layout for rank-4 `[N, C, H, W]`
    /// tensors: channels packed 4-wide innermost.
    pub fn nc4hw4() -> Self {
        Layout::Buffer { perm: vec![0, 1, 2, 3], vector_dim: Some(1) }
    }

    /// Texture layout from a placement.
    pub fn texture(placement: TexturePlacement) -> Self {
        Layout::Texture(placement)
    }

    /// Default texture placement for a tensor of `rank` dims.
    ///
    /// Rank-4 `[N, C, H, W]` tensors use the standard OpenCL image
    /// layout for CNNs (as in MNN's GPU backend / CoDL): texel =
    /// 4 channels, X = `(C/4)·W`, Y = `N·H`. Other ranks put the
    /// trailing dim on X (vectorized) and fold the rest into Y.
    pub fn texture_default(rank: usize) -> Self {
        assert!(rank >= 1, "texture placement needs rank >= 1");
        if rank == 4 {
            Layout::Texture(TexturePlacement {
                height_dims: vec![0, 2],
                width_dims: vec![1, 3],
                vector_dim: Some(1),
            })
        } else {
            Layout::Texture(TexturePlacement {
                height_dims: (0..rank - 1).collect(),
                width_dims: vec![rank - 1],
                vector_dim: Some(rank - 1),
            })
        }
    }

    /// The memory class of the layout.
    pub fn memory_class(&self) -> MemoryClass {
        match self {
            Layout::Buffer { .. } => MemoryClass::Buffer1D,
            Layout::Texture(_) => MemoryClass::Texture2p5D,
        }
    }

    /// Checks internal consistency against a tensor rank.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant:
    /// `perm` must be a permutation of `0..rank`; texture axis lists must
    /// partition `0..rank`; `vector_dim` must reference a listed dim.
    pub fn validate(&self, rank: usize) -> Result<(), String> {
        match self {
            Layout::Buffer { perm, vector_dim } => {
                if !crate::ops::is_permutation(perm, rank) {
                    return Err(format!("perm {perm:?} is not a permutation of 0..{rank}"));
                }
                if let Some(v) = vector_dim {
                    if *v >= rank {
                        return Err(format!("vector_dim {v} out of range for rank {rank}"));
                    }
                }
                Ok(())
            }
            Layout::Texture(p) => {
                let mut seen = vec![false; rank];
                for &d in p.height_dims.iter().chain(p.width_dims.iter()) {
                    if d >= rank {
                        return Err(format!("texture dim {d} out of range for rank {rank}"));
                    }
                    if seen[d] {
                        return Err(format!("texture dim {d} listed twice"));
                    }
                    seen[d] = true;
                }
                if seen.iter().any(|s| !s) {
                    return Err("texture placement does not cover all dims".to_string());
                }
                if let Some(v) = p.vector_dim {
                    if v >= rank {
                        return Err(format!("vector_dim {v} out of range for rank {rank}"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Physical address of the element at `coord` in a tensor of `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` rank differs from `shape` rank or the layout is
    /// invalid for the shape's rank.
    pub fn address(&self, shape: &Shape, coord: &[usize]) -> PhysicalAddress {
        assert_eq!(coord.len(), shape.rank(), "coordinate rank mismatch");
        match self {
            Layout::Buffer { perm, vector_dim } => {
                let mut offset: u64 = 0;
                match vector_dim {
                    None => {
                        for &d in perm {
                            offset = offset * shape.dim(d) as u64 + coord[d] as u64;
                        }
                        PhysicalAddress::Linear(offset)
                    }
                    Some(v) => {
                        // Packed dim folds at ceil(extent/4) granularity;
                        // its low 2 bits become the innermost unit.
                        for &d in perm {
                            if d == *v {
                                let blocks = shape.dim(d).div_ceil(4) as u64;
                                offset = offset * blocks + (coord[d] / 4) as u64;
                            } else {
                                offset = offset * shape.dim(d) as u64 + coord[d] as u64;
                            }
                        }
                        PhysicalAddress::Linear(offset * 4 + (coord[*v] % 4) as u64)
                    }
                }
            }
            Layout::Texture(p) => {
                let fold = |dims: &[usize]| -> u64 {
                    let mut idx: u64 = 0;
                    for &d in dims {
                        let (extent, c) = match p.vector_dim {
                            Some(v) if v == d => {
                                (shape.dim(d).div_ceil(4) as u64, (coord[d] / 4) as u64)
                            }
                            _ => (shape.dim(d) as u64, coord[d] as u64),
                        };
                        idx = idx * extent + c;
                    }
                    idx
                };
                let lane = p.vector_dim.map(|v| (coord[v] % 4) as u8).unwrap_or(0);
                PhysicalAddress::Texel { x: fold(&p.width_dims), y: fold(&p.height_dims), lane }
            }
        }
    }

    /// Texture extent `(width_texels, height_rows)` for a tensor of
    /// `shape`, or `None` for buffer layouts.
    pub fn texture_extent(&self, shape: &Shape) -> Option<(u64, u64)> {
        match self {
            Layout::Buffer { .. } => None,
            Layout::Texture(p) => {
                let fold = |dims: &[usize]| -> u64 {
                    dims.iter()
                        .map(|&d| match p.vector_dim {
                            Some(v) if v == d => shape.dim(d).div_ceil(4) as u64,
                            _ => shape.dim(d) as u64,
                        })
                        .product::<u64>()
                        .max(1)
                };
                Some((fold(&p.width_dims), fold(&p.height_dims)))
            }
        }
    }

    /// Logical dims that can be traversed with unit physical stride and
    /// no index linearization.
    ///
    /// For a buffer this is the single innermost dim (`k = 1`); for a
    /// texture it is the innermost dim of each axis (`k = 2` — the paper's
    /// justification for combining up to two reduction-dimension
    /// requirements on 2.5D memory, §3.2.2).
    pub fn contiguous_dims(&self, shape: &Shape) -> Vec<usize> {
        let _ = shape;
        match self {
            Layout::Buffer { perm, vector_dim } => {
                let mut v = Vec::new();
                if let Some(d) = vector_dim {
                    v.push(*d);
                }
                if let Some(&last) = perm.last() {
                    if !v.contains(&last) {
                        v.push(last);
                    }
                }
                v.truncate(1);
                v
            }
            Layout::Texture(p) => {
                let mut v = Vec::new();
                if let Some(&wx) = p.width_dims.last() {
                    v.push(wx);
                }
                if let Some(&hy) = p.height_dims.last() {
                    if !v.contains(&hy) {
                        v.push(hy);
                    }
                }
                v
            }
        }
    }

    /// Number of dims addressable without linearization (`k` in §3.2.2).
    pub fn direct_dims(&self) -> usize {
        match self {
            Layout::Buffer { .. } => 1,
            Layout::Texture(_) => 2,
        }
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::row_major(0)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Buffer { perm, vector_dim: None } => write!(f, "buf{perm:?}"),
            Layout::Buffer { perm, vector_dim: Some(v) } => write!(f, "buf{perm:?}/v{v}"),
            Layout::Texture(p) => {
                write!(f, "tex[h:{:?} w:{:?}", p.height_dims, p.width_dims)?;
                if let Some(v) = p.vector_dim {
                    write!(f, " v{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_addresses_are_dense() {
        let shape = Shape::new(vec![2, 3, 4]);
        let l = Layout::row_major(3);
        let mut seen = [false; 24];
        for off in 0..24u64 {
            let c = shape.delinearize(off);
            match l.address(&shape, &c) {
                PhysicalAddress::Linear(a) => {
                    assert_eq!(a, off);
                    seen[a as usize] = true;
                }
                _ => panic!("buffer layout must give linear addresses"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permuted_layout_transposes_strides() {
        let shape = Shape::new(vec![2, 3]);
        let l = Layout::permuted(vec![1, 0]); // column-major
        let a00 = l.address(&shape, &[0, 0]);
        let a10 = l.address(&shape, &[1, 0]);
        let a01 = l.address(&shape, &[0, 1]);
        assert_eq!(a00, PhysicalAddress::Linear(0));
        assert_eq!(a10, PhysicalAddress::Linear(1)); // dim0 is contiguous
        assert_eq!(a01, PhysicalAddress::Linear(2));
    }

    #[test]
    fn nc4hw4_packs_channels() {
        let shape = Shape::new(vec![1, 8, 2, 2]);
        let l = Layout::nc4hw4();
        // channel 0..4 of the same pixel are adjacent lanes
        let a0 = l.address(&shape, &[0, 0, 0, 0]);
        let a1 = l.address(&shape, &[0, 1, 0, 0]);
        let a4 = l.address(&shape, &[0, 4, 0, 0]);
        match (a0, a1, a4) {
            (
                PhysicalAddress::Linear(x0),
                PhysicalAddress::Linear(x1),
                PhysicalAddress::Linear(x4),
            ) => {
                assert_eq!(x1, x0 + 1);
                // channel 4 starts a new C/4 block: distance = H*W*4
                assert_eq!(x4, x0 + 2 * 2 * 4);
            }
            _ => panic!("expected linear addresses"),
        }
    }

    #[test]
    fn buffer_addresses_are_unique_with_vectorization() {
        let shape = Shape::new(vec![2, 6, 3]);
        let l = Layout::Buffer { perm: vec![0, 1, 2], vector_dim: Some(1) };
        let mut seen = std::collections::HashSet::new();
        for n in 0..2 {
            for c in 0..6 {
                for h in 0..3 {
                    let a = l.address(&shape, &[n, c, h]);
                    assert!(seen.insert(a), "duplicate address {a:?}");
                }
            }
        }
    }

    #[test]
    fn texture_default_places_last_dim_on_x() {
        let shape = Shape::new(vec![4, 8, 16]);
        let l = Layout::texture_default(3);
        let (w, h) = l.texture_extent(&shape).unwrap();
        assert_eq!(w, 4); // 16 / 4 lanes
        assert_eq!(h, 32); // 4 * 8
        match l.address(&shape, &[0, 0, 5]) {
            PhysicalAddress::Texel { x, y, lane } => {
                assert_eq!((x, y, lane), (1, 0, 1));
            }
            _ => panic!("expected texel"),
        }
    }

    #[test]
    fn texture_addresses_unique() {
        let shape = Shape::new(vec![3, 5, 7]);
        let l = Layout::Texture(TexturePlacement {
            height_dims: vec![1],
            width_dims: vec![0, 2],
            vector_dim: Some(2),
        });
        assert!(l.validate(3).is_ok());
        let mut seen = std::collections::HashSet::new();
        for a in 0..3 {
            for b in 0..5 {
                for c in 0..7 {
                    let addr = l.address(&shape, &[a, b, c]);
                    assert!(seen.insert(addr), "duplicate {addr:?}");
                }
            }
        }
        assert_eq!(seen.len(), 3 * 5 * 7);
    }

    #[test]
    fn validate_rejects_bad_layouts() {
        assert!(Layout::permuted(vec![0, 0]).validate(2).is_err());
        assert!(Layout::permuted(vec![0]).validate(2).is_err());
        let missing = Layout::Texture(TexturePlacement {
            height_dims: vec![0],
            width_dims: vec![],
            vector_dim: None,
        });
        assert!(missing.validate(2).is_err());
        let dup = Layout::Texture(TexturePlacement {
            height_dims: vec![0, 1],
            width_dims: vec![1],
            vector_dim: None,
        });
        assert!(dup.validate(2).is_err());
    }

    #[test]
    fn contiguous_dims_k() {
        let shape = Shape::new(vec![4, 8, 16]);
        let buf = Layout::row_major(3);
        assert_eq!(buf.contiguous_dims(&shape), vec![2]);
        assert_eq!(buf.direct_dims(), 1);
        let tex = Layout::Texture(TexturePlacement {
            height_dims: vec![0, 1],
            width_dims: vec![2],
            vector_dim: Some(2),
        });
        assert_eq!(tex.contiguous_dims(&shape), vec![2, 1]);
        assert_eq!(tex.direct_dims(), 2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Layout::row_major(2).to_string(), "buf[0, 1]");
        assert_eq!(Layout::nc4hw4().to_string(), "buf[0, 1, 2, 3]/v1");
    }
}
