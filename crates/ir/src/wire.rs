//! A hand-rolled binary wire format for persisting compiled artifacts.
//!
//! The build container is offline (no serde), so the on-disk compilation
//! cache serializes through this minimal codec instead: little-endian
//! fixed-width integers, length-prefixed sequences, and one tag byte per
//! enum variant. The traits live here in `smartmem-ir` so that the
//! crates owning the persisted types (`smartmem-index`, `smartmem-sim`,
//! `smartmem-core`) can implement them beside the type definitions
//! without tripping the orphan rule.
//!
//! Decoding is *defensive but not adversarial*: every length prefix is
//! bounds-checked against the remaining input (a truncated or corrupted
//! file yields [`WireError`], never a panic or an absurd allocation),
//! and [`Graph`] re-validates its invariants after decode. Integrity
//! against bit-rot is the caller's job — the persistent cache layer in
//! `smartmem-core` wraps every payload in a checksummed, versioned
//! header and falls back to a cold compile on any mismatch.
//!
//! # Example
//!
//! ```
//! use smartmem_ir::wire::{decode_from, encode_to_vec};
//!
//! let bytes = encode_to_vec(&vec![String::from("lte"), String::from("fusion")]);
//! let back: Vec<String> = decode_from(&bytes).unwrap();
//! assert_eq!(back, vec!["lte", "fusion"]);
//! ```

use crate::dtype::DType;
use crate::graph::{Graph, Node, OpId, OpOrigin, SymAxis, TensorId, TensorInfo, TensorKind};
use crate::layout::{Layout, TexturePlacement};
use crate::ops::{BinaryKind, Op, PoolKind, ReduceKind, UnaryKind};
use crate::shape::Shape;
use crate::sym::{BucketTable, SymDim};
use std::error::Error;
use std::fmt;

/// Decoding failure: truncated input, an unknown enum tag, or a decoded
/// value violating the target type's invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no matching variant.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// The decoded value violates an invariant of its type (e.g. a graph
    /// failing validation).
    Invalid(String),
    /// Input had trailing bytes after the value (only raised by
    /// [`decode_from`], which expects to consume everything).
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::BadTag { ty, tag } => write!(f, "unknown tag {tag} decoding {ty}"),
            WireError::Invalid(msg) => write!(f, "invalid value: {msg}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after value"),
        }
    }
}

impl Error for WireError {}

/// Byte sink for encoding (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a sequence-length prefix, rejecting lengths that could not
    /// possibly fit in the remaining input (`min_elem_bytes` is the
    /// smallest encoding of one element). This is what keeps a corrupted
    /// length prefix from turning into a multi-gigabyte allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| WireError::Truncated)?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }
}

/// Serializes a value into the wire format.
pub trait Encode {
    /// Appends the value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// Deserializes a value from the wire format.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated input, unknown enum tags, or
    /// invariant violations.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value that must span exactly the whole input.
///
/// # Errors
///
/// Returns [`WireError::TrailingBytes`] when input remains after the
/// value, plus every error [`Decode::decode`] can raise.
pub fn decode_from<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_i64()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_f64()
    }
}

impl Encode for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_f32(*self);
    }
}

impl Decode for f32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_f32()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.get_u64()?).map_err(|_| WireError::Invalid("usize overflow".into()))
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        self.as_str().encode(w);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF8 string".into()))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------
// IR leaf types
// ---------------------------------------------------------------------

impl Encode for Shape {
    fn encode(&self, w: &mut Writer) {
        self.dims().encode(w);
    }
}

impl Decode for Shape {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Shape::new(Vec::<usize>::decode(r)?))
    }
}

impl Encode for DType {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DType::F16 => 0,
            DType::F32 => 1,
            DType::I32 => 2,
            DType::I8 => 3,
        });
    }
}

impl Decode for DType {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(DType::F16),
            1 => Ok(DType::F32),
            2 => Ok(DType::I32),
            3 => Ok(DType::I8),
            tag => Err(WireError::BadTag { ty: "DType", tag }),
        }
    }
}

impl Encode for TensorId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for TensorId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TensorId(r.get_u32()?))
    }
}

impl Encode for OpId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for OpId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OpId(r.get_u32()?))
    }
}

impl Encode for TensorKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            TensorKind::Input => 0,
            TensorKind::Weight => 1,
            TensorKind::Activation => 2,
        });
    }
}

impl Decode for TensorKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(TensorKind::Input),
            1 => Ok(TensorKind::Weight),
            2 => Ok(TensorKind::Activation),
            tag => Err(WireError::BadTag { ty: "TensorKind", tag }),
        }
    }
}

impl Encode for OpOrigin {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            OpOrigin::Model => 0,
            OpOrigin::Framework => 1,
        });
    }
}

impl Decode for OpOrigin {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(OpOrigin::Model),
            1 => Ok(OpOrigin::Framework),
            tag => Err(WireError::BadTag { ty: "OpOrigin", tag }),
        }
    }
}

impl Encode for UnaryKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            UnaryKind::Relu => 0,
            UnaryKind::Gelu => 1,
            UnaryKind::Silu => 2,
            UnaryKind::Sigmoid => 3,
            UnaryKind::Tanh => 4,
            UnaryKind::Exp => 5,
            UnaryKind::Sqrt => 6,
            UnaryKind::Recip => 7,
            UnaryKind::Neg => 8,
            UnaryKind::Identity => 9,
        });
    }
}

impl Decode for UnaryKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => UnaryKind::Relu,
            1 => UnaryKind::Gelu,
            2 => UnaryKind::Silu,
            3 => UnaryKind::Sigmoid,
            4 => UnaryKind::Tanh,
            5 => UnaryKind::Exp,
            6 => UnaryKind::Sqrt,
            7 => UnaryKind::Recip,
            8 => UnaryKind::Neg,
            9 => UnaryKind::Identity,
            tag => return Err(WireError::BadTag { ty: "UnaryKind", tag }),
        })
    }
}

impl Encode for BinaryKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            BinaryKind::Add => 0,
            BinaryKind::Sub => 1,
            BinaryKind::Mul => 2,
            BinaryKind::Div => 3,
            BinaryKind::Max => 4,
        });
    }
}

impl Decode for BinaryKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => BinaryKind::Add,
            1 => BinaryKind::Sub,
            2 => BinaryKind::Mul,
            3 => BinaryKind::Div,
            4 => BinaryKind::Max,
            tag => return Err(WireError::BadTag { ty: "BinaryKind", tag }),
        })
    }
}

impl Encode for ReduceKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ReduceKind::Sum => 0,
            ReduceKind::Mean => 1,
            ReduceKind::Max => 2,
            ReduceKind::Min => 3,
        });
    }
}

impl Decode for ReduceKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ReduceKind::Sum,
            1 => ReduceKind::Mean,
            2 => ReduceKind::Max,
            3 => ReduceKind::Min,
            tag => return Err(WireError::BadTag { ty: "ReduceKind", tag }),
        })
    }
}

impl Encode for PoolKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            PoolKind::Max => 0,
            PoolKind::Avg => 1,
        });
    }
}

impl Decode for PoolKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(PoolKind::Max),
            1 => Ok(PoolKind::Avg),
            tag => Err(WireError::BadTag { ty: "PoolKind", tag }),
        }
    }
}

impl Encode for Op {
    fn encode(&self, w: &mut Writer) {
        match self {
            Op::Conv2d { stride, padding, groups } => {
                w.put_u8(0);
                stride.encode(w);
                padding.encode(w);
                groups.encode(w);
            }
            Op::MatMul { trans_a, trans_b } => {
                w.put_u8(1);
                trans_a.encode(w);
                trans_b.encode(w);
            }
            Op::LayerNorm { axes } => {
                w.put_u8(2);
                axes.encode(w);
            }
            Op::InstanceNorm => w.put_u8(3),
            Op::Softmax { axis } => {
                w.put_u8(4);
                axis.encode(w);
            }
            Op::Reduce { kind, axes, keep_dims } => {
                w.put_u8(5);
                kind.encode(w);
                axes.encode(w);
                keep_dims.encode(w);
            }
            Op::Pool2d { kind, kernel, stride, padding } => {
                w.put_u8(6);
                kind.encode(w);
                kernel.encode(w);
                stride.encode(w);
                padding.encode(w);
            }
            Op::Unary { kind } => {
                w.put_u8(7);
                kind.encode(w);
            }
            Op::Binary { kind } => {
                w.put_u8(8);
                kind.encode(w);
            }
            Op::Concat { axis } => {
                w.put_u8(9);
                axis.encode(w);
            }
            Op::Reshape { shape } => {
                w.put_u8(10);
                shape.encode(w);
            }
            Op::Transpose { perm } => {
                w.put_u8(11);
                perm.encode(w);
            }
            Op::DepthToSpace { block } => {
                w.put_u8(12);
                block.encode(w);
            }
            Op::SpaceToDepth { block } => {
                w.put_u8(13);
                block.encode(w);
            }
            Op::Gather { axis } => {
                w.put_u8(14);
                axis.encode(w);
            }
            Op::Slice { axis, start, len } => {
                w.put_u8(15);
                axis.encode(w);
                start.encode(w);
                len.encode(w);
            }
            Op::Split { axis, parts } => {
                w.put_u8(16);
                axis.encode(w);
                parts.encode(w);
            }
        }
    }
}

impl Decode for Op {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Op::Conv2d {
                stride: Decode::decode(r)?,
                padding: Decode::decode(r)?,
                groups: Decode::decode(r)?,
            },
            1 => Op::MatMul { trans_a: Decode::decode(r)?, trans_b: Decode::decode(r)? },
            2 => Op::LayerNorm { axes: Decode::decode(r)? },
            3 => Op::InstanceNorm,
            4 => Op::Softmax { axis: Decode::decode(r)? },
            5 => Op::Reduce {
                kind: Decode::decode(r)?,
                axes: Decode::decode(r)?,
                keep_dims: Decode::decode(r)?,
            },
            6 => Op::Pool2d {
                kind: Decode::decode(r)?,
                kernel: Decode::decode(r)?,
                stride: Decode::decode(r)?,
                padding: Decode::decode(r)?,
            },
            7 => Op::Unary { kind: Decode::decode(r)? },
            8 => Op::Binary { kind: Decode::decode(r)? },
            9 => Op::Concat { axis: Decode::decode(r)? },
            10 => Op::Reshape { shape: Decode::decode(r)? },
            11 => Op::Transpose { perm: Decode::decode(r)? },
            12 => Op::DepthToSpace { block: Decode::decode(r)? },
            13 => Op::SpaceToDepth { block: Decode::decode(r)? },
            14 => Op::Gather { axis: Decode::decode(r)? },
            15 => Op::Slice {
                axis: Decode::decode(r)?,
                start: Decode::decode(r)?,
                len: Decode::decode(r)?,
            },
            16 => Op::Split { axis: Decode::decode(r)?, parts: Decode::decode(r)? },
            tag => return Err(WireError::BadTag { ty: "Op", tag }),
        })
    }
}

impl Encode for TexturePlacement {
    fn encode(&self, w: &mut Writer) {
        self.height_dims.encode(w);
        self.width_dims.encode(w);
        self.vector_dim.encode(w);
    }
}

impl Decode for TexturePlacement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TexturePlacement {
            height_dims: Decode::decode(r)?,
            width_dims: Decode::decode(r)?,
            vector_dim: Decode::decode(r)?,
        })
    }
}

impl Encode for Layout {
    fn encode(&self, w: &mut Writer) {
        match self {
            Layout::Buffer { perm, vector_dim } => {
                w.put_u8(0);
                perm.encode(w);
                vector_dim.encode(w);
            }
            Layout::Texture(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }
}

impl Decode for Layout {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Layout::Buffer { perm: Decode::decode(r)?, vector_dim: Decode::decode(r)? }),
            1 => Ok(Layout::Texture(Decode::decode(r)?)),
            tag => Err(WireError::BadTag { ty: "Layout", tag }),
        }
    }
}

// ---------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------

impl Encode for TensorInfo {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.shape.encode(w);
        self.dtype.encode(w);
        self.kind.encode(w);
        self.producer.encode(w);
        self.consumers.encode(w);
        self.init.encode(w);
    }
}

impl Decode for TensorInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let info = TensorInfo {
            name: Decode::decode(r)?,
            shape: Decode::decode(r)?,
            dtype: Decode::decode(r)?,
            kind: Decode::decode(r)?,
            producer: Decode::decode(r)?,
            consumers: Decode::decode(r)?,
            init: Decode::decode(r)?,
        };
        if let Some(init) = &info.init {
            if init.len() as u64 != info.shape.numel() {
                return Err(WireError::Invalid(format!(
                    "initializer length {} does not match shape {}",
                    init.len(),
                    info.shape
                )));
            }
        }
        Ok(info)
    }
}

impl Encode for Node {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.op.encode(w);
        self.inputs.encode(w);
        self.outputs.encode(w);
        self.name.encode(w);
        self.origin.encode(w);
    }
}

impl Decode for Node {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Node {
            id: Decode::decode(r)?,
            op: Decode::decode(r)?,
            inputs: Decode::decode(r)?,
            outputs: Decode::decode(r)?,
            name: Decode::decode(r)?,
            origin: Decode::decode(r)?,
        })
    }
}

impl Encode for BucketTable {
    fn encode(&self, w: &mut Writer) {
        self.buckets().to_vec().encode(w);
    }
}

impl Decode for BucketTable {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let buckets = Vec::<usize>::decode(r)?;
        BucketTable::new(buckets).map_err(|e| WireError::Invalid(format!("bucket table: {e}")))
    }
}

impl Encode for SymDim {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.table.encode(w);
        self.value.encode(w);
    }
}

impl Decode for SymDim {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SymDim {
            name: Decode::decode(r)?,
            table: Decode::decode(r)?,
            value: Decode::decode(r)?,
        })
    }
}

impl Encode for SymAxis {
    fn encode(&self, w: &mut Writer) {
        self.tensor.encode(w);
        self.axis.encode(w);
        self.dim.encode(w);
    }
}

impl Decode for SymAxis {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SymAxis {
            tensor: Decode::decode(r)?,
            axis: Decode::decode(r)?,
            dim: Decode::decode(r)?,
        })
    }
}

impl Encode for Graph {
    fn encode(&self, w: &mut Writer) {
        self.name().encode(w);
        self.nodes().encode(w);
        self.tensors().encode(w);
        self.inputs().encode(w);
        self.outputs().encode(w);
        self.sym_dims().to_vec().encode(w);
        self.sym_axes().to_vec().encode(w);
    }
}

impl Decode for Graph {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = String::decode(r)?;
        let nodes = Vec::<Node>::decode(r)?;
        let tensors = Vec::<TensorInfo>::decode(r)?;
        let inputs = Vec::<TensorId>::decode(r)?;
        let outputs = Vec::<TensorId>::decode(r)?;
        // Reference bounds must hold before Graph::validate can run (it
        // indexes nodes/tensors by id and would panic on wild ids).
        let bad = |what: &str| Err(WireError::Invalid(format!("decoded graph: {what}")));
        for (i, n) in nodes.iter().enumerate() {
            if n.id.0 as usize != i {
                return bad("node ids not consecutive");
            }
        }
        for t in &tensors {
            if t.producer.is_some_and(|p| p.0 as usize >= nodes.len())
                || t.consumers.iter().any(|c| c.0 as usize >= nodes.len())
            {
                return bad("tensor references unknown node");
            }
        }
        if inputs.iter().chain(outputs.iter()).any(|t| t.0 as usize >= tensors.len()) {
            return bad("graph io references unknown tensor");
        }
        let mut graph = Graph::from_wire_parts(name, nodes, tensors, inputs, outputs);
        graph
            .validate()
            .map_err(|e| WireError::Invalid(format!("decoded graph fails validation: {e}")))?;
        let sym_dims = Vec::<SymDim>::decode(r)?;
        let sym_axes = Vec::<SymAxis>::decode(r)?;
        graph
            .attach_sym_parts(sym_dims, sym_axes)
            .map_err(|e| WireError::Invalid(format!("decoded graph sym metadata: {e}")))?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn roundtrip<T: Encode + Decode>(value: &T) -> T {
        decode_from(&encode_to_vec(value)).expect("roundtrip")
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(roundtrip(&42u64), 42);
        assert_eq!(roundtrip(&-7i64), -7);
        assert_eq!(roundtrip(&3.25f64), 3.25);
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&String::from("smartmem")), "smartmem");
        assert_eq!(roundtrip(&vec![1usize, 2, 3]), vec![1, 2, 3]);
        assert_eq!(roundtrip(&Some(9u32)), Some(9));
        assert_eq!(roundtrip(&None::<u32>), None);
        assert_eq!(roundtrip(&(4usize, 5usize)), (4, 5));
    }

    #[test]
    fn ops_and_layouts_roundtrip() {
        let ops = vec![
            Op::Conv2d { stride: (2, 1), padding: (1, 1), groups: 4 },
            Op::MatMul { trans_a: true, trans_b: false },
            Op::LayerNorm { axes: vec![1, 2] },
            Op::InstanceNorm,
            Op::Softmax { axis: 2 },
            Op::Reduce { kind: ReduceKind::Mean, axes: vec![0], keep_dims: true },
            Op::Pool2d { kind: PoolKind::Avg, kernel: (3, 3), stride: (2, 2), padding: (1, 1) },
            Op::Unary { kind: UnaryKind::Gelu },
            Op::Binary { kind: BinaryKind::Max },
            Op::Concat { axis: 1 },
            Op::Reshape { shape: vec![1, 2, 3] },
            Op::Transpose { perm: vec![2, 0, 1] },
            Op::DepthToSpace { block: 2 },
            Op::SpaceToDepth { block: 2 },
            Op::Gather { axis: 0 },
            Op::Slice { axis: 1, start: 2, len: 3 },
            Op::Split { axis: 0, parts: 4 },
        ];
        assert_eq!(roundtrip(&ops), ops);
        let layouts = vec![
            Layout::row_major(4),
            Layout::nc4hw4(),
            Layout::texture_default(3),
            Layout::texture_default(4),
        ];
        assert_eq!(roundtrip(&layouts), layouts);
    }

    #[test]
    fn graph_roundtrip_preserves_debug_identity() {
        let mut b = GraphBuilder::new("wire");
        let x = b.input("x", &[1, 16, 8, 8], DType::F16);
        let wt = b.weight("w", &[32, 16, 3, 3], DType::F16);
        let c = b.conv2d(x, wt, (1, 1), (1, 1), 1);
        let flat = b.reshape(c, &[1, 32, 64]);
        let t = b.transpose(flat, &[0, 2, 1]);
        b.output(t);
        let g = b.finish();
        let back: Graph = roundtrip(&g);
        assert_eq!(format!("{g:?}"), format!("{back:?}"));
    }

    #[test]
    fn sym_graph_roundtrip_preserves_debug_identity() {
        let mut b = GraphBuilder::new("wire-sym");
        let x = b.input("x", &[1, 48, 24], DType::F16);
        let wt = b.weight("w", &[24, 24], DType::F16);
        let m = b.matmul(x, wt);
        b.output(m);
        let table = BucketTable::new(vec![32, 64, 128]).unwrap();
        let g = b.finish().with_sym_dim("seq", &table, 48).unwrap();
        let back: Graph = roundtrip(&g);
        assert_eq!(format!("{g:?}"), format!("{back:?}"));
        assert_eq!(back.sym_dims(), g.sym_dims());
        assert_eq!(back.sym_axes(), g.sym_axes());
    }

    #[test]
    fn doctored_sym_metadata_is_rejected() {
        let mut b = GraphBuilder::new("wire-sym-bad");
        let x = b.input("x", &[1, 48, 24], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        b.output(y);
        let g = b.finish();
        let mut w = Writer::new();
        g.name().to_string().encode(&mut w);
        g.nodes().to_vec().encode(&mut w);
        g.tensors().to_vec().encode(&mut w);
        g.inputs().to_vec().encode(&mut w);
        g.outputs().to_vec().encode(&mut w);
        let table = BucketTable::new(vec![64]).unwrap();
        vec![SymDim { name: "seq".into(), table, value: 48 }].encode(&mut w);
        // Axis extent (24) does not match the bound value (48).
        vec![SymAxis { tensor: TensorId(0), axis: 2, dim: 0 }].encode(&mut w);
        let err = decode_from::<Graph>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)), "got {err:?}");
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = decode_from::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert_eq!(err, WireError::Truncated);
        }
    }

    #[test]
    fn huge_length_prefix_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // a corrupted length prefix
        let err = decode_from::<Vec<u64>>(&w.into_bytes()).unwrap_err();
        assert_eq!(err, WireError::Truncated);
    }

    #[test]
    fn bad_tags_error() {
        let err = decode_from::<DType>(&[99]).unwrap_err();
        assert_eq!(err, WireError::BadTag { ty: "DType", tag: 99 });
        let err = decode_from::<Op>(&[200]).unwrap_err();
        assert_eq!(err, WireError::BadTag { ty: "Op", tag: 200 });
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert_eq!(decode_from::<u64>(&bytes).unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn inconsistent_graph_fails_validation_on_decode() {
        // Encode a graph, then decode a doctored variant whose node list
        // was emptied while tensors still reference producers.
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", &[4], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        b.output(y);
        let g = b.finish();
        let mut w = Writer::new();
        g.name().to_string().encode(&mut w);
        Vec::<Node>::new().encode(&mut w); // drop all nodes
        g.tensors().to_vec().encode(&mut w);
        g.inputs().to_vec().encode(&mut w);
        g.outputs().to_vec().encode(&mut w);
        let err = decode_from::<Graph>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)), "got {err:?}");
    }
}
