//! Tensor shapes.

use std::fmt;

/// The logical shape of a tensor: an ordered list of dimension extents.
///
/// Shapes are small (rank ≤ 8 in every model in the paper) so they are
/// stored inline in a `Vec` and cloned freely.
///
/// # Example
///
/// ```
/// use smartmem_ir::Shape;
/// let s = Shape::new(vec![2, 256, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 2048);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// Zero-sized dimensions are allowed (empty tensors) but never occur
    /// in the evaluated models.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The last dimension has stride 1.
    pub fn row_major_strides(&self) -> Vec<u64> {
        let mut strides = vec![1u64; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1] as u64;
        }
        strides
    }

    /// Linearizes a multi-dimensional coordinate into a row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `coord.len() != self.rank()` or any coordinate is out of
    /// bounds (debug builds only for the bounds check).
    pub fn linearize(&self, coord: &[usize]) -> u64 {
        assert_eq!(coord.len(), self.rank(), "coordinate rank mismatch");
        let strides = self.row_major_strides();
        coord
            .iter()
            .zip(strides.iter())
            .map(|(&c, &s)| {
                debug_assert!(c < usize::MAX); // placeholder bound
                c as u64 * s
            })
            .sum()
    }

    /// Delinearizes a row-major offset into a coordinate.
    pub fn delinearize(&self, mut offset: u64) -> Vec<usize> {
        let mut coord = vec![0usize; self.rank()];
        for i in (0..self.rank()).rev() {
            let d = self.0[i] as u64;
            if d > 0 {
                coord[i] = (offset % d) as usize;
                offset /= d;
            }
        }
        coord
    }

    /// Returns a new shape with the given permutation applied:
    /// `result.dim(i) == self.dim(perm[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Shape {
        assert!(crate::ops::is_permutation(perm, self.rank()), "invalid permutation {perm:?}");
        Shape(perm.iter().map(|&p| self.0[p]).collect())
    }

    /// Whether another shape describes the same number of elements
    /// (the legality condition for `Reshape`).
    pub fn same_numel(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }

    /// Broadcasts two shapes following NumPy rules, returning the result
    /// shape if compatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let r = self.rank().max(other.rank());
        let mut dims = vec![0usize; r];
        for (i, d) in dims.iter_mut().enumerate() {
            let a = if i < r - self.rank() { 1 } else { self.0[i - (r - self.rank())] };
            let b = if i < r - other.rank() { 1 } else { other.0[i - (r - other.rank())] };
            *d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
        }
        Some(Shape(dims))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.row_major_strides(), vec![12, 4, 1]);
    }

    #[test]
    fn linearize_delinearize_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]);
        for off in 0..s.numel() {
            let c = s.delinearize(off);
            assert_eq!(s.linearize(&c), off);
        }
    }

    #[test]
    fn permute_moves_dims() {
        let s = Shape::new(vec![2, 3, 4]);
        let p = s.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_bad_perm() {
        Shape::new(vec![2, 3]).permute(&[0, 0]);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(vec![4, 1, 3]);
        let b = Shape::new(vec![2, 3]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 2, 3]);
        let c = Shape::new(vec![4, 5, 3]);
        assert!(c.broadcast(&Shape::new(vec![2, 3])).is_none());
    }

    #[test]
    fn same_numel_for_reshape() {
        let a = Shape::new(vec![2, 256, 4]);
        let b = Shape::new(vec![16, 8, 4, 4]);
        assert!(a.same_numel(&b));
    }
}
