//! Reference interpreter for differential testing.
//!
//! Executes a [`Graph`] over small dense tensors so tests can compare a
//! graph's observable behaviour before and after an optimizing pipeline
//! runs. This is a *semantics oracle*, not a performance path: all
//! arithmetic is `f32` regardless of the tensor dtype, and every operator
//! is implemented as the most literal possible loop nest.
//!
//! Value conventions:
//!
//! * Weights carrying an initializer ([`crate::TensorInfo::init`]) use it
//!   verbatim.
//! * Inputs and initializer-less weights get values derived
//!   deterministically from the *tensor name* (via [`seed_value`]), so a
//!   semantics-preserving rewrite that keeps input/weight names keeps the
//!   evaluation. Floating tensors get values in `[-1, 1]`; integer
//!   tensors (`i32`/`i8`) get small non-negative integers so they can
//!   serve as `Gather` indices.
//! * `Gather` clamps indices into range (out-of-range indices in a fuzzed
//!   graph must not crash the oracle).
//!
//! Comparisons use [`approx_eq`]: rewrites such as collapsing `(x·c₁)·c₂`
//! into `x·(c₁·c₂)` reassociate floating point, so exact equality is the
//! wrong check; NaN is considered equal to NaN.

use crate::dtype::DType;
use crate::graph::{Graph, TensorKind};
use crate::ops::{BinaryKind, Op, PoolKind, ReduceKind, UnaryKind};
use crate::shape::Shape;

/// A dense `f32` tensor value.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorValue {
    /// Logical shape of the value.
    pub shape: Shape,
    /// Elements in row-major order (`shape.numel()` of them).
    pub data: Vec<f32>,
}

impl TensorValue {
    /// Creates a value, checking the element count.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape.numel()`.
    pub fn new(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(data.len() as u64, shape.numel(), "value length mismatch for {shape}");
        TensorValue { shape, data }
    }

    fn at(&self, coord: &[usize]) -> f32 {
        self.data[self.shape.linearize(coord) as usize]
    }

    /// Reads with NumPy broadcast semantics against a larger coordinate
    /// (trailing-aligned; extent-1 dims repeat).
    fn at_broadcast(&self, coord: &[usize]) -> f32 {
        let r = self.shape.rank();
        let skip = coord.len() - r;
        let mapped: Vec<usize> =
            (0..r).map(|i| if self.shape.dim(i) == 1 { 0 } else { coord[skip + i] }).collect();
        self.at(&mapped)
    }
}

/// splitmix64: the deterministic scrambler behind [`seed_value`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic value for an input or initializer-less weight, derived
/// from the tensor name alone (see the module docs for the convention).
pub fn seed_value(name: &str, dtype: DType, shape: &Shape) -> TensorValue {
    let base = fnv64(name);
    let n = shape.numel() as usize;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = splitmix64(base ^ splitmix64(i as u64));
            match dtype {
                // Small non-negative integers: usable as gather indices.
                DType::I32 | DType::I8 => (h % 4) as f32,
                // Uniform in [-1, 1] with 53-bit resolution.
                DType::F16 | DType::F32 => {
                    (((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) as f32
                }
            }
        })
        .collect();
    TensorValue::new(shape.clone(), data)
}

/// Relative-plus-absolute tolerance comparison; NaN equals NaN.
///
/// `|a - b| <= abs + rel * max(|a|, |b|)` element-wise, same shape.
pub fn approx_eq(a: &TensorValue, b: &TensorValue, rel: f32, abs: f32) -> bool {
    if a.shape != b.shape || a.data.len() != b.data.len() {
        return false;
    }
    a.data.iter().zip(b.data.iter()).all(|(&x, &y)| {
        if x.is_nan() && y.is_nan() {
            return true;
        }
        (x - y).abs() <= abs + rel * x.abs().max(y.abs())
    })
}

/// Evaluates the graph, returning the output values in
/// [`Graph::outputs`] order.
///
/// Intended for small tensors (the generator caps element counts); the
/// loop nests here are `O(numel · kernel)` with no blocking.
///
/// # Errors
///
/// Returns a description of the first operator whose evaluation is
/// undefined (should not happen for graphs that pass shape inference).
pub fn run_graph(g: &Graph) -> Result<Vec<TensorValue>, String> {
    let mut values: Vec<Option<TensorValue>> = vec![None; g.tensors().len()];
    for (i, t) in g.tensors().iter().enumerate() {
        match t.kind {
            TensorKind::Input | TensorKind::Weight => {
                values[i] = Some(match &t.init {
                    Some(init) => TensorValue::new(t.shape.clone(), init.clone()),
                    None => seed_value(&t.name, t.dtype, &t.shape),
                });
            }
            TensorKind::Activation => {}
        }
    }
    for n in g.nodes() {
        let ins: Vec<&TensorValue> = n
            .inputs
            .iter()
            .map(|&t| {
                values[t.0 as usize]
                    .as_ref()
                    .ok_or_else(|| format!("{}: operand {} not yet computed", n.name, t.0))
            })
            .collect::<Result<_, String>>()?;
        let outs = eval_op(&n.op, &ins)?;
        if outs.len() != n.outputs.len() {
            return Err(format!("{}: arity mismatch", n.name));
        }
        for (t, v) in n.outputs.iter().zip(outs) {
            values[t.0 as usize] = Some(v);
        }
    }
    g.outputs()
        .iter()
        .map(|&t| {
            values[t.0 as usize]
                .clone()
                .ok_or_else(|| format!("output tensor {} never computed", t.0))
        })
        .collect()
}

/// Evaluates one operator on concrete values.
///
/// This is the single source of truth for operator semantics: the
/// differential harness uses it through [`run_graph`], and the streamline
/// constant-folding pass uses it directly so folded weights are
/// bit-identical to what interpretation would produce.
///
/// # Errors
///
/// Returns a message when operand shapes do not satisfy the operator
/// (mirrors [`crate::infer_output_shapes`] failures).
pub fn eval_op(op: &Op, inputs: &[&TensorValue]) -> Result<Vec<TensorValue>, String> {
    let shapes: Vec<&Shape> = inputs.iter().map(|v| &v.shape).collect();
    let out_shapes = crate::graph::infer_output_shapes(op, &shapes).map_err(|e| e.to_string())?;
    let one = |v: TensorValue| Ok(vec![v]);
    match op {
        Op::Conv2d { stride, padding, groups } => {
            let x = inputs[0];
            let w = inputs[1];
            let out_shape = out_shapes[0].clone();
            let (n_, oc, oh, ow) =
                (out_shape.dim(0), out_shape.dim(1), out_shape.dim(2), out_shape.dim(3));
            let (cpg, kh, kw) = (w.shape.dim(1), w.shape.dim(2), w.shape.dim(3));
            let ocpg = oc / groups;
            let mut data = vec![0f32; out_shape.numel() as usize];
            let mut idx = 0;
            for n in 0..n_ {
                for o in 0..oc {
                    let g = o / ocpg;
                    for y in 0..oh {
                        for xo in 0..ow {
                            let mut acc = 0f32;
                            for c in 0..cpg {
                                for ky in 0..kh {
                                    for kx in 0..kw {
                                        let iy = (y * stride.0 + ky) as isize - padding.0 as isize;
                                        let ix = (xo * stride.1 + kx) as isize - padding.1 as isize;
                                        if iy < 0
                                            || ix < 0
                                            || iy as usize >= x.shape.dim(2)
                                            || ix as usize >= x.shape.dim(3)
                                        {
                                            continue;
                                        }
                                        acc += x.at(&[n, g * cpg + c, iy as usize, ix as usize])
                                            * w.at(&[o, c, ky, kx]);
                                    }
                                }
                            }
                            data[idx] = acc;
                            idx += 1;
                        }
                    }
                }
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::MatMul { trans_a, trans_b } => {
            let a = inputs[0];
            let b = inputs[1];
            let out_shape = out_shapes[0].clone();
            let r = out_shape.rank();
            let ar = a.shape.rank();
            let k = if *trans_a { a.shape.dim(ar - 2) } else { a.shape.dim(ar - 1) };
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let coord = out_shape.delinearize(lin as u64);
                let (mi, ni) = (coord[r - 2], coord[r - 1]);
                let mut acc = 0f32;
                for ki in 0..k {
                    let a_mat = if *trans_a { [ki, mi] } else { [mi, ki] };
                    let b_mat = if *trans_b { [ni, ki] } else { [ki, ni] };
                    acc += batched_at(a, &coord[..r - 2], &a_mat)
                        * batched_at(b, &coord[..r - 2], &b_mat);
                }
                *slot = acc;
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::LayerNorm { axes } => one(normalize(inputs[0], axes)),
        Op::InstanceNorm => one(normalize(inputs[0], &[2, 3])),
        Op::Softmax { axis } => {
            let x = inputs[0];
            let mut out = x.clone();
            for_each_lane(&x.shape, *axis, |lane| {
                let max = lane.iter().map(|&i| x.data[i]).fold(f32::NEG_INFINITY, f32::max);
                let sum: f32 = lane.iter().map(|&i| (x.data[i] - max).exp()).sum();
                for &i in lane {
                    out.data[i] = (x.data[i] - max).exp() / sum;
                }
            });
            one(out)
        }
        Op::Reduce { kind, axes, keep_dims: _ } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let count: u64 = axes.iter().map(|&a| x.shape.dim(a) as u64).product();
            let init = match kind {
                ReduceKind::Sum | ReduceKind::Mean => 0f32,
                ReduceKind::Max => f32::NEG_INFINITY,
                ReduceKind::Min => f32::INFINITY,
            };
            let mut data = vec![init; out_shape.numel() as usize];
            for (lin, &v) in x.data.iter().enumerate() {
                let coord = x.shape.delinearize(lin as u64);
                // Map the input coordinate onto the (possibly smaller)
                // output coordinate by dropping/zeroing reduced axes.
                let mut oc = Vec::with_capacity(out_shape.rank());
                for (i, &c) in coord.iter().enumerate() {
                    if axes.contains(&i) {
                        if out_shape.rank() == x.shape.rank() {
                            oc.push(0); // keep_dims
                        }
                    } else {
                        oc.push(c);
                    }
                }
                let o = out_shape.linearize(&oc) as usize;
                data[o] = match kind {
                    ReduceKind::Sum | ReduceKind::Mean => data[o] + v,
                    ReduceKind::Max => data[o].max(v),
                    ReduceKind::Min => data[o].min(v),
                };
            }
            if *kind == ReduceKind::Mean {
                for v in &mut data {
                    *v /= count as f32;
                }
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Pool2d { kind, kernel, stride, padding } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let c = out_shape.delinearize(lin as u64);
                let mut acc = if *kind == PoolKind::Max { f32::NEG_INFINITY } else { 0.0 };
                let mut seen = 0u32;
                for ky in 0..kernel.0 {
                    for kx in 0..kernel.1 {
                        let iy = (c[2] * stride.0 + ky) as isize - padding.0 as isize;
                        let ix = (c[3] * stride.1 + kx) as isize - padding.1 as isize;
                        if iy < 0
                            || ix < 0
                            || iy as usize >= x.shape.dim(2)
                            || ix as usize >= x.shape.dim(3)
                        {
                            continue;
                        }
                        let v = x.at(&[c[0], c[1], iy as usize, ix as usize]);
                        acc = if *kind == PoolKind::Max { acc.max(v) } else { acc + v };
                        seen += 1;
                    }
                }
                *slot = if *kind == PoolKind::Avg && seen > 0 { acc / seen as f32 } else { acc };
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Unary { kind } => {
            let x = inputs[0];
            let data = x.data.iter().map(|&v| unary_fn(*kind, v)).collect();
            one(TensorValue::new(x.shape.clone(), data))
        }
        Op::Binary { kind } => {
            let a = inputs[0];
            let b = inputs[1];
            let out_shape = out_shapes[0].clone();
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let coord = out_shape.delinearize(lin as u64);
                let (x, y) = (a.at_broadcast(&coord), b.at_broadcast(&coord));
                *slot = match kind {
                    BinaryKind::Add => x + y,
                    BinaryKind::Sub => x - y,
                    BinaryKind::Mul => x * y,
                    BinaryKind::Div => x / y,
                    BinaryKind::Max => x.max(y),
                };
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Concat { axis } => {
            let out_shape = out_shapes[0].clone();
            let mut data = vec![0f32; out_shape.numel() as usize];
            let mut base = 0usize;
            for part in inputs {
                for (lin, &v) in part.data.iter().enumerate() {
                    let mut coord = part.shape.delinearize(lin as u64);
                    coord[*axis] += base;
                    data[out_shape.linearize(&coord) as usize] = v;
                }
                base += part.shape.dim(*axis);
            }
            one(TensorValue::new(out_shape, data))
        }
        // Reshape reinterprets the same row-major buffer.
        Op::Reshape { .. } => one(TensorValue::new(out_shapes[0].clone(), inputs[0].data.clone())),
        Op::Transpose { perm } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let oc = out_shape.delinearize(lin as u64);
                // out[i] indexes input dim perm[i].
                let mut ic = vec![0usize; x.shape.rank()];
                for (i, &p) in perm.iter().enumerate() {
                    ic[p] = oc[i];
                }
                *slot = x.at(&ic);
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::DepthToSpace { block } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let cout = out_shape.dim(1);
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let c = out_shape.delinearize(lin as u64);
                let (bh, bw) = (c[2] % block, c[3] % block);
                // DCR convention: input channel = bh·(b·C') + bw·C' + c.
                *slot = x.at(&[c[0], (bh * block + bw) * cout + c[1], c[2] / block, c[3] / block]);
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::SpaceToDepth { block } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let cin = x.shape.dim(1);
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let c = out_shape.delinearize(lin as u64);
                let blk = c[1] / cin;
                let (bh, bw) = (blk / block, blk % block);
                *slot = x.at(&[c[0], c[1] % cin, c[2] * block + bh, c[3] * block + bw]);
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Gather { axis } => {
            let data_t = inputs[0];
            let idx_t = inputs[1];
            let out_shape = out_shapes[0].clone();
            let extent = data_t.shape.dim(*axis);
            let ir = idx_t.shape.rank();
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let oc = out_shape.delinearize(lin as u64);
                let idx_coord = &oc[*axis..*axis + ir];
                let raw = idx_t.at(idx_coord);
                // Clamp: the oracle must stay total on fuzzed indices.
                let sel = (raw.round().max(0.0) as usize).min(extent.saturating_sub(1));
                let mut dc = Vec::with_capacity(data_t.shape.rank());
                dc.extend_from_slice(&oc[..*axis]);
                dc.push(sel);
                dc.extend_from_slice(&oc[*axis + ir..]);
                *slot = data_t.at(&dc);
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Slice { axis, start, len: _ } => {
            let x = inputs[0];
            let out_shape = out_shapes[0].clone();
            let mut data = vec![0f32; out_shape.numel() as usize];
            for (lin, slot) in data.iter_mut().enumerate() {
                let mut c = out_shape.delinearize(lin as u64);
                c[*axis] += start;
                *slot = x.at(&c);
            }
            one(TensorValue::new(out_shape, data))
        }
        Op::Split { axis, parts } => {
            let x = inputs[0];
            let step = x.shape.dim(*axis) / parts;
            let mut outs = Vec::with_capacity(*parts);
            for (p, out_shape) in out_shapes.into_iter().enumerate() {
                let mut data = vec![0f32; out_shape.numel() as usize];
                for (lin, slot) in data.iter_mut().enumerate() {
                    let mut c = out_shape.delinearize(lin as u64);
                    c[*axis] += p * step;
                    *slot = x.at(&c);
                }
                outs.push(TensorValue::new(out_shape, data));
            }
            Ok(outs)
        }
    }
}

fn unary_fn(kind: UnaryKind, v: f32) -> f32 {
    match kind {
        UnaryKind::Relu => v.max(0.0),
        // tanh-approximated GELU (the common inference-kernel form).
        UnaryKind::Gelu => {
            0.5 * v
                * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)).tanh())
        }
        UnaryKind::Silu => v * (1.0 / (1.0 + (-v).exp())),
        UnaryKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        UnaryKind::Tanh => v.tanh(),
        UnaryKind::Exp => v.exp(),
        UnaryKind::Sqrt => v.sqrt(),
        UnaryKind::Recip => 1.0 / v,
        UnaryKind::Neg => -v,
        UnaryKind::Identity => v,
    }
}

/// Mean/variance normalization over `axes` with eps 1e-5 (no learned
/// scale/shift — the ops carry none).
fn normalize(x: &TensorValue, axes: &[usize]) -> TensorValue {
    const EPS: f32 = 1e-5;
    let mut out = x.clone();
    for_each_group(&x.shape, axes, |group| {
        let n = group.len() as f32;
        let mean: f32 = group.iter().map(|&i| x.data[i]).sum::<f32>() / n;
        let var: f32 = group.iter().map(|&i| (x.data[i] - mean).powi(2)).sum::<f32>() / n;
        let denom = (var + EPS).sqrt();
        for &i in group {
            out.data[i] = (x.data[i] - mean) / denom;
        }
    });
    out
}

/// Calls `f` once per 1-D lane along `axis` with the linear offsets of
/// that lane's elements.
fn for_each_lane(shape: &Shape, axis: usize, mut f: impl FnMut(&[usize])) {
    for_each_group(shape, &[axis], |g| f(g));
}

/// Calls `f` once per group of elements that agree on every coordinate
/// outside `axes`, passing the group's linear offsets.
fn for_each_group(shape: &Shape, axes: &[usize], mut f: impl FnMut(&[usize])) {
    let numel = shape.numel() as usize;
    let mut visited = vec![false; numel];
    let mut group = Vec::new();
    for lin in 0..numel {
        if visited[lin] {
            continue;
        }
        let anchor = shape.delinearize(lin as u64);
        group.clear();
        // Enumerate the cartesian product over the grouped axes.
        let extents: Vec<usize> = axes.iter().map(|&a| shape.dim(a)).collect();
        let count: usize = extents.iter().product();
        for k in 0..count {
            let mut rem = k;
            let mut c = anchor.clone();
            for (ei, &a) in axes.iter().enumerate().rev() {
                c[a] = rem % extents[ei];
                rem /= extents[ei];
            }
            let off = shape.linearize(&c) as usize;
            visited[off] = true;
            group.push(off);
        }
        f(&group);
    }
}

/// Element of a batched matrix operand: `batch` coordinates are
/// broadcast-aligned (trailing dims), `mat` is the `[row, col]` pair.
fn batched_at(v: &TensorValue, batch: &[usize], mat: &[usize; 2]) -> f32 {
    let r = v.shape.rank();
    let vb = r - 2; // batch dims this operand actually has
    let skip = batch.len() - vb;
    let mut c = Vec::with_capacity(r);
    for i in 0..vb {
        c.push(if v.shape.dim(i) == 1 { 0 } else { batch[skip + i] });
    }
    c.push(mat[0]);
    c.push(mat[1]);
    v.at(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn val(dims: &[usize], data: Vec<f32>) -> TensorValue {
        TensorValue::new(Shape::new(dims.to_vec()), data)
    }

    #[test]
    fn transpose_then_inverse_is_identity() {
        let x = val(&[2, 3], (0..6).map(|i| i as f32).collect());
        let t = eval_op(&Op::Transpose { perm: vec![1, 0] }, &[&x]).unwrap();
        let back = eval_op(&Op::Transpose { perm: vec![1, 0] }, &[&t[0]]).unwrap();
        assert_eq!(back[0], x);
        assert_eq!(t[0].data, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn matmul_small() {
        let a = val(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = val(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let out = eval_op(&Op::MatMul { trans_a: false, trans_b: false }, &[&a, &b]).unwrap();
        assert_eq!(out[0].data, vec![4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_transpose_flags_agree_with_explicit_transpose() {
        let a = val(&[3, 2], vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // [K, M]
        let b = val(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let at = eval_op(&Op::Transpose { perm: vec![1, 0] }, &[&a]).unwrap();
        let flagged = eval_op(&Op::MatMul { trans_a: true, trans_b: false }, &[&a, &b]).unwrap();
        let explicit =
            eval_op(&Op::MatMul { trans_a: false, trans_b: false }, &[&at[0], &b]).unwrap();
        assert_eq!(flagged[0], explicit[0]);
    }

    #[test]
    fn broadcast_binary() {
        let a = val(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let s = val(&[1], vec![10.0]);
        let out = eval_op(&Op::Binary { kind: BinaryKind::Mul }, &[&a, &s]).unwrap();
        assert_eq!(out[0].data, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = val(&[2, 4], (0..8).map(|i| i as f32 * 0.3).collect());
        let out = eval_op(&Op::Softmax { axis: 1 }, &[&x]).unwrap();
        for row in out[0].data.chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn reduce_mean_keepdims() {
        let x = val(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out =
            eval_op(&Op::Reduce { kind: ReduceKind::Mean, axes: vec![1], keep_dims: true }, &[&x])
                .unwrap();
        assert_eq!(out[0].shape.dims(), &[2, 1]);
        assert_eq!(out[0].data, vec![2.0, 5.0]);
    }

    #[test]
    fn depth_space_inverse() {
        let x = val(&[1, 4, 2, 2], (0..16).map(|i| i as f32).collect());
        let d = eval_op(&Op::DepthToSpace { block: 2 }, &[&x]).unwrap();
        let back = eval_op(&Op::SpaceToDepth { block: 2 }, &[&d[0]]).unwrap();
        assert_eq!(back[0], x);
    }

    #[test]
    fn gather_clamps_out_of_range() {
        let d = val(&[3, 2], vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let idx = val(&[2], vec![1.0, 99.0]);
        let out = eval_op(&Op::Gather { axis: 0 }, &[&d, &idx]).unwrap();
        assert_eq!(out[0].data, vec![10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn split_concat_roundtrip() {
        let x = val(&[2, 4], (0..8).map(|i| i as f32).collect());
        let parts = eval_op(&Op::Split { axis: 1, parts: 2 }, &[&x]).unwrap();
        let refs: Vec<&TensorValue> = parts.iter().collect();
        let cat = eval_op(&Op::Concat { axis: 1 }, &refs).unwrap();
        assert_eq!(cat[0], x);
    }

    #[test]
    fn graph_run_is_deterministic_and_name_derived() {
        let build = |input_name: &str| {
            let mut b = GraphBuilder::new("det");
            let x = b.input(input_name, &[2, 3], DType::F32);
            let y = b.unary(x, UnaryKind::Relu);
            b.output(y);
            b.finish()
        };
        let a = run_graph(&build("x")).unwrap();
        let b_ = run_graph(&build("x")).unwrap();
        let c = run_graph(&build("other")).unwrap();
        assert_eq!(a, b_);
        assert_ne!(a, c); // values follow the tensor name
    }

    #[test]
    fn init_overrides_seeding() {
        let mut b = GraphBuilder::new("init");
        let x = b.input("x", &[2], DType::F32);
        let w = b.weight_init("w", &[2], DType::F32, vec![100.0, 200.0]);
        let y = b.add(x, w);
        b.output(y);
        let out = run_graph(&b.finish()).unwrap();
        assert!(out[0].data[0] > 90.0 && out[0].data[1] > 190.0);
    }

    #[test]
    fn approx_eq_tolerates_reassociation_and_nan() {
        let a = val(&[2], vec![1.0000001, f32::NAN]);
        let b = val(&[2], vec![1.0, f32::NAN]);
        assert!(approx_eq(&a, &b, 1e-4, 1e-6));
        let c = val(&[2], vec![2.0, 0.0]);
        assert!(!approx_eq(&a, &c, 1e-4, 1e-6));
    }

    #[test]
    fn instance_norm_zero_mean() {
        let x = val(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = eval_op(&Op::InstanceNorm, &[&x]).unwrap();
        let mean: f32 = out[0].data.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }
}
