//! Computational graphs: a DAG of operator [`Node`]s connected by
//! tensors, plus the [`GraphBuilder`] used by the model zoo and by the
//! optimizing pipelines.

use crate::dtype::DType;
use crate::error::IrError;
use crate::ops::{BinaryKind, Op, PoolKind, ReduceKind, UnaryKind};
use crate::shape::Shape;
use crate::sym::{BucketTable, SymDim};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifier of a tensor within one [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TensorId(pub u32);

/// Identifier of an operator node within one [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u32);

/// How a tensor enters the graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TensorKind {
    /// Runtime input (activations fed by the caller).
    Input,
    /// Trained parameter (counted in `#Params`).
    Weight,
    /// Produced by an operator.
    Activation,
}

/// Why an operator exists in the graph.
///
/// Table 1 distinguishes *explicit* layout transformations (written by
/// the model author, i.e. present in the source graph) from *implicit*
/// ones (inserted by the executing framework to satisfy per-operator
/// layout preferences). Model builders produce `Model` nodes; baseline
/// pipelines tag the relayout operators they insert as `Framework`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OpOrigin {
    /// Present in the source model.
    #[default]
    Model,
    /// Inserted by an executing framework (implicit transformation).
    Framework,
}

/// Metadata of one tensor.
#[derive(Clone, Debug)]
pub struct TensorInfo {
    /// Human-readable name (unique within the graph).
    pub name: String,
    /// Logical shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Input / weight / activation.
    pub kind: TensorKind,
    /// Producing operator, if any.
    pub producer: Option<OpId>,
    /// Consuming operators in insertion order.
    pub consumers: Vec<OpId>,
    /// Initializer values in row-major order (weights only; carried by
    /// imported graphs and by weights the streamline constant-folding
    /// passes synthesize). `None` for runtime inputs, activations and
    /// zoo weights, whose values the reference interpreter derives
    /// deterministically from the tensor name instead.
    pub init: Option<Vec<f32>>,
}

/// One operator node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id (index into [`Graph::nodes`]).
    pub id: OpId,
    /// The operator.
    pub op: Op,
    /// Operand tensors in operator-defined order.
    pub inputs: Vec<TensorId>,
    /// Result tensors (usually one; `Split` has several).
    pub outputs: Vec<TensorId>,
    /// Debug name.
    pub name: String,
    /// Model-authored or framework-inserted.
    pub origin: OpOrigin,
}

/// One tensor axis bound to a symbolic dimension: `tensor`'s `axis`
/// carries the extent of `sym_dims[dim]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SymAxis {
    /// The tensor carrying the symbolic extent.
    pub tensor: TensorId,
    /// The axis index within that tensor's shape.
    pub axis: usize,
    /// Index into [`Graph::sym_dims`].
    pub dim: usize,
}

/// An immutable computational graph in topological order.
///
/// Construct through [`GraphBuilder`]; node order is a valid topological
/// order by construction.
#[derive(Clone, Default)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    tensors: Vec<TensorInfo>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
    sym_dims: Vec<SymDim>,
    sym_axes: Vec<SymAxis>,
}

// Hand-written so that graphs without symbolic dimensions render
// exactly as the pre-sym derive did: the compile session fingerprints
// graphs by their `Debug` rendering, and static graphs must keep their
// fingerprints (and on-disk artifacts) across this change.
impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Graph");
        d.field("name", &self.name)
            .field("nodes", &self.nodes)
            .field("tensors", &self.tensors)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs);
        if !self.sym_dims.is_empty() {
            d.field("sym_dims", &self.sym_dims).field("sym_axes", &self.sym_axes);
        }
        d.finish()
    }
}

impl Graph {
    /// Reassembles a graph from decoded parts (the wire codec's entry
    /// point). Callers must run [`Graph::validate`] afterwards — the
    /// parts come straight off disk.
    pub(crate) fn from_wire_parts(
        name: String,
        nodes: Vec<Node>,
        tensors: Vec<TensorInfo>,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> Graph {
        Graph { name, nodes, tensors, inputs, outputs, sym_dims: Vec::new(), sym_axes: Vec::new() }
    }

    /// Restores decoded symbolic-dimension metadata (wire codec only).
    /// Performs the structural checks the codec needs: indices in
    /// bounds, recorded extents matching the bound values, axes sorted.
    pub(crate) fn attach_sym_parts(
        &mut self,
        sym_dims: Vec<SymDim>,
        sym_axes: Vec<SymAxis>,
    ) -> Result<(), IrError> {
        for a in &sym_axes {
            if a.tensor.0 as usize >= self.tensors.len() {
                return Err(IrError::UnknownTensor(a.tensor.0));
            }
            let shape = &self.tensors[a.tensor.0 as usize].shape;
            if a.axis >= shape.rank() {
                return Err(IrError::AxisOutOfRange { axis: a.axis, rank: shape.rank() });
            }
            let dim = sym_dims
                .get(a.dim)
                .ok_or_else(|| IrError::Shape(format!("sym axis references dim {}", a.dim)))?;
            if shape.dim(a.axis) != dim.value {
                return Err(IrError::Shape(format!(
                    "sym axis extent {} does not match bound value {}",
                    shape.dim(a.axis),
                    dim.value
                )));
            }
        }
        if sym_axes.windows(2).any(|w| (w[0].tensor, w[0].axis) >= (w[1].tensor, w[1].axis)) {
            return Err(IrError::Shape("sym axes must be sorted and unique".into()));
        }
        self.sym_dims = sym_dims;
        self.sym_axes = sym_axes;
        Ok(())
    }

    /// Graph name (the model name for zoo graphs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operator nodes (the paper's `#Operators`).
    pub fn op_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All tensors.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: OpId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Tensor lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0 as usize]
    }

    /// Graph-level input tensors.
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// Graph-level output tensors.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// The operator producing `t`, or `None` for inputs/weights.
    pub fn producer(&self, t: TensorId) -> Option<OpId> {
        self.tensor(t).producer
    }

    /// Operators consuming `t`.
    pub fn consumers(&self, t: TensorId) -> &[OpId] {
        &self.tensor(t).consumers
    }

    /// Iterator over producer→consumer edges `(producer, tensor, consumer)`.
    pub fn edges(&self) -> impl Iterator<Item = (OpId, TensorId, OpId)> + '_ {
        self.nodes.iter().flat_map(move |n| {
            n.outputs
                .iter()
                .flat_map(move |&t| self.consumers(t).iter().map(move |&c| (n.id, t, c)))
        })
    }

    /// Total multiply-accumulate operations over all nodes.
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| self.node_macs(n.id)).sum()
    }

    /// MACs of a single node.
    pub fn node_macs(&self, id: OpId) -> u64 {
        let n = self.node(id);
        let shapes: Vec<&Shape> = n.inputs.iter().map(|&t| &self.tensor(t).shape).collect();
        let out = &self.tensor(n.outputs[0]).shape;
        n.op.mac_count(&shapes, out)
    }

    /// Number of trained parameters (elements of `Weight` tensors).
    pub fn param_count(&self) -> u64 {
        self.tensors.iter().filter(|t| t.kind == TensorKind::Weight).map(|t| t.shape.numel()).sum()
    }

    /// Number of layout-transformation operators (`Reshape`, `Transpose`,
    /// `DepthToSpace`, `SpaceToDepth`) — the third column of Table 1.
    pub fn layout_transform_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_layout_transform()).count()
    }

    /// Binds a symbolic dimension: every tensor axis currently carrying
    /// extent `value` is recorded as symbolic, then the graph is
    /// re-inferred with all recorded axes raised to the table ceiling
    /// to prove it stays shape-consistent at every bucket.
    ///
    /// The match is by extent, so pick a bound value distinct from
    /// every structural extent in the model (decoder builders choose
    /// sequence lengths that collide with nothing else). `Reshape`
    /// targets mentioning `value` are padded alongside the axes;
    /// operators that genuinely consume the extent (slicing a symbolic
    /// axis, concatenating along it) fail validation and are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] when `value` is zero, exceeds the table
    /// ceiling, matches no tensor axis, duplicates an existing binding,
    /// or the ceiling-padded graph fails shape inference.
    pub fn with_sym_dim(
        mut self,
        name: impl Into<String>,
        table: &BucketTable,
        value: usize,
    ) -> Result<Graph, IrError> {
        let name = name.into();
        if value == 0 || value > table.ceiling() {
            return Err(IrError::Shape(format!(
                "sym value {value} outside bucket range 1..={}",
                table.ceiling()
            )));
        }
        if self.sym_dims.iter().any(|d| d.name == name) {
            return Err(IrError::Shape(format!("sym dim `{name}` already bound")));
        }
        let dim = self.sym_dims.len();
        let mut axes = Vec::new();
        for (i, t) in self.tensors.iter().enumerate() {
            for (axis, &e) in t.shape.dims().iter().enumerate() {
                let id = TensorId(i as u32);
                let claimed = self.sym_axes.iter().any(|a| a.tensor == id && a.axis == axis);
                if e == value && !claimed {
                    axes.push(SymAxis { tensor: id, axis, dim });
                }
            }
        }
        if axes.is_empty() {
            return Err(IrError::Shape(format!("no tensor axis carries sym extent {value}")));
        }
        self.sym_dims.push(SymDim { name, table: table.clone(), value });
        self.sym_axes.extend(axes);
        self.sym_axes.sort_by_key(|a| (a.tensor, a.axis));
        self.validate_sym()?;
        Ok(self)
    }

    /// The symbolic dimensions bound in this graph (empty for the
    /// static zoo).
    pub fn sym_dims(&self) -> &[SymDim] {
        &self.sym_dims
    }

    /// The recorded symbolic axes, sorted by `(tensor, axis)`.
    pub fn sym_axes(&self) -> &[SymAxis] {
        &self.sym_axes
    }

    /// The tensor's dims with every symbolic axis raised to its bucket
    /// ceiling — identical to the logical dims for static graphs. The
    /// optimizer hashes and plans over these, which is what makes
    /// group-cache and LTE-memo entries bucket-invariant.
    pub fn padded_dims(&self, t: TensorId) -> Vec<usize> {
        let mut dims = self.tensor(t).shape.dims().to_vec();
        for a in &self.sym_axes {
            if a.tensor == t {
                dims[a.axis] = self.sym_dims[a.dim].padded();
            }
        }
        dims
    }

    /// 64-bit fingerprint of the bound buckets: 0 for static graphs,
    /// otherwise a nonzero hash of every `(name, bucket)` binding. The
    /// compile session keys artifacts by this — one artifact per
    /// bucket, shared group cache across them.
    pub fn sym_bucket(&self) -> u64 {
        if self.sym_dims.is_empty() {
            return 0;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for d in &self.sym_dims {
            d.name.hash(&mut h);
            d.bucket().hash(&mut h);
        }
        h.finish() | 1
    }

    /// An operator with `Reshape` target extents equal to a bound sym
    /// value raised to that dimension's ceiling (other operators carry
    /// no symbolic extents in their attributes). Identity for static
    /// graphs. The optimizer fingerprints canonical (bucket-invariant)
    /// index-map compositions by this, so two buckets of the same model
    /// hash the same `Reshape` the same way.
    pub fn padded_op(&self, op: &Op) -> Op {
        match op {
            Op::Reshape { shape } => Op::Reshape {
                shape: shape
                    .iter()
                    .map(|&e| match self.sym_dims.iter().find(|d| d.value == e) {
                        Some(d) => d.padded(),
                        None => e,
                    })
                    .collect(),
            },
            other => other.clone(),
        }
    }

    /// Proves the graph remains shape-consistent with every symbolic
    /// axis at its ceiling: re-runs shape inference over padded input
    /// dims and requires the results to equal the padded output dims.
    fn validate_sym(&self) -> Result<(), IrError> {
        for n in &self.nodes {
            let padded_in: Vec<Shape> =
                n.inputs.iter().map(|&t| Shape::new(self.padded_dims(t))).collect();
            let refs: Vec<&Shape> = padded_in.iter().collect();
            let got = infer_output_shapes(&self.padded_op(&n.op), &refs)?;
            for (&out, shape) in n.outputs.iter().zip(&got) {
                if shape.dims() != self.padded_dims(out).as_slice() {
                    return Err(IrError::Shape(format!(
                        "op {} is not symbolic-safe: padded inference gives {shape}, \
                         recorded axes give {:?}",
                        n.name,
                        self.padded_dims(out)
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates internal invariants (reference integrity, topological
    /// node order, producer/consumer symmetry).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant. Graphs built through
    /// [`GraphBuilder`] always validate.
    pub fn validate(&self) -> Result<(), IrError> {
        for n in &self.nodes {
            for &t in n.inputs.iter().chain(n.outputs.iter()) {
                if t.0 as usize >= self.tensors.len() {
                    return Err(IrError::UnknownTensor(t.0));
                }
            }
            // Topological order: every input tensor is produced by an
            // earlier node (or is a graph input / weight).
            for &t in &n.inputs {
                if let Some(p) = self.tensor(t).producer {
                    if p.0 >= n.id.0 {
                        return Err(IrError::Cyclic);
                    }
                }
            }
        }
        for (i, t) in self.tensors.iter().enumerate() {
            if let Some(p) = t.producer {
                let node = &self.nodes[p.0 as usize];
                if !node.outputs.contains(&TensorId(i as u32)) {
                    return Err(IrError::Shape(format!("tensor {i} producer mismatch")));
                }
            }
            for &c in &t.consumers {
                let node = &self.nodes[c.0 as usize];
                if !node.inputs.contains(&TensorId(i as u32)) {
                    return Err(IrError::Shape(format!("tensor {i} consumer mismatch")));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph {} ({} ops, {} tensors)",
            self.name,
            self.nodes.len(),
            self.tensors.len()
        )?;
        for n in &self.nodes {
            let outs: Vec<String> =
                n.outputs.iter().map(|&t| format!("%{}:{}", t.0, self.tensor(t).shape)).collect();
            let ins: Vec<String> = n.inputs.iter().map(|&t| format!("%{}", t.0)).collect();
            writeln!(f, "  {} = {}({})", outs.join(", "), n.op.mnemonic(), ins.join(", "))?;
        }
        Ok(())
    }
}

/// Infers the output shapes of `op` applied to operands with the given
/// shapes.
///
/// # Errors
///
/// Returns an [`IrError`] describing the first shape-compatibility
/// violation (reshape element count, broadcastability, axis ranges,
/// divisibility for block/split operators, …).
pub fn infer_output_shapes(op: &Op, inputs: &[&Shape]) -> Result<Vec<Shape>, IrError> {
    let one = |s: Shape| Ok(vec![s]);
    match op {
        Op::Conv2d { stride, padding, groups } => {
            let x = inputs[0];
            let w = inputs[1];
            if x.rank() != 4 || w.rank() != 4 {
                return Err(IrError::Shape(format!("conv2d needs rank-4 x/w, got {x} and {w}")));
            }
            if x.dim(1) != w.dim(1) * groups {
                return Err(IrError::Shape(format!(
                    "conv2d channel mismatch: x has {} channels, w expects {}x{} groups",
                    x.dim(1),
                    w.dim(1),
                    groups
                )));
            }
            if w.dim(0) % groups != 0 {
                return Err(IrError::Shape(
                    "conv2d output channels not divisible by groups".into(),
                ));
            }
            let hout = (x.dim(2) + 2 * padding.0).checked_sub(w.dim(2)).map(|v| v / stride.0 + 1);
            let wout = (x.dim(3) + 2 * padding.1).checked_sub(w.dim(3)).map(|v| v / stride.1 + 1);
            match (hout, wout) {
                (Some(h), Some(wd)) => one(Shape::new(vec![x.dim(0), w.dim(0), h, wd])),
                _ => Err(IrError::Shape("conv2d kernel larger than padded input".into())),
            }
        }
        Op::MatMul { trans_a, trans_b } => {
            let a = inputs[0];
            let b = inputs[1];
            if a.rank() < 2 || b.rank() < 2 {
                return Err(IrError::Shape("matmul operands need rank >= 2".into()));
            }
            let (m, ka) = if *trans_a {
                (a.dim(a.rank() - 1), a.dim(a.rank() - 2))
            } else {
                (a.dim(a.rank() - 2), a.dim(a.rank() - 1))
            };
            let (kb, n) = if *trans_b {
                (b.dim(b.rank() - 1), b.dim(b.rank() - 2))
            } else {
                (b.dim(b.rank() - 2), b.dim(b.rank() - 1))
            };
            if ka != kb {
                return Err(IrError::Shape(format!("matmul K mismatch: {ka} vs {kb}")));
            }
            let abatch = Shape::new(a.dims()[..a.rank() - 2].to_vec());
            let bbatch = Shape::new(b.dims()[..b.rank() - 2].to_vec());
            let batch = abatch.broadcast(&bbatch).ok_or_else(|| IrError::BroadcastMismatch {
                lhs: abatch.to_string(),
                rhs: bbatch.to_string(),
            })?;
            let mut dims = batch.dims().to_vec();
            dims.push(m);
            dims.push(n);
            one(Shape::new(dims))
        }
        Op::LayerNorm { axes } => {
            let x = inputs[0];
            for &a in axes {
                if a >= x.rank() {
                    return Err(IrError::AxisOutOfRange { axis: a, rank: x.rank() });
                }
            }
            one(x.clone())
        }
        Op::InstanceNorm => {
            let x = inputs[0];
            if x.rank() != 4 {
                return Err(IrError::Shape("instance norm expects rank-4 input".into()));
            }
            one(x.clone())
        }
        Op::Softmax { axis } => {
            let x = inputs[0];
            if *axis >= x.rank() {
                return Err(IrError::AxisOutOfRange { axis: *axis, rank: x.rank() });
            }
            one(x.clone())
        }
        Op::Reduce { axes, keep_dims, .. } => {
            let x = inputs[0];
            for &a in axes {
                if a >= x.rank() {
                    return Err(IrError::AxisOutOfRange { axis: a, rank: x.rank() });
                }
            }
            let mut dims = Vec::new();
            for (i, &d) in x.dims().iter().enumerate() {
                if axes.contains(&i) {
                    if *keep_dims {
                        dims.push(1);
                    }
                } else {
                    dims.push(d);
                }
            }
            one(Shape::new(dims))
        }
        Op::Pool2d { kernel, stride, padding, .. } => {
            let x = inputs[0];
            if x.rank() != 4 {
                return Err(IrError::Shape("pool2d expects rank-4 input".into()));
            }
            let h = (x.dim(2) + 2 * padding.0)
                .checked_sub(kernel.0)
                .ok_or_else(|| IrError::Shape("pool kernel larger than input".into()))?
                / stride.0
                + 1;
            let w = (x.dim(3) + 2 * padding.1)
                .checked_sub(kernel.1)
                .ok_or_else(|| IrError::Shape("pool kernel larger than input".into()))?
                / stride.1
                + 1;
            one(Shape::new(vec![x.dim(0), x.dim(1), h, w]))
        }
        Op::Unary { .. } => one(inputs[0].clone()),
        Op::Binary { .. } => {
            let a = inputs[0];
            let b = inputs[1];
            let out = a.broadcast(b).ok_or_else(|| IrError::BroadcastMismatch {
                lhs: a.to_string(),
                rhs: b.to_string(),
            })?;
            one(out)
        }
        Op::Concat { axis } => {
            let first = inputs[0];
            if *axis >= first.rank() {
                return Err(IrError::AxisOutOfRange { axis: *axis, rank: first.rank() });
            }
            let mut total = 0;
            for s in inputs {
                if s.rank() != first.rank() {
                    return Err(IrError::Shape("concat rank mismatch".into()));
                }
                for i in 0..s.rank() {
                    if i != *axis && s.dim(i) != first.dim(i) {
                        return Err(IrError::Shape(format!(
                            "concat non-axis dim mismatch at {i}: {} vs {}",
                            s.dim(i),
                            first.dim(i)
                        )));
                    }
                }
                total += s.dim(*axis);
            }
            let mut dims = first.dims().to_vec();
            dims[*axis] = total;
            one(Shape::new(dims))
        }
        Op::Reshape { shape } => {
            let x = inputs[0];
            let target = Shape::new(shape.clone());
            if !x.same_numel(&target) {
                return Err(IrError::ReshapeNumelMismatch { from: x.numel(), to: target.numel() });
            }
            one(target)
        }
        Op::Transpose { perm } => {
            let x = inputs[0];
            if !crate::ops::is_permutation(perm, x.rank()) {
                return Err(IrError::InvalidPermutation { perm: perm.clone(), rank: x.rank() });
            }
            one(x.permute(perm))
        }
        Op::DepthToSpace { block } => {
            let x = inputs[0];
            if x.rank() != 4 {
                return Err(IrError::Shape("depth_to_space expects rank-4 input".into()));
            }
            let b2 = block * block;
            if x.dim(1) % b2 != 0 {
                return Err(IrError::Shape(format!(
                    "channels {} not divisible by block^2 {b2}",
                    x.dim(1)
                )));
            }
            one(Shape::new(vec![x.dim(0), x.dim(1) / b2, x.dim(2) * block, x.dim(3) * block]))
        }
        Op::SpaceToDepth { block } => {
            let x = inputs[0];
            if x.rank() != 4 {
                return Err(IrError::Shape("space_to_depth expects rank-4 input".into()));
            }
            if x.dim(2) % block != 0 || x.dim(3) % block != 0 {
                return Err(IrError::Shape("spatial dims not divisible by block".into()));
            }
            one(Shape::new(vec![
                x.dim(0),
                x.dim(1) * block * block,
                x.dim(2) / block,
                x.dim(3) / block,
            ]))
        }
        Op::Gather { axis } => {
            let data = inputs[0];
            let idx = inputs[1];
            if *axis >= data.rank() {
                return Err(IrError::AxisOutOfRange { axis: *axis, rank: data.rank() });
            }
            let mut dims = data.dims()[..*axis].to_vec();
            dims.extend_from_slice(idx.dims());
            dims.extend_from_slice(&data.dims()[*axis + 1..]);
            one(Shape::new(dims))
        }
        Op::Slice { axis, start, len } => {
            let x = inputs[0];
            if *axis >= x.rank() {
                return Err(IrError::AxisOutOfRange { axis: *axis, rank: x.rank() });
            }
            if start + len > x.dim(*axis) {
                return Err(IrError::Shape(format!(
                    "slice {start}+{len} exceeds extent {}",
                    x.dim(*axis)
                )));
            }
            let mut dims = x.dims().to_vec();
            dims[*axis] = *len;
            one(Shape::new(dims))
        }
        Op::Split { axis, parts } => {
            let x = inputs[0];
            if *axis >= x.rank() {
                return Err(IrError::AxisOutOfRange { axis: *axis, rank: x.rank() });
            }
            if *parts == 0 || x.dim(*axis) % parts != 0 {
                return Err(IrError::Shape(format!(
                    "split extent {} not divisible into {parts} parts",
                    x.dim(*axis)
                )));
            }
            let mut dims = x.dims().to_vec();
            dims[*axis] /= parts;
            Ok(vec![Shape::new(dims); *parts])
        }
    }
}

/// Incremental builder for [`Graph`].
///
/// All operator methods perform shape inference and panic on shape
/// errors (a shape error in a programmatic model definition is a bug,
/// not a runtime condition); the fallible [`GraphBuilder::try_push`] is
/// available where errors must be handled.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    origin: OpOrigin,
}

impl GraphBuilder {
    /// Creates an empty builder for a graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph { name: name.into(), ..Graph::default() },
            origin: OpOrigin::Model,
        }
    }

    /// Sets the origin recorded on subsequently added operators
    /// (framework pipelines switch this to [`OpOrigin::Framework`] before
    /// inserting relayout operators).
    pub fn set_origin(&mut self, origin: OpOrigin) -> &mut Self {
        self.origin = origin;
        self
    }

    fn add_tensor(
        &mut self,
        name: String,
        shape: Shape,
        dtype: DType,
        kind: TensorKind,
    ) -> TensorId {
        let id = TensorId(self.graph.tensors.len() as u32);
        self.graph.tensors.push(TensorInfo {
            name,
            shape,
            dtype,
            kind,
            producer: None,
            consumers: Vec::new(),
            init: None,
        });
        id
    }

    /// Declares a runtime input tensor.
    pub fn input(&mut self, name: impl Into<String>, dims: &[usize], dtype: DType) -> TensorId {
        let id = self.add_tensor(name.into(), Shape::new(dims.to_vec()), dtype, TensorKind::Input);
        self.graph.inputs.push(id);
        id
    }

    /// Declares a weight (trained parameter) tensor.
    pub fn weight(&mut self, name: impl Into<String>, dims: &[usize], dtype: DType) -> TensorId {
        self.add_tensor(name.into(), Shape::new(dims.to_vec()), dtype, TensorKind::Weight)
    }

    /// Declares a weight tensor carrying initializer values (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `init.len()` does not match the element count.
    pub fn weight_init(
        &mut self,
        name: impl Into<String>,
        dims: &[usize],
        dtype: DType,
        init: Vec<f32>,
    ) -> TensorId {
        let shape = Shape::new(dims.to_vec());
        assert_eq!(
            init.len() as u64,
            shape.numel(),
            "initializer length does not match shape {shape}"
        );
        let id = self.add_tensor(name.into(), shape, dtype, TensorKind::Weight);
        self.graph.tensors[id.0 as usize].init = Some(init);
        id
    }

    /// Shape of an already-declared tensor (used by graph generators and
    /// rewriters that steer construction by intermediate shapes).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn shape_of(&self, t: TensorId) -> &Shape {
        &self.graph.tensors[t.0 as usize].shape
    }

    /// Element type of an already-declared tensor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn dtype_of(&self, t: TensorId) -> DType {
        self.graph.tensors[t.0 as usize].dtype
    }

    /// Nodes pushed so far, in topological order (graph generators use
    /// this to duplicate existing ops verbatim).
    pub fn nodes_so_far(&self) -> &[Node] {
        &self.graph.nodes
    }

    /// Renames an already-declared tensor. The importer uses this to give
    /// operator outputs their declared names (auto-generated names would
    /// not survive an export/import round trip). Callers are responsible
    /// for keeping names unique within the graph.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_tensor_name(&mut self, t: TensorId, name: impl Into<String>) {
        self.graph.tensors[t.0 as usize].name = name.into();
    }

    /// Adds an operator node, inferring output shapes.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures ([`IrError`]).
    pub fn try_push(&mut self, op: Op, inputs: &[TensorId]) -> Result<Vec<TensorId>, IrError> {
        for &t in inputs {
            if t.0 as usize >= self.graph.tensors.len() {
                return Err(IrError::UnknownTensor(t.0));
            }
        }
        let shapes: Vec<&Shape> =
            inputs.iter().map(|&t| &self.graph.tensors[t.0 as usize].shape).collect();
        let out_shapes = infer_output_shapes(&op, &shapes)?;
        let dtype = self.graph.tensors[inputs[0].0 as usize].dtype;
        let id = OpId(self.graph.nodes.len() as u32);
        let name = format!("{}_{}", op.mnemonic().to_lowercase(), id.0);
        let mut outputs = Vec::with_capacity(out_shapes.len());
        for (i, s) in out_shapes.into_iter().enumerate() {
            let tname = if i == 0 { format!("{name}_out") } else { format!("{name}_out{i}") };
            let t = self.add_tensor(tname, s, dtype, TensorKind::Activation);
            self.graph.tensors[t.0 as usize].producer = Some(id);
            outputs.push(t);
        }
        for &t in inputs {
            self.graph.tensors[t.0 as usize].consumers.push(id);
        }
        self.graph.nodes.push(Node {
            id,
            op,
            inputs: inputs.to_vec(),
            outputs: outputs.clone(),
            name,
            origin: self.origin,
        });
        Ok(outputs)
    }

    fn push1(&mut self, op: Op, inputs: &[TensorId]) -> TensorId {
        match self.try_push(op, inputs) {
            Ok(outs) => outs[0],
            Err(e) => panic!("graph construction error in {}: {e}", self.graph.name),
        }
    }

    /// 2-D convolution (no bias).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (see [`infer_output_shapes`]).
    pub fn conv2d(
        &mut self,
        x: TensorId,
        w: TensorId,
        stride: (usize, usize),
        padding: (usize, usize),
        groups: usize,
    ) -> TensorId {
        self.push1(Op::Conv2d { stride, padding, groups }, &[x, w])
    }

    /// Batched matrix multiplication.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.push1(Op::MatMul { trans_a: false, trans_b: false }, &[a, b])
    }

    /// Matrix multiplication with transpose flags.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_t(&mut self, a: TensorId, b: TensorId, trans_a: bool, trans_b: bool) -> TensorId {
        self.push1(Op::MatMul { trans_a, trans_b }, &[a, b])
    }

    /// Layer normalization over `axes`.
    ///
    /// # Panics
    ///
    /// Panics if an axis is out of range.
    pub fn layer_norm(&mut self, x: TensorId, axes: Vec<usize>) -> TensorId {
        self.push1(Op::LayerNorm { axes }, &[x])
    }

    /// Instance normalization.
    ///
    /// # Panics
    ///
    /// Panics unless the input is rank 4.
    pub fn instance_norm(&mut self, x: TensorId) -> TensorId {
        self.push1(Op::InstanceNorm, &[x])
    }

    /// Softmax along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is out of range.
    pub fn softmax(&mut self, x: TensorId, axis: usize) -> TensorId {
        self.push1(Op::Softmax { axis }, &[x])
    }

    /// Reduction over `axes`.
    ///
    /// # Panics
    ///
    /// Panics if an axis is out of range.
    pub fn reduce(
        &mut self,
        x: TensorId,
        kind: ReduceKind,
        axes: Vec<usize>,
        keep_dims: bool,
    ) -> TensorId {
        self.push1(Op::Reduce { kind, axes, keep_dims }, &[x])
    }

    /// 2-D pooling.
    ///
    /// # Panics
    ///
    /// Panics on invalid spatial arithmetic.
    pub fn pool2d(
        &mut self,
        x: TensorId,
        kind: PoolKind,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> TensorId {
        self.push1(Op::Pool2d { kind, kernel, stride, padding }, &[x])
    }

    /// Element-wise unary function.
    pub fn unary(&mut self, x: TensorId, kind: UnaryKind) -> TensorId {
        self.push1(Op::Unary { kind }, &[x])
    }

    /// Element-wise binary function with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if shapes cannot broadcast.
    pub fn binary(&mut self, a: TensorId, b: TensorId, kind: BinaryKind) -> TensorId {
        self.push1(Op::Binary { kind }, &[a, b])
    }

    /// Convenience for [`BinaryKind::Add`].
    ///
    /// # Panics
    ///
    /// Panics if shapes cannot broadcast.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.binary(a, b, BinaryKind::Add)
    }

    /// Convenience for [`BinaryKind::Mul`].
    ///
    /// # Panics
    ///
    /// Panics if shapes cannot broadcast.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.binary(a, b, BinaryKind::Mul)
    }

    /// Concatenation along `axis`.
    ///
    /// # Panics
    ///
    /// Panics on rank or non-axis extent mismatch.
    pub fn concat(&mut self, xs: &[TensorId], axis: usize) -> TensorId {
        self.push1(Op::Concat { axis }, xs)
    }

    /// Shape reinterpretation.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, x: TensorId, shape: &[usize]) -> TensorId {
        self.push1(Op::Reshape { shape: shape.to_vec() }, &[x])
    }

    /// Dimension permutation.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a valid permutation.
    pub fn transpose(&mut self, x: TensorId, perm: &[usize]) -> TensorId {
        self.push1(Op::Transpose { perm: perm.to_vec() }, &[x])
    }

    /// Depth-to-space rearrangement.
    ///
    /// # Panics
    ///
    /// Panics if channels are not divisible by `block²`.
    pub fn depth_to_space(&mut self, x: TensorId, block: usize) -> TensorId {
        self.push1(Op::DepthToSpace { block }, &[x])
    }

    /// Space-to-depth rearrangement.
    ///
    /// # Panics
    ///
    /// Panics if spatial dims are not divisible by `block`.
    pub fn space_to_depth(&mut self, x: TensorId, block: usize) -> TensorId {
        self.push1(Op::SpaceToDepth { block }, &[x])
    }

    /// Index lookup along `axis` of `data` with `indices`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is out of range.
    pub fn gather(&mut self, data: TensorId, indices: TensorId, axis: usize) -> TensorId {
        self.push1(Op::Gather { axis }, &[data, indices])
    }

    /// Contiguous sub-range along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds the axis extent.
    pub fn slice(&mut self, x: TensorId, axis: usize, start: usize, len: usize) -> TensorId {
        self.push1(Op::Slice { axis, start, len }, &[x])
    }

    /// Even split along `axis` into `parts` tensors.
    ///
    /// # Panics
    ///
    /// Panics if the extent is not divisible by `parts`.
    pub fn split(&mut self, x: TensorId, axis: usize, parts: usize) -> Vec<TensorId> {
        match self.try_push(Op::Split { axis, parts }, &[x]) {
            Ok(outs) => outs,
            Err(e) => panic!("graph construction error in {}: {e}", self.graph.name),
        }
    }

    /// Marks a tensor as a graph output.
    pub fn output(&mut self, t: TensorId) -> &mut Self {
        self.graph.outputs.push(t);
        self
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if validation fails (cannot happen for builder-constructed
    /// graphs; kept as a defence-in-depth check).
    pub fn finish(self) -> Graph {
        self.graph.validate().expect("builder produced an invalid graph");
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_graph() -> Graph {
        let mut b = GraphBuilder::new("mini");
        let x = b.input("x", &[1, 16, 8, 8], DType::F16);
        let w = b.weight("w", &[32, 16, 3, 3], DType::F16);
        let c = b.conv2d(x, w, (1, 1), (1, 1), 1);
        let r = b.unary(c, UnaryKind::Relu);
        let flat = b.reshape(r, &[1, 32, 64]);
        let t = b.transpose(flat, &[0, 2, 1]);
        b.output(t);
        b.finish()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let g = mini_graph();
        assert_eq!(g.op_count(), 4);
        assert!(g.validate().is_ok());
        assert_eq!(g.layout_transform_count(), 2);
        assert_eq!(g.param_count(), 32 * 16 * 9);
    }

    #[test]
    fn conv_shape_inference() {
        let g = mini_graph();
        let conv_out = g.node(OpId(0)).outputs[0];
        assert_eq!(g.tensor(conv_out).shape.dims(), &[1, 32, 8, 8]);
    }

    #[test]
    fn producer_consumer_links() {
        let g = mini_graph();
        let conv_out = g.node(OpId(0)).outputs[0];
        assert_eq!(g.producer(conv_out), Some(OpId(0)));
        assert_eq!(g.consumers(conv_out), &[OpId(1)]);
    }

    #[test]
    fn edges_iterate_producer_consumer_pairs() {
        let g = mini_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3); // conv->relu, relu->reshape, reshape->transpose
    }

    #[test]
    fn macs_accumulate() {
        let g = mini_graph();
        // conv: 1*32*8*8*16*9
        assert_eq!(g.total_macs(), 32 * 8 * 8 * 16 * 9);
    }

    #[test]
    fn reshape_rejects_numel_change() {
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", &[4, 4], DType::F16);
        let err = b.try_push(Op::Reshape { shape: vec![5, 5] }, &[x]).unwrap_err();
        assert!(matches!(err, IrError::ReshapeNumelMismatch { from: 16, to: 25 }));
    }

    #[test]
    fn matmul_infers_broadcast_batch() {
        let mut b = GraphBuilder::new("mm");
        let a = b.input("a", &[8, 1, 64, 32], DType::F16);
        let c = b.input("c", &[4, 32, 16], DType::F16);
        let out = b.matmul(a, c);
        assert_eq!(b.graph.tensors[out.0 as usize].shape.dims(), &[8, 4, 64, 16]);
    }

    #[test]
    fn matmul_transpose_flags() {
        let mut b = GraphBuilder::new("mmt");
        let a = b.input("a", &[32, 64], DType::F16); // K x M
        let c = b.input("c", &[16, 32], DType::F16); // N x K
        let out = b.matmul_t(a, c, true, true);
        assert_eq!(b.graph.tensors[out.0 as usize].shape.dims(), &[64, 16]);
    }

    #[test]
    fn split_produces_parts() {
        let mut b = GraphBuilder::new("split");
        let x = b.input("x", &[2, 12, 7], DType::F16);
        let parts = b.split(x, 1, 3);
        assert_eq!(parts.len(), 3);
        for p in parts {
            assert_eq!(b.graph.tensors[p.0 as usize].shape.dims(), &[2, 4, 7]);
        }
    }

    #[test]
    fn gather_inserts_index_shape() {
        let mut b = GraphBuilder::new("gather");
        let data = b.input("d", &[100, 64], DType::F16);
        let idx = b.input("i", &[2, 5], DType::I32);
        let out = b.gather(data, idx, 0);
        assert_eq!(b.graph.tensors[out.0 as usize].shape.dims(), &[2, 5, 64]);
    }

    #[test]
    fn depth_space_roundtrip() {
        let mut b = GraphBuilder::new("ds");
        let x = b.input("x", &[1, 16, 4, 4], DType::F16);
        let d = b.depth_to_space(x, 2);
        let s = b.space_to_depth(d, 2);
        assert_eq!(b.graph.tensors[d.0 as usize].shape.dims(), &[1, 4, 8, 8]);
        assert_eq!(b.graph.tensors[s.0 as usize].shape.dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn slice_bounds_checked() {
        let mut b = GraphBuilder::new("slice");
        let x = b.input("x", &[10, 3], DType::F16);
        assert!(b.try_push(Op::Slice { axis: 0, start: 8, len: 4 }, &[x]).is_err());
        let ok = b.slice(x, 0, 2, 5);
        assert_eq!(b.graph.tensors[ok.0 as usize].shape.dims(), &[5, 3]);
    }

    #[test]
    fn origin_tagging() {
        let mut b = GraphBuilder::new("origin");
        let x = b.input("x", &[4, 4], DType::F16);
        let y = b.unary(x, UnaryKind::Relu);
        b.set_origin(OpOrigin::Framework);
        let z = b.transpose(y, &[1, 0]);
        b.output(z);
        let g = b.finish();
        assert_eq!(g.node(OpId(0)).origin, OpOrigin::Model);
        assert_eq!(g.node(OpId(1)).origin, OpOrigin::Framework);
    }

    #[test]
    fn concat_validates_and_sums_axis() {
        let mut b = GraphBuilder::new("cat");
        let x = b.input("x", &[2, 3], DType::F16);
        let y = b.input("y", &[2, 5], DType::F16);
        let c = b.concat(&[x, y], 1);
        assert_eq!(b.graph.tensors[c.0 as usize].shape.dims(), &[2, 8]);
        let z = b.input("z", &[3, 3], DType::F16);
        assert!(b.try_push(Op::Concat { axis: 1 }, &[x, z]).is_err());
    }

    #[test]
    fn display_renders() {
        let g = mini_graph();
        let text = g.to_string();
        assert!(text.contains("Conv2d"));
        assert!(text.contains("Transpose"));
    }

    /// A tiny decoder-shaped graph: seq flows through a reshape that
    /// splits heads, a transpose, attention-like matmuls and a softmax.
    fn sym_graph(seq: usize) -> Graph {
        let mut b = GraphBuilder::new("sym");
        let x = b.input("x", &[1, seq, 24], DType::F16);
        let w = b.weight("w", &[24, 24], DType::F16);
        let h = b.matmul(x, w);
        let hh = b.reshape(h, &[1, seq, 4, 6]);
        let ht = b.transpose(hh, &[0, 2, 1, 3]);
        let scores = b.matmul_t(ht, ht, false, true);
        let sm = b.softmax(scores, 3);
        let ctx = b.matmul(sm, ht);
        b.output(ctx);
        b.finish()
    }

    #[test]
    fn with_sym_dim_records_axes_and_validates() {
        let table = crate::sym::BucketTable::new(vec![32, 64, 128]).unwrap();
        let g = sym_graph(48).with_sym_dim("seq", &table, 48).unwrap();
        assert_eq!(g.sym_dims().len(), 1);
        assert_eq!(g.sym_dims()[0].bucket(), 64);
        assert!(!g.sym_axes().is_empty());
        // The input's seq axis pads to the ceiling; static axes don't.
        let x = g.inputs()[0];
        assert_eq!(g.padded_dims(x), vec![1, 128, 24]);
        assert_ne!(g.sym_bucket(), 0);
    }

    #[test]
    fn padded_dims_share_across_buckets() {
        let table = crate::sym::BucketTable::new(vec![32, 64, 128]).unwrap();
        let a = sym_graph(48).with_sym_dim("seq", &table, 48).unwrap();
        let b = sym_graph(96).with_sym_dim("seq", &table, 96).unwrap();
        assert_eq!(a.tensors().len(), b.tensors().len());
        for i in 0..a.tensors().len() {
            let t = TensorId(i as u32);
            assert_eq!(a.padded_dims(t), b.padded_dims(t), "padded dims are bucket-invariant");
        }
        assert_ne!(a.sym_bucket(), b.sym_bucket(), "different buckets key different artifacts");
    }

    #[test]
    fn sym_rejects_unsafe_ops_and_bad_values() {
        let table = crate::sym::BucketTable::new(vec![32, 64]).unwrap();
        // Slicing the symbolic axis consumes the extent: rejected.
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", &[1, 48, 8], DType::F16);
        let s = b.slice(x, 1, 0, 48);
        b.output(s);
        assert!(b.finish().with_sym_dim("seq", &table, 48).is_err());
        // Out-of-range and unmatched values are rejected up front.
        assert!(sym_graph(48).with_sym_dim("seq", &table, 65).is_err());
        assert!(sym_graph(48).with_sym_dim("seq", &table, 0).is_err());
        assert!(sym_graph(48).with_sym_dim("seq", &table, 47).is_err());
        // Duplicate binding names are rejected.
        let g = sym_graph(48).with_sym_dim("seq", &table, 48).unwrap();
        assert!(g.with_sym_dim("seq", &table, 24).is_err());
    }

    #[test]
    fn static_debug_rendering_unchanged_by_sym_fields() {
        // The session fingerprints graphs by Debug rendering; static
        // graphs must render without any sym fields.
        let text = format!("{:?}", mini_graph());
        assert!(!text.contains("sym_dims"));
        let table = crate::sym::BucketTable::new(vec![64]).unwrap();
        let sym = sym_graph(64).with_sym_dim("seq", &table, 64).unwrap();
        assert!(format!("{sym:?}").contains("sym_dims"));
    }
}
