//! Operator definitions.
//!
//! The operator set covers everything needed to express the 20 models of
//! the paper's evaluation (Tables 1 and 7) from primitives, including the
//! explicit layout-transformation operators (`Reshape`, `Transpose`, …)
//! that SmartMem eliminates.

use crate::shape::Shape;

/// Element-wise unary function kinds ("Unary" row of Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryKind {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (Transformer MLPs).
    Gelu,
    /// Sigmoid-weighted linear unit (YOLO, ConvNext variants).
    Silu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential (softmax building block).
    Exp,
    /// Square root.
    Sqrt,
    /// Reciprocal.
    Recip,
    /// Negation.
    Neg,
    /// Identity / copy (used for framework-inserted relayout stubs).
    Identity,
}

/// Element-wise binary function kinds (broadcast semantics like `Add` in
/// Table 3; Fig. 4 notes "Add broadcasts its input shapes to match the
/// shape of the largest one").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinaryKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (Hadamard).
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
}

/// Reduction kinds for [`Op::Reduce`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReduceKind {
    /// Sum over the reduction axes.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Pooling kinds for [`Op::Pool2d`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// A DNN operator.
///
/// Attribute-only representation: operand tensors live on the graph
/// ([`crate::Node::inputs`]), so `Op` values are cheap to clone and
/// compare.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// 2-D convolution. Inputs: `x [N, C, H, W]`, `w [O, C/groups, KH, KW]`,
    /// optional bias `[O]`. Output: `[N, O, H', W']`.
    Conv2d {
        /// Spatial stride `(sh, sw)`.
        stride: (usize, usize),
        /// Zero padding `(ph, pw)` applied on both sides.
        padding: (usize, usize),
        /// Channel groups (`groups == C` gives depthwise convolution).
        groups: usize,
    },
    /// (Batched) matrix multiplication. Inputs `[.., M, K]` and
    /// `[.., K, N]` (modulo the transpose flags); output `[.., M, N]`.
    MatMul {
        /// Interpret the first operand as transposed (`[.., K, M]`).
        trans_a: bool,
        /// Interpret the second operand as transposed (`[.., N, K]`).
        trans_b: bool,
    },
    /// Layer normalization over the trailing `axes` (Transformer norm).
    LayerNorm {
        /// Axes (logical dims) that are normalized over.
        axes: Vec<usize>,
    },
    /// Instance normalization over spatial dims of `[N, C, H, W]`.
    InstanceNorm,
    /// Softmax along `axis`.
    Softmax {
        /// The normalized axis.
        axis: usize,
    },
    /// Reduction over `axes`.
    Reduce {
        /// What to compute.
        kind: ReduceKind,
        /// Axes reduced over.
        axes: Vec<usize>,
        /// Whether reduced axes are kept with extent 1.
        keep_dims: bool,
    },
    /// 2-D spatial pooling on `[N, C, H, W]`.
    Pool2d {
        /// Max or average.
        kind: PoolKind,
        /// Kernel size `(kh, kw)`.
        kernel: (usize, usize),
        /// Stride `(sh, sw)`.
        stride: (usize, usize),
        /// Padding `(ph, pw)`.
        padding: (usize, usize),
    },
    /// Element-wise unary function.
    Unary {
        /// The function.
        kind: UnaryKind,
    },
    /// Element-wise binary function with broadcasting.
    Binary {
        /// The function.
        kind: BinaryKind,
    },
    /// Concatenation along `axis`.
    Concat {
        /// Concatenated axis.
        axis: usize,
    },
    /// Shape reinterpretation (element order preserved). ILD & Fixed.
    Reshape {
        /// Target shape.
        shape: Vec<usize>,
    },
    /// Dimension permutation. ILD & Fixed.
    Transpose {
        /// `out[i0,..] = in[perm[0]-th coord, ..]`; `perm[i]` is the input
        /// dim that becomes output dim `i`.
        perm: Vec<usize>,
    },
    /// Rearranges channel blocks into spatial blocks (`block²·C' = C`).
    /// ILD & Fixed.
    DepthToSpace {
        /// Spatial block size.
        block: usize,
    },
    /// Rearranges spatial blocks into channels. ILD & Fixed.
    SpaceToDepth {
        /// Spatial block size.
        block: usize,
    },
    /// Index lookup along `axis`. Inputs: data, indices. ILI & Fixed.
    Gather {
        /// Gathered axis.
        axis: usize,
    },
    /// Contiguous sub-range selection along one axis. ILI & Fixed.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// First kept index.
        start: usize,
        /// Number of kept indices.
        len: usize,
    },
    /// Even split along one axis into `parts` outputs. ILI & Fixed.
    Split {
        /// Split axis.
        axis: usize,
        /// Number of equal parts.
        parts: usize,
    },
}

/// Broad operator category used for reporting and latency attribution
/// (Table 1 separates layout-transformation time from computation time).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpCategory {
    /// Real computation (convolutions, matmuls, norms, element-wise, …).
    Compute,
    /// Pure layout transformation (`Reshape`, `Transpose`, `DepthToSpace`,
    /// `SpaceToDepth`): moves/reinterprets data without computing.
    LayoutTransform,
    /// Data selection / movement (`Gather`, `Slice`, `Split`, `Concat`).
    DataMovement,
}

impl Op {
    /// Short operator mnemonic (stable across the workspace; used in
    /// reports and tests).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Conv2d { .. } => "Conv2d",
            Op::MatMul { .. } => "MatMul",
            Op::LayerNorm { .. } => "LayerNorm",
            Op::InstanceNorm => "InstanceNorm",
            Op::Softmax { .. } => "Softmax",
            Op::Reduce { .. } => "Reduce",
            Op::Pool2d { .. } => "Pool2d",
            Op::Unary { .. } => "Unary",
            Op::Binary { .. } => "Binary",
            Op::Concat { .. } => "Concat",
            Op::Reshape { .. } => "Reshape",
            Op::Transpose { .. } => "Transpose",
            Op::DepthToSpace { .. } => "DepthToSpace",
            Op::SpaceToDepth { .. } => "SpaceToDepth",
            Op::Gather { .. } => "Gather",
            Op::Slice { .. } => "Slice",
            Op::Split { .. } => "Split",
        }
    }

    /// The broad category of the operator.
    pub fn category(&self) -> OpCategory {
        match self {
            Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::DepthToSpace { .. }
            | Op::SpaceToDepth { .. } => OpCategory::LayoutTransform,
            Op::Gather { .. } | Op::Slice { .. } | Op::Split { .. } | Op::Concat { .. } => {
                OpCategory::DataMovement
            }
            _ => OpCategory::Compute,
        }
    }

    /// Whether this is a pure layout transformation (the operators that
    /// SmartMem's LTE pass targets for elimination).
    pub fn is_layout_transform(&self) -> bool {
        self.category() == OpCategory::LayoutTransform
    }

    /// Multiply-accumulate count given operand/result shapes
    /// (`input_shapes` in operand order, `output_shape` of the first
    /// output). Only compute-dense operators contribute MACs — this
    /// matches how the paper reports `#MACs (G)` per model.
    pub fn mac_count(&self, input_shapes: &[&Shape], output_shape: &Shape) -> u64 {
        match self {
            Op::Conv2d { groups, .. } => {
                // N * O * H' * W' * (C/g) * KH * KW
                let w = input_shapes[1];
                let cpg = w.dim(1) as u64; // already C/groups
                let khw = (w.dim(2) * w.dim(3)) as u64;
                let _ = groups;
                output_shape.numel() * cpg * khw
            }
            Op::MatMul { trans_a, .. } => {
                let a = input_shapes[0];
                let k = if *trans_a { a.dim(a.rank() - 2) } else { a.dim(a.rank() - 1) } as u64;
                output_shape.numel() * k
            }
            // Norms and reductions do O(numel) multiply-adds; the paper's
            // MAC figures are dominated by Conv/MatMul so we count these
            // at one MAC per element.
            Op::LayerNorm { .. } | Op::InstanceNorm | Op::Softmax { .. } | Op::Reduce { .. } => {
                input_shapes[0].numel()
            }
            Op::Pool2d { kernel, .. } => output_shape.numel() * (kernel.0 * kernel.1) as u64,
            // Element-wise, movement and layout ops perform no MACs.
            _ => 0,
        }
    }

    /// Arithmetic operations per output element (used by the cost model
    /// for low-intensity operators).
    pub fn ops_per_element(&self) -> f64 {
        match self {
            Op::Unary { kind } => match kind {
                UnaryKind::Relu | UnaryKind::Neg | UnaryKind::Identity => 1.0,
                UnaryKind::Sigmoid | UnaryKind::Exp | UnaryKind::Sqrt | UnaryKind::Recip => 4.0,
                UnaryKind::Gelu | UnaryKind::Silu | UnaryKind::Tanh => 8.0,
            },
            Op::Binary { .. } => 1.0,
            Op::LayerNorm { .. } | Op::InstanceNorm => 6.0,
            Op::Softmax { .. } => 8.0,
            _ => 1.0,
        }
    }
}

/// Checks that `perm` is a bijection over `0..rank`.
pub(crate) fn is_permutation(perm: &[usize], rank: usize) -> bool {
    if perm.len() != rank {
        return false;
    }
    let mut seen = vec![false; rank];
    for &p in perm {
        if p >= rank || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(Op::Reshape { shape: vec![4] }.category(), OpCategory::LayoutTransform);
        assert_eq!(Op::Transpose { perm: vec![1, 0] }.category(), OpCategory::LayoutTransform);
        assert_eq!(Op::Gather { axis: 0 }.category(), OpCategory::DataMovement);
        assert_eq!(
            Op::Conv2d { stride: (1, 1), padding: (0, 0), groups: 1 }.category(),
            OpCategory::Compute
        );
    }

    #[test]
    fn conv_macs() {
        // 1x64x56x56 conv 3x3 -> 128 channels, stride 1, pad 1
        let x = Shape::new(vec![1, 64, 56, 56]);
        let w = Shape::new(vec![128, 64, 3, 3]);
        let out = Shape::new(vec![1, 128, 56, 56]);
        let op = Op::Conv2d { stride: (1, 1), padding: (1, 1), groups: 1 };
        let macs = op.mac_count(&[&x, &w], &out);
        assert_eq!(macs, 128 * 56 * 56 * 64 * 9);
    }

    #[test]
    fn grouped_conv_macs_scale_down() {
        let x = Shape::new(vec![1, 64, 56, 56]);
        let w_full = Shape::new(vec![64, 64, 3, 3]);
        let w_grouped = Shape::new(vec![64, 16, 3, 3]); // groups = 4
        let out = Shape::new(vec![1, 64, 56, 56]);
        let full = Op::Conv2d { stride: (1, 1), padding: (1, 1), groups: 1 };
        let grouped = Op::Conv2d { stride: (1, 1), padding: (1, 1), groups: 4 };
        assert_eq!(
            grouped.mac_count(&[&x, &w_grouped], &out) * 4,
            full.mac_count(&[&x, &w_full], &out)
        );
    }

    #[test]
    fn matmul_macs() {
        let a = Shape::new(vec![8, 64, 32]);
        let b = Shape::new(vec![8, 32, 128]);
        let out = Shape::new(vec![8, 64, 128]);
        let op = Op::MatMul { trans_a: false, trans_b: false };
        assert_eq!(op.mac_count(&[&a, &b], &out), 8 * 64 * 128 * 32);
    }

    #[test]
    fn matmul_macs_transposed_a() {
        let a = Shape::new(vec![32, 64]); // K x M
        let b = Shape::new(vec![32, 128]);
        let out = Shape::new(vec![64, 128]);
        let op = Op::MatMul { trans_a: true, trans_b: false };
        assert_eq!(op.mac_count(&[&a, &b], &out), 64 * 128 * 32);
    }

    #[test]
    fn layout_ops_have_zero_macs() {
        let s = Shape::new(vec![16, 16]);
        assert_eq!(
            Op::Transpose { perm: vec![1, 0] }.mac_count(&[&s], &Shape::new(vec![16, 16])),
            0
        );
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}
