//! Symbolic (bucketed) dimensions.
//!
//! The zoo is static-shape, but decoder-only LLM workloads grow a
//! sequence axis every step. Rather than teach every pass symbolic
//! arithmetic, SmartMem buckets the symbolic extent: a [`BucketTable`]
//! lists the compile points (e.g. powers of two up to 4096), one
//! artifact is compiled per bucket, and a request running at length
//! `n` executes the smallest bucket ≥ `n`.
//!
//! A graph binds a symbolic dimension through
//! [`Graph::with_sym_dim`](crate::Graph::with_sym_dim), which records
//! every tensor axis carrying the bound extent and validates that the
//! graph stays shape-consistent when all of them are raised to the
//! table ceiling. Downstream, the optimizer hashes and plans over
//! *ceiling-padded* dims (see
//! [`Graph::padded_dims`](crate::Graph::padded_dims)), which is what
//! makes group-cache and LTE-memo entries shared across buckets.

use crate::error::IrError;

/// A strictly increasing table of compile buckets for one symbolic
/// dimension.
///
/// Rounding is **monotone** (`a <= b` implies
/// `round_up(a) <= round_up(b)`) and **idempotent**
/// (`round_up(round_up(n)) == round_up(n)`); both properties are
/// property-tested.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BucketTable {
    buckets: Vec<usize>,
}

impl BucketTable {
    /// Builds a table from an explicit bucket list.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Shape`] unless the list is non-empty,
    /// strictly increasing and starts at 1 or above.
    pub fn new(buckets: Vec<usize>) -> Result<BucketTable, IrError> {
        if buckets.is_empty() {
            return Err(IrError::Shape("bucket table must be non-empty".into()));
        }
        if buckets[0] == 0 {
            return Err(IrError::Shape("bucket extents start at 1".into()));
        }
        if buckets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IrError::Shape("bucket table must be strictly increasing".into()));
        }
        Ok(BucketTable { buckets })
    }

    /// The conventional decode table: powers of two `1, 2, 4, … ≤ max`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn powers_of_two(max: usize) -> BucketTable {
        assert!(max >= 1, "bucket ceiling must be at least 1");
        let mut buckets = Vec::new();
        let mut b = 1usize;
        while b <= max {
            buckets.push(b);
            match b.checked_mul(2) {
                Some(next) => b = next,
                None => break,
            }
        }
        BucketTable { buckets }
    }

    /// The bucket list, strictly increasing.
    pub fn buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// The largest bucket — the extent every pass pads symbolic axes to.
    pub fn ceiling(&self) -> usize {
        *self.buckets.last().expect("table is non-empty")
    }

    /// The smallest bucket ≥ `n`, saturating at [`BucketTable::ceiling`]
    /// when `n` exceeds every bucket (callers reject such bindings up
    /// front; saturation keeps rounding total, monotone and idempotent).
    pub fn round_up(&self, n: usize) -> usize {
        match self.buckets.iter().find(|&&b| b >= n) {
            Some(&b) => b,
            None => self.ceiling(),
        }
    }

    /// Whether `n` is exactly one of the buckets.
    pub fn contains(&self, n: usize) -> bool {
        self.buckets.binary_search(&n).is_ok()
    }
}

/// One symbolic dimension bound in a graph: a name, its bucket table
/// and the concrete extent the graph is currently instantiated at.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymDim {
    /// Human-readable name (`"seq"` by convention).
    pub name: String,
    /// The compile buckets.
    pub table: BucketTable,
    /// The concrete extent this graph instance is bound to.
    pub value: usize,
}

impl SymDim {
    /// The compile bucket serving this binding: the smallest bucket ≥
    /// the bound value.
    pub fn bucket(&self) -> usize {
        self.table.round_up(self.value)
    }

    /// The ceiling extent every pass pads this dimension to.
    pub fn padded(&self) -> usize {
        self.table.ceiling()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_table() {
        let t = BucketTable::powers_of_two(4096);
        assert_eq!(t.buckets().first(), Some(&1));
        assert_eq!(t.ceiling(), 4096);
        assert_eq!(t.round_up(3), 4);
        assert_eq!(t.round_up(4), 4);
        assert_eq!(t.round_up(4097), 4096, "rounding saturates at the ceiling");
        assert!(t.contains(64));
        assert!(!t.contains(3));
    }

    #[test]
    fn explicit_tables_validate() {
        assert!(BucketTable::new(vec![]).is_err());
        assert!(BucketTable::new(vec![0, 2]).is_err());
        assert!(BucketTable::new(vec![4, 4]).is_err());
        assert!(BucketTable::new(vec![8, 4]).is_err());
        let t = BucketTable::new(vec![16, 48, 96]).unwrap();
        assert_eq!(t.round_up(17), 48);
        assert_eq!(t.round_up(1), 16);
    }

    #[test]
    fn sym_dim_bucket_and_padding() {
        let t = BucketTable::new(vec![32, 64, 128]).unwrap();
        let d = SymDim { name: "seq".into(), table: t, value: 48 };
        assert_eq!(d.bucket(), 64);
        assert_eq!(d.padded(), 128);
    }
}
