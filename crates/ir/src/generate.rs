//! Seeded random graph generator for differential testing.
//!
//! [`random_graph`] produces small, valid, deliberately *messy* graphs:
//! interleaved transposes and reshapes (including adjacent inverse
//! pairs), scalar-constant chains, shared subexpressions, exact duplicate
//! ops (CSE fodder) and dead branches that never reach an output. Every
//! graph passes [`crate::Graph::validate`] and is small enough
//! (per-tensor element counts capped at 256) for the reference
//! interpreter ([`crate::interp`]) to run in microseconds, so a harness
//! can push hundreds of seeds through all pipelines per test run.
//!
//! The generator is fully deterministic in the seed — a failing seed
//! printed by a test reproduces the exact graph.

use crate::dtype::DType;
use crate::graph::{Graph, GraphBuilder, TensorId};
use crate::ops::{BinaryKind, Op, ReduceKind, UnaryKind};

/// Cap on elements per generated tensor: keeps interpretation cheap.
const MAX_NUMEL: u64 = 256;

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }

    /// Uniform float in `[lo, hi)`.
    fn float(&mut self, lo: f32, hi: f32) -> f32 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u as f32
    }

    /// A random permutation of `0..rank` that is not the identity
    /// (when `rank > 1`).
    fn perm(&mut self, rank: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..rank).collect();
        loop {
            for i in (1..rank).rev() {
                p.swap(i, self.below(i + 1));
            }
            if rank <= 1 || p.iter().enumerate().any(|(i, &v)| i != v) {
                return p;
            }
        }
    }
}

/// Inverse of a permutation (`inv[perm[i]] = i`).
fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// A random factorization of `numel` into 1–4 extents (row-major
/// regrouping fodder for `Reshape`).
fn random_dims(rng: &mut Rng, numel: u64) -> Vec<usize> {
    let mut dims = vec![numel as usize];
    for _ in 0..3 {
        if dims.len() >= 4 || !rng.chance(70) {
            break;
        }
        let i = rng.below(dims.len());
        let d = dims[i];
        let divisors: Vec<usize> = (2..=d).filter(|k| d % k == 0).collect();
        if divisors.is_empty() {
            // Extent 1 or prime that refuses to split further: insert a
            // unit dim instead (exercises unit-dim handling in absorb).
            dims.insert(i, 1);
            continue;
        }
        let k = divisors[rng.below(divisors.len())];
        dims[i] = d / k;
        dims.insert(i + 1, k);
    }
    dims
}

/// Generates a random messy graph from `seed`.
///
/// All tensors are `f32`; weights carry initializers so constant folding
/// has real values to fold. The final 1–2 outputs are drawn from the
/// produced tensors at random, which routinely leaves dead branches in
/// the graph.
///
/// # Examples
///
/// ```
/// let g = smartmem_ir::generate::random_graph(42);
/// assert!(g.validate().is_ok());
/// assert!(g.op_count() > 0);
/// let again = smartmem_ir::generate::random_graph(42);
/// assert_eq!(g.to_string(), again.to_string());
/// ```
pub fn random_graph(seed: u64) -> Graph {
    let mut rng = Rng(seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(1));
    let mut b = GraphBuilder::new(format!("gen_{seed}"));

    // 1–2 inputs of rank 3–4 with small extents (unit dims included so
    // monotonic-perm transposes appear).
    let n_inputs = 1 + rng.below(2);
    let mut pool: Vec<TensorId> = Vec::new();
    for i in 0..n_inputs {
        let rank = 3 + rng.below(2);
        let dims: Vec<usize> =
            (0..rank).map(|_| if rng.chance(20) { 1 } else { 2 + rng.below(3) }).collect();
        pool.push(b.input(format!("in{i}"), &dims, DType::F32));
    }

    let mut n_weights = 0usize;
    let steps = 6 + rng.below(13);
    for _ in 0..steps {
        let t = pool[rng.below(pool.len())];
        let rank = b.shape_of(t).rank();
        let numel = b.shape_of(t).numel();
        match rng.below(100) {
            // Transpose, often immediately followed by its inverse.
            0..=24 => {
                let perm = rng.perm(rank);
                let out = b.transpose(t, &perm);
                pool.push(out);
                if rng.chance(50) {
                    pool.push(b.transpose(out, &invert(&perm)));
                }
            }
            // Reshape to a random regrouping of the same element count.
            25..=39 => {
                let dims = random_dims(&mut rng, numel);
                pool.push(b.reshape(t, &dims));
            }
            // Unary chain (includes Identity as removal fodder).
            40..=51 => {
                const KINDS: [UnaryKind; 8] = [
                    UnaryKind::Relu,
                    UnaryKind::Gelu,
                    UnaryKind::Silu,
                    UnaryKind::Sigmoid,
                    UnaryKind::Tanh,
                    UnaryKind::Neg,
                    UnaryKind::Identity,
                    UnaryKind::Relu, // double weight: Relu∘Relu collapses
                ];
                let kind = KINDS[rng.below(KINDS.len())];
                let out = b.unary(t, kind);
                pool.push(out);
                if rng.chance(30) {
                    pool.push(b.unary(out, kind));
                }
            }
            // Scalar-constant chain: x·c or x+c, sometimes twice
            // (CollapseRepeated fodder).
            52..=66 => {
                let kind = if rng.chance(50) { BinaryKind::Mul } else { BinaryKind::Add };
                let c1 = scalar_weight(&mut b, &mut rng, &mut n_weights);
                let out = b.binary(t, c1, kind);
                pool.push(out);
                if rng.chance(45) {
                    let c2 = scalar_weight(&mut b, &mut rng, &mut n_weights);
                    pool.push(b.binary(out, c2, kind));
                }
            }
            // Same-shape binary over existing tensors (shared
            // subexpressions when an operand is reused).
            67..=76 => {
                let shape = b.shape_of(t).clone();
                let mate = pool
                    .iter()
                    .copied()
                    .filter(|&o| b.shape_of(o) == &shape)
                    .max_by_key(|_| rng.next())
                    .unwrap_or(t);
                const KINDS: [BinaryKind; 4] =
                    [BinaryKind::Add, BinaryKind::Mul, BinaryKind::Max, BinaryKind::Sub];
                pool.push(b.binary(t, mate, KINDS[rng.below(KINDS.len())]));
            }
            // MatMul against a fresh initialized weight.
            77..=82 => {
                if rank >= 2 {
                    let k = b.shape_of(t).dim(rank - 1);
                    let n = 1 + rng.below(4);
                    if numel / b.shape_of(t).dim(rank - 1) as u64 * n as u64 <= MAX_NUMEL {
                        let init: Vec<f32> = (0..k * n).map(|_| rng.float(-0.5, 0.5)).collect();
                        n_weights += 1;
                        let w =
                            b.weight_init(format!("w{}", n_weights - 1), &[k, n], DType::F32, init);
                        pool.push(b.matmul(t, w));
                    }
                }
            }
            // Normalization-ish ops on a random axis.
            83..=88 => {
                let axis = rng.below(rank);
                match rng.below(3) {
                    0 => pool.push(b.softmax(t, axis)),
                    1 => pool.push(b.reduce(t, ReduceKind::Sum, vec![axis], true)),
                    _ => pool.push(b.layer_norm(t, vec![rank - 1])),
                }
            }
            // Slice off a sub-range.
            89..=92 => {
                let axis = rng.below(rank);
                let extent = b.shape_of(t).dim(axis);
                if extent > 1 {
                    let len = 1 + rng.below(extent - 1);
                    let start = rng.below(extent - len + 1);
                    pool.push(b.slice(t, axis, start, len));
                }
            }
            // Exact duplicate of an existing op (CSE fodder).
            _ => {
                if let Some(n) = pick_duplicable(&b, &mut rng) {
                    let (op, inputs) = n;
                    if let Ok(outs) = b.try_push(op, &inputs) {
                        pool.extend(outs);
                    }
                }
            }
        }
    }

    // Random outputs: most produced tensors stay unreferenced — dead
    // branches the pipelines must not be confused by.
    let n_outputs = 1 + rng.below(2).min(pool.len() - 1);
    let mut chosen = Vec::new();
    for _ in 0..n_outputs {
        let t = pool[pool.len() - 1 - rng.below(pool.len().min(6))];
        if !chosen.contains(&t) {
            chosen.push(t);
        }
    }
    for &t in &chosen {
        b.output(t);
    }
    b.finish()
}

/// A fresh `[1]`-shaped weight with an initializer bounded away from
/// zero and from overflow territory (divides and products stay finite).
fn scalar_weight(b: &mut GraphBuilder, rng: &mut Rng, counter: &mut usize) -> TensorId {
    let sign = if rng.chance(30) { -1.0 } else { 1.0 };
    let v = sign * rng.float(0.5, 2.0);
    let id = b.weight_init(format!("c{counter}"), &[1], DType::F32, vec![v]);
    *counter += 1;
    id
}

/// Picks a random single-output op already in the builder to duplicate
/// verbatim.
fn pick_duplicable(b: &GraphBuilder, rng: &mut Rng) -> Option<(Op, Vec<TensorId>)> {
    let nodes = b.nodes_so_far();
    if nodes.is_empty() {
        return None;
    }
    let n = &nodes[rng.below(nodes.len())];
    if n.outputs.len() == 1 {
        Some((n.op.clone(), n.inputs.clone()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_graph;

    #[test]
    fn graphs_are_valid_and_deterministic() {
        for seed in 0..50 {
            let g = random_graph(seed);
            assert!(g.validate().is_ok(), "seed {seed} invalid");
            assert!(g.op_count() > 0, "seed {seed} empty");
            let h = random_graph(seed);
            assert_eq!(g.to_string(), h.to_string(), "seed {seed} not deterministic");
        }
    }

    #[test]
    fn graphs_interpret_without_error() {
        for seed in 0..50 {
            let g = random_graph(seed);
            let outs = run_graph(&g).expect("interpretation failed");
            assert_eq!(outs.len(), g.outputs().len());
        }
    }

    #[test]
    fn corpus_contains_streamline_fodder() {
        let mut transposes = 0usize;
        let mut dead = 0usize;
        for seed in 0..100 {
            let g = random_graph(seed);
            transposes += g.nodes().iter().filter(|n| n.op.mnemonic() == "Transpose").count();
            // Dead op: an op none of whose outputs reach a graph output.
            let mut live: Vec<bool> = vec![false; g.tensors().len()];
            let mut stack: Vec<_> = g.outputs().to_vec();
            while let Some(t) = stack.pop() {
                if live[t.0 as usize] {
                    continue;
                }
                live[t.0 as usize] = true;
                if let Some(p) = g.producer(t) {
                    stack.extend(g.node(p).inputs.iter().copied());
                }
            }
            dead +=
                g.nodes().iter().filter(|n| n.outputs.iter().all(|t| !live[t.0 as usize])).count();
        }
        assert!(transposes > 50, "only {transposes} transposes in corpus");
        assert!(dead > 20, "only {dead} dead ops in corpus");
    }

    #[test]
    fn tensors_stay_small() {
        for seed in 0..50 {
            let g = random_graph(seed);
            for t in g.tensors() {
                assert!(t.shape.numel() <= MAX_NUMEL * 4, "tensor too large: {}", t.shape);
            }
        }
    }
}
