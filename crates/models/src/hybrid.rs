//! Hybrid and generative models: EfficientVit, Conformer, the three
//! Stable Diffusion pipelines (text encoder, UNet, VAE decoder) and the
//! Pythia decoder-only LLM.

use crate::blocks::{cls_head, conv_bn_act, linear, mha, mlp, transformer_block};
use smartmem_ir::{
    BinaryKind, BucketTable, DType, Graph, GraphBuilder, ReduceKind, TensorId, UnaryKind,
};

/// EfficientViT (Cai et al.): conv stem, MBConv stages, and lite
/// multi-scale linear attention in the late stages.
pub fn efficientvit(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("efficientvit");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);

    fn mbconv(
        b: &mut GraphBuilder,
        x: TensorId,
        cin: usize,
        cout: usize,
        stride: usize,
        name: &str,
    ) -> TensorId {
        let mid = cin * 6;
        let e =
            conv_bn_act(b, x, cin, mid, 1, 1, 1, Some(UnaryKind::Silu), &format!("{name}.expand"));
        let d = conv_bn_act(
            b,
            e,
            mid,
            mid,
            3,
            stride,
            mid,
            Some(UnaryKind::Silu),
            &format!("{name}.dw"),
        );
        let p = conv_bn_act(b, d, mid, cout, 1, 1, 1, None, &format!("{name}.project"));
        if cin == cout && stride == 1 {
            b.add(x, p)
        } else {
            p
        }
    }

    let mut cur = conv_bn_act(&mut b, x, 3, 32, 3, 2, 1, Some(UnaryKind::Silu), "stem");
    cur = mbconv(&mut b, cur, 32, 32, 1, "stem.mb");
    let widths = [64usize, 128, 256, 512];
    let depths = [3usize, 4, 6, 6];
    let mut cin = 32;
    let mut res = 112usize;
    for (si, (&w, &depth)) in widths.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            let stride = if d == 0 { 2 } else { 1 };
            if stride == 2 {
                res /= 2;
            }
            cur = mbconv(&mut b, cur, cin, w, stride, &format!("s{si}.mb{d}"));
            cin = w;
            if si >= 2 && d == depth - 1 {
                // Lite linear attention: relu-kernel q/k, global kv.
                let name = format!("s{si}.attn");
                let flat = b.reshape(cur, &[batch, w, res * res]);
                let tokens = b.transpose(flat, &[0, 2, 1]);
                let qkv = linear(&mut b, tokens, w, 3 * w, &format!("{name}.qkv"));
                let parts = b.split(qkv, 2, 3);
                let q = b.unary(parts[0], UnaryKind::Relu);
                let k = b.unary(parts[1], UnaryKind::Relu);
                let kv = b.matmul_t(k, parts[2], true, false);
                let o = b.matmul(q, kv);
                let proj = linear(&mut b, o, w, w, &format!("{name}.proj"));
                let t = b.transpose(proj, &[0, 2, 1]);
                let back = b.reshape(t, &[batch, w, res, res]);
                cur = b.add(cur, back);
            }
        }
    }
    let pooled = b.reduce(cur, ReduceKind::Mean, vec![2, 3], false);
    let logits = linear(&mut b, pooled, cin, 1000, "head");
    b.output(logits);
    b.finish()
}

/// Conformer (Gulati et al.) for speech: conv subsampling then 16
/// blocks of FFN–MHSA–ConvModule–FFN, full of layout flips between the
/// `[B, T, C]` attention form and the `[B, C, 1, T]` convolution form.
pub fn conformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("conformer");
    let x = b.input("mel", &[batch, 1, 80, 1000], DType::F16);
    let dim = 256;
    // Conv subsampling (x4 in time).
    let c1 = conv_bn_act(&mut b, x, 1, dim, 3, 2, 1, Some(UnaryKind::Relu), "sub1");
    let c2 = conv_bn_act(&mut b, c1, dim, dim, 3, 2, 1, Some(UnaryKind::Relu), "sub2");
    let t_len = 250;
    let f_len = 20;
    let r = b.reshape(c2, &[batch, dim * f_len, t_len]);
    let t = b.transpose(r, &[0, 2, 1]);
    let mut cur = linear(&mut b, t, dim * f_len, dim, "sub.proj");
    for blk in 0..16 {
        let name = format!("blk{blk}");
        // Half-step FFN.
        let n1 = b.layer_norm(cur, vec![2]);
        let f1 = mlp(&mut b, n1, dim, 4 * dim, &format!("{name}.ffn1"));
        let half = b.weight(format!("{name}.half1"), &[1], DType::F16);
        let f1s = b.binary(f1, half, BinaryKind::Mul);
        cur = b.add(cur, f1s);
        // MHSA.
        let n2 = b.layer_norm(cur, vec![2]);
        let a = mha(&mut b, n2, batch, t_len, dim, 4, &format!("{name}.mhsa"));
        cur = b.add(cur, a);
        // Conv module: pointwise GLU, depthwise conv along time,
        // pointwise projection — with explicit layout flips.
        let n3 = b.layer_norm(cur, vec![2]);
        let pw1 = linear(&mut b, n3, dim, 2 * dim, &format!("{name}.pw1"));
        let gates = b.split(pw1, 2, 2);
        let sg = b.unary(gates[1], UnaryKind::Sigmoid);
        let glu = b.mul(gates[0], sg);
        let tc = b.transpose(glu, &[0, 2, 1]);
        let chw = b.reshape(tc, &[batch, dim, 1, t_len]);
        let wdw = b.weight(format!("{name}.dw"), &[dim, 1, 1, 31], DType::F16);
        let dw = b.conv2d(chw, wdw, (1, 1), (0, 15), dim);
        let act = b.unary(dw, UnaryKind::Silu);
        let back = b.reshape(act, &[batch, dim, t_len]);
        let tb = b.transpose(back, &[0, 2, 1]);
        let pw2 = linear(&mut b, tb, dim, dim, &format!("{name}.pw2"));
        cur = b.add(cur, pw2);
        // Half-step FFN.
        let n4 = b.layer_norm(cur, vec![2]);
        let f2 = mlp(&mut b, n4, dim, 4 * dim, &format!("{name}.ffn2"));
        let half2 = b.weight(format!("{name}.half2"), &[1], DType::F16);
        let f2s = b.binary(f2, half2, BinaryKind::Mul);
        cur = b.add(cur, f2s);
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = linear(&mut b, n, dim, 5000, "head");
    b.output(logits);
    b.finish()
}

/// Stable Diffusion text encoder (CLIP ViT-L/14 text tower): token
/// embedding gather + 12 causal transformer blocks at sequence 77.
pub fn sd_text_encoder(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("sd-textencoder");
    let ids = b.input("token_ids", &[batch, 77], DType::I32);
    let table = b.weight("embeddings", &[49408, 768], DType::F16);
    let emb = b.gather(table, ids, 0);
    let pos = b.weight("pos", &[77, 768], DType::F16);
    let mut cur = b.add(emb, pos);
    for d in 0..12 {
        cur = transformer_block(&mut b, cur, batch, 77, 768, 12, 4, &format!("blk{d}"));
    }
    let n = b.layer_norm(cur, vec![2]);
    b.output(n);
    b.finish()
}

/// Residual block of the diffusion UNet/VAE (two 3x3 convs with
/// normalization and SiLU).
fn res_block(b: &mut GraphBuilder, x: TensorId, cin: usize, cout: usize, name: &str) -> TensorId {
    let n1 = b.instance_norm(x);
    let a1 = b.unary(n1, UnaryKind::Silu);
    let c1 = conv_bn_act(b, a1, cin, cout, 3, 1, 1, None, &format!("{name}.c1"));
    let n2 = b.instance_norm(c1);
    let a2 = b.unary(n2, UnaryKind::Silu);
    let c2 = conv_bn_act(b, a2, cout, cout, 3, 1, 1, None, &format!("{name}.c2"));
    let skip = if cin != cout {
        conv_bn_act(b, x, cin, cout, 1, 1, 1, None, &format!("{name}.skip"))
    } else {
        x
    };
    b.add(c2, skip)
}

/// Spatial transformer block of the SD UNet: self-attention +
/// cross-attention to the 77-token text context + feed-forward, wrapped
/// in the NCHW↔tokens reshapes.
#[allow(clippy::too_many_arguments)]
fn spatial_transformer(
    b: &mut GraphBuilder,
    x: TensorId,
    ctx: TensorId,
    batch: usize,
    c: usize,
    res: usize,
    heads: usize,
    name: &str,
) -> TensorId {
    let seq = res * res;
    let flat = b.reshape(x, &[batch, c, seq]);
    let tokens = b.transpose(flat, &[0, 2, 1]);
    let n1 = b.layer_norm(tokens, vec![2]);
    let sa = mha(b, n1, batch, seq, c, heads, &format!("{name}.self"));
    let r1 = b.add(tokens, sa);
    // Cross-attention: q from image tokens, k/v from the text context.
    let n2 = b.layer_norm(r1, vec![2]);
    let q = linear(b, n2, c, c, &format!("{name}.xq"));
    let k = linear(b, ctx, 768, c, &format!("{name}.xk"));
    let v = linear(b, ctx, 768, c, &format!("{name}.xv"));
    let attn = b.matmul_t(q, k, false, true); // [B, seq, 77]
    let p = b.softmax(attn, 2);
    let o = b.matmul(p, v);
    let xproj = linear(b, o, c, c, &format!("{name}.xproj"));
    let r2 = b.add(r1, xproj);
    let n3 = b.layer_norm(r2, vec![2]);
    let m = mlp(b, n3, c, 4 * c, &format!("{name}.ff"));
    let r3 = b.add(r2, m);
    let tb = b.transpose(r3, &[0, 2, 1]);
    b.reshape(tb, &[batch, c, res, res])
}

/// Stable Diffusion UNet (one denoising step at 64x64 latents, with
/// text conditioning).
pub fn sd_unet(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("sd-unet");
    let latents = b.input("latents", &[batch, 4, 64, 64], DType::F16);
    let ctx = b.input("text_context", &[batch, 77, 768], DType::F16);
    let chans = [256usize, 512, 1024];
    let mut cur = conv_bn_act(&mut b, latents, 4, chans[0], 3, 1, 1, None, "stem");
    let mut res = 64usize;
    let mut skips: Vec<(TensorId, usize, usize)> = Vec::new();
    // Down path.
    for (si, &c) in chans.iter().enumerate() {
        let cin = if si == 0 { chans[0] } else { chans[si - 1] };
        cur = res_block(&mut b, cur, cin, c, &format!("down{si}.res0"));
        if si > 0 {
            cur =
                spatial_transformer(&mut b, cur, ctx, batch, c, res, 8, &format!("down{si}.attn0"));
        }
        cur = res_block(&mut b, cur, c, c, &format!("down{si}.res1"));
        skips.push((cur, c, res));
        if si < chans.len() - 1 {
            cur = conv_bn_act(&mut b, cur, c, c, 3, 2, 1, None, &format!("down{si}.pool"));
            res /= 2;
        }
    }
    // Mid block.
    cur = res_block(&mut b, cur, chans[2], chans[2], "mid.res0");
    cur = spatial_transformer(&mut b, cur, ctx, batch, chans[2], res, 8, "mid.attn");
    cur = res_block(&mut b, cur, chans[2], chans[2], "mid.res1");
    // Up path.
    for (si, &c) in chans.iter().enumerate().rev() {
        let (skip, sc, sres) = skips.pop().expect("skip per stage");
        if sres != res {
            // Upsample: 1x1 expand + depth-to-space.
            let e = conv_bn_act(
                &mut b,
                cur,
                chans[(si + 1).min(2)],
                c * 4,
                1,
                1,
                1,
                None,
                &format!("up{si}.exp"),
            );
            cur = b.depth_to_space(e, 2);
            res *= 2;
        }
        let cat = b.concat(&[cur, skip], 1);
        cur = res_block(&mut b, cat, c + sc, c, &format!("up{si}.res0"));
        if si > 0 {
            cur = spatial_transformer(&mut b, cur, ctx, batch, c, res, 8, &format!("up{si}.attn0"));
        }
        cur = res_block(&mut b, cur, c, c, &format!("up{si}.res1"));
    }
    let n = b.instance_norm(cur);
    let a = b.unary(n, UnaryKind::Silu);
    let out = conv_bn_act(&mut b, a, chans[0], 4, 3, 1, 1, None, "out");
    b.output(out);
    b.finish()
}

/// Stable Diffusion VAE decoder: 64x64x4 latents to a 512x512 image —
/// the most MAC-heavy pipeline (312G), dominated by high-resolution
/// convolutions.
pub fn sd_vae_decoder(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("sd-vaedecoder");
    let z = b.input("latents", &[batch, 4, 64, 64], DType::F16);
    let mut cur = conv_bn_act(&mut b, z, 4, 512, 3, 1, 1, None, "stem");
    cur = res_block(&mut b, cur, 512, 512, "mid.res0");
    cur = res_block(&mut b, cur, 512, 512, "mid.res1");
    let chans = [512usize, 256, 128, 64];
    let mut res = 64usize;
    for (si, &c) in chans.iter().enumerate() {
        let cin = if si == 0 { 512 } else { chans[si - 1] };
        cur = res_block(&mut b, cur, cin, c, &format!("up{si}.res0"));
        cur = res_block(&mut b, cur, c, c, &format!("up{si}.res1"));
        cur = res_block(&mut b, cur, c, c, &format!("up{si}.res2"));
        if si < chans.len() - 1 {
            let e = conv_bn_act(&mut b, cur, c, c * 4, 1, 1, 1, None, &format!("up{si}.exp"));
            cur = b.depth_to_space(e, 2);
            res *= 2;
        }
    }
    let _ = res;
    let n = b.instance_norm(cur);
    let a = b.unary(n, UnaryKind::Silu);
    let img = conv_bn_act(&mut b, a, chans[3], 3, 3, 1, 1, None, "out");
    b.output(img);
    b.finish()
}

/// Pythia-1B (Biderman et al.): 16 decoder blocks, hidden 2048, with
/// rotary position embeddings — evaluated as a 128-token prefill.
pub fn pythia(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("pythia-1b");
    let seq = 128usize;
    let dim = 2048usize;
    let heads = 8usize;
    let hd = dim / heads;
    let ids = b.input("token_ids", &[batch, seq], DType::I32);
    let table = b.weight("embeddings", &[50304, dim], DType::F16);
    let mut cur = b.gather(table, ids, 0);
    for blk in 0..16 {
        let name = format!("blk{blk}");
        let n1 = b.layer_norm(cur, vec![2]);
        // Fused QKV with rotary embedding on q and k.
        let qkv = linear(&mut b, n1, dim, 3 * dim, &format!("{name}.qkv"));
        let r = b.reshape(qkv, &[batch, seq, 3, heads, hd]);
        let t = b.transpose(r, &[2, 0, 3, 1, 4]);
        let parts = b.split(t, 0, 3);
        let q = b.reshape(parts[0], &[batch * heads, seq, hd]);
        let k = b.reshape(parts[1], &[batch * heads, seq, hd]);
        let v = b.reshape(parts[2], &[batch * heads, seq, hd]);
        // RoPE: rotate_half via slice/concat + two elementwise muls.
        let rope = |b: &mut GraphBuilder, x: TensorId, name: &str| -> TensorId {
            let first = b.slice(x, 2, 0, hd / 2);
            let second = b.slice(x, 2, hd / 2, hd / 2);
            let neg = b.unary(second, UnaryKind::Neg);
            let rotated = b.concat(&[neg, first], 2);
            let cos = b.weight(format!("{name}.cos"), &[seq, hd], DType::F16);
            let sin = b.weight(format!("{name}.sin"), &[seq, hd], DType::F16);
            let xc = b.binary(x, cos, BinaryKind::Mul);
            let xs = b.binary(rotated, sin, BinaryKind::Mul);
            b.add(xc, xs)
        };
        let qr = rope(&mut b, q, &format!("{name}.ropeq"));
        let kr = rope(&mut b, k, &format!("{name}.ropek"));
        let attn = b.matmul_t(qr, kr, false, true);
        let mask = b.weight(format!("{name}.mask"), &[seq, seq], DType::F16);
        let masked = b.add(attn, mask);
        let p = b.softmax(masked, 2);
        let o = b.matmul(p, v);
        let r2 = b.reshape(o, &[batch, heads, seq, hd]);
        let t2 = b.transpose(r2, &[0, 2, 1, 3]);
        let r3 = b.reshape(t2, &[batch, seq, dim]);
        let proj = linear(&mut b, r3, dim, dim, &format!("{name}.dense"));
        // Pythia uses parallel attention + MLP.
        let n2 = b.layer_norm(cur, vec![2]);
        let m = mlp(&mut b, n2, dim, 4 * dim, &format!("{name}.mlp"));
        let s = b.add(proj, m);
        cur = b.add(cur, s);
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = linear(&mut b, n, dim, 50304, "lm_head");
    b.output(logits);
    b.finish()
}

/// The decode bucket table shared by [`pythia_decode`], the serve tier
/// and `serve_bench --decode`: sequence lengths compile at 16, 32, 64
/// or 128 tokens.
pub fn decode_buckets() -> BucketTable {
    BucketTable::new(vec![16, 32, 64, 128]).expect("static table is valid")
}

/// A scaled-down Pythia decoder bound to a **symbolic** sequence
/// dimension: 2 blocks, hidden 192, 4 heads — small enough that the
/// serve tier can compile one artifact per bucket in a test, while
/// keeping every structural idiom of [`pythia`] (fused QKV
/// reshape/transpose/split, RoPE slice/neg/concat, causal mask,
/// parallel attention + MLP).
///
/// `seq` is the bound sequence length and must round into
/// [`decode_buckets`]; every hidden extent is chosen to never collide
/// with a bucket value, so the symbolic binding is unambiguous.
///
/// # Panics
///
/// Panics if `seq` is zero or exceeds the bucket ceiling.
pub fn pythia_decode(batch: usize, seq: usize) -> Graph {
    let table = decode_buckets();
    let dim = 192usize;
    let heads = 4usize;
    let hd = dim / heads; // 48
    let vocab = 1000usize;
    let mut b = GraphBuilder::new(format!("pythia-decode-s{seq}"));
    let ids = b.input("token_ids", &[batch, seq], DType::I32);
    let etable = b.weight("embeddings", &[vocab, dim], DType::F16);
    let mut cur = b.gather(etable, ids, 0);
    for blk in 0..2 {
        let name = format!("blk{blk}");
        let n1 = b.layer_norm(cur, vec![2]);
        let qkv = linear(&mut b, n1, dim, 3 * dim, &format!("{name}.qkv"));
        let r = b.reshape(qkv, &[batch, seq, 3, heads, hd]);
        let t = b.transpose(r, &[2, 0, 3, 1, 4]);
        let parts = b.split(t, 0, 3);
        let q = b.reshape(parts[0], &[batch * heads, seq, hd]);
        let k = b.reshape(parts[1], &[batch * heads, seq, hd]);
        let v = b.reshape(parts[2], &[batch * heads, seq, hd]);
        let rope = |b: &mut GraphBuilder, x: TensorId, name: &str| -> TensorId {
            let first = b.slice(x, 2, 0, hd / 2);
            let second = b.slice(x, 2, hd / 2, hd / 2);
            let neg = b.unary(second, UnaryKind::Neg);
            let rotated = b.concat(&[neg, first], 2);
            let cos = b.weight(format!("{name}.cos"), &[seq, hd], DType::F16);
            let sin = b.weight(format!("{name}.sin"), &[seq, hd], DType::F16);
            let xc = b.binary(x, cos, BinaryKind::Mul);
            let xs = b.binary(rotated, sin, BinaryKind::Mul);
            b.add(xc, xs)
        };
        let qr = rope(&mut b, q, &format!("{name}.ropeq"));
        let kr = rope(&mut b, k, &format!("{name}.ropek"));
        let attn = b.matmul_t(qr, kr, false, true);
        let mask = b.weight(format!("{name}.mask"), &[seq, seq], DType::F16);
        let masked = b.add(attn, mask);
        let p = b.softmax(masked, 2);
        let o = b.matmul(p, v);
        let r2 = b.reshape(o, &[batch, heads, seq, hd]);
        let t2 = b.transpose(r2, &[0, 2, 1, 3]);
        let r3 = b.reshape(t2, &[batch, seq, dim]);
        let proj = linear(&mut b, r3, dim, dim, &format!("{name}.dense"));
        let n2 = b.layer_norm(cur, vec![2]);
        let m = mlp(&mut b, n2, dim, 4 * dim, &format!("{name}.mlp"));
        let s = b.add(proj, m);
        cur = b.add(cur, s);
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = linear(&mut b, n, dim, vocab, "lm_head");
    b.output(logits);
    b.finish().with_sym_dim("seq", &table, seq).expect("decode builder is symbolic-safe")
}

/// ViT-style classification head re-export used by hybrid models.
#[allow(unused)]
fn _keep_cls_head_linked() {
    let _ = cls_head;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmacs(g: &Graph) -> f64 {
        g.total_macs() as f64 / 1e9
    }

    #[test]
    fn pythia_decode_is_symbolic_per_bucket() {
        for &seq in decode_buckets().buckets() {
            let g = pythia_decode(1, seq);
            assert_eq!(g.sym_dims().len(), 1);
            assert_eq!(g.sym_dims()[0].bucket(), seq);
            assert!(g.validate().is_ok());
        }
        // Off-bucket lengths round up.
        assert_eq!(pythia_decode(1, 40).sym_dims()[0].bucket(), 64);
        // Padded dims are bucket-invariant across instantiations.
        let a = pythia_decode(1, 16);
        let b = pythia_decode(1, 128);
        assert_eq!(a.tensors().len(), b.tensors().len());
        for i in 0..a.tensors().len() {
            let t = smartmem_ir::TensorId(i as u32);
            assert_eq!(a.padded_dims(t), b.padded_dims(t));
        }
    }

    #[test]
    fn efficientvit_scale() {
        let g = efficientvit(1);
        assert!((2.0..8.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 5.2G
        assert!((150..650).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 536
    }

    #[test]
    fn conformer_scale() {
        let g = conformer(1);
        assert!((6.0..18.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 12G
        assert!((450..900).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 665
    }

    #[test]
    fn sd_text_encoder_scale() {
        let g = sd_text_encoder(1);
        assert!((4.0..10.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 6.7G
        assert!((300..550).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 674
        assert!((100.0..160.0).contains(&(g.param_count() as f64 / 1e6))); // paper: 123M
    }

    #[test]
    fn sd_unet_scale() {
        let g = sd_unet(1);
        assert!((55.0..130.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 90G
        assert!((300..900).contains(&g.op_count()), "got {}", g.op_count()); // structure-level
    }

    #[test]
    fn sd_vae_scale() {
        let g = sd_vae_decoder(1);
        assert!((180.0..420.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 312G
        assert!((120..320).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 287
    }

    #[test]
    fn pythia_scale() {
        let g = pythia(1);
        assert!((80.0..160.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 119G
        assert!(
            (800.0..1400.0).contains(&(g.param_count() as f64 / 1e6)),
            "got {}M",
            g.param_count() / 1_000_000
        ); // paper: 1121M
        assert!((500..1200).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 1853
    }

    #[test]
    fn all_validate() {
        for g in [efficientvit(1), sd_text_encoder(1), pythia(1)] {
            assert!(g.validate().is_ok());
        }
    }
}
