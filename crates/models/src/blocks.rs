//! Shared building blocks for the model zoo.
//!
//! The builders emit the *operator-level* structure a model exporter
//! would produce (ONNX-style): linear layers as `MatMul + Add`,
//! attention with its explicit `Reshape`/`Transpose` head-splitting
//! chains, window partitioning as reshape/transpose stacks, shifted
//! windows as slice+concat rolls — exactly the explicit layout
//! transformations SmartMem targets (Table 1).

use smartmem_ir::{BinaryKind, DType, GraphBuilder, TensorId, UnaryKind};

/// Fully connected layer: `MatMul` + bias `Add` (2 operators).
pub fn linear(
    b: &mut GraphBuilder,
    x: TensorId,
    in_f: usize,
    out_f: usize,
    name: &str,
) -> TensorId {
    let w = b.weight(format!("{name}.w"), &[in_f, out_f], DType::F16);
    let y = b.matmul(x, w);
    let bias = b.weight(format!("{name}.b"), &[out_f], DType::F16);
    b.add(y, bias)
}

/// Transformer MLP: linear → GELU → linear (5 operators).
pub fn mlp(b: &mut GraphBuilder, x: TensorId, dim: usize, hidden: usize, name: &str) -> TensorId {
    let h = linear(b, x, dim, hidden, &format!("{name}.fc1"));
    let a = b.unary(h, UnaryKind::Gelu);
    linear(b, a, hidden, dim, &format!("{name}.fc2"))
}

/// Multi-head self-attention on `[batch, seq, dim]` with the explicit
/// QKV reshape/transpose/split chain (≈17 operators).
pub fn mha(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    seq: usize,
    dim: usize,
    heads: usize,
    name: &str,
) -> TensorId {
    let hd = dim / heads;
    let qkv = linear(b, x, dim, 3 * dim, &format!("{name}.qkv"));
    let r = b.reshape(qkv, &[batch, seq, 3, heads, hd]);
    let t = b.transpose(r, &[2, 0, 3, 1, 4]); // [3, B, H, S, hd]
    let parts = b.split(t, 0, 3);
    let q = b.reshape(parts[0], &[batch * heads, seq, hd]);
    let k = b.reshape(parts[1], &[batch * heads, seq, hd]);
    let v = b.reshape(parts[2], &[batch * heads, seq, hd]);
    let scale = b.weight(format!("{name}.scale"), &[1], DType::F16);
    let qs = b.binary(q, scale, BinaryKind::Mul);
    let attn = b.matmul_t(qs, k, false, true); // [B*H, S, S]
    let p = b.softmax(attn, 2);
    let o = b.matmul(p, v); // [B*H, S, hd]
    let r2 = b.reshape(o, &[batch, heads, seq, hd]);
    let t2 = b.transpose(r2, &[0, 2, 1, 3]);
    let r3 = b.reshape(t2, &[batch, seq, dim]);
    linear(b, r3, dim, dim, &format!("{name}.proj"))
}

/// Pre-norm transformer encoder block: `LN → MHA → +res → LN → MLP →
/// +res` (≈26 operators).
#[allow(clippy::too_many_arguments)]
pub fn transformer_block(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    seq: usize,
    dim: usize,
    heads: usize,
    mlp_ratio: usize,
    name: &str,
) -> TensorId {
    let n1 = b.layer_norm(x, vec![2]);
    let a = mha(b, n1, batch, seq, dim, heads, &format!("{name}.attn"));
    let r1 = b.add(x, a);
    let n2 = b.layer_norm(r1, vec![2]);
    let m = mlp(b, n2, dim, dim * mlp_ratio, &format!("{name}.mlp"));
    b.add(r1, m)
}

/// Rectangular-stripe partition of `[B, H, W, C]` into
/// `[B·(H/sh)·(W/sw), sh·sw, C]` (reshape → transpose → reshape,
/// 3 operators). Square stripes give Swin's window partition; `sh = H`
/// or `sw = W` gives CSwin's cross-shaped stripes.
#[allow(clippy::too_many_arguments)]
pub fn stripe_partition(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    sh: usize,
    sw: usize,
) -> TensorId {
    let r = b.reshape(x, &[batch, h / sh, sh, w / sw, sw, c]);
    let t = b.transpose(r, &[0, 1, 3, 2, 4, 5]);
    b.reshape(t, &[batch * (h / sh) * (w / sw), sh * sw, c])
}

/// Inverse of [`stripe_partition`] (3 operators).
#[allow(clippy::too_many_arguments)]
pub fn stripe_reverse(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    sh: usize,
    sw: usize,
) -> TensorId {
    let r = b.reshape(x, &[batch, h / sh, w / sw, sh, sw, c]);
    let t = b.transpose(r, &[0, 1, 3, 2, 4, 5]);
    b.reshape(t, &[batch, h, w, c])
}

/// Window partition of `[B, H, W, C]` into `[B·nW, win², C]`
/// (reshape → transpose → reshape, 3 operators).
pub fn window_partition(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    win: usize,
) -> TensorId {
    stripe_partition(b, x, batch, h, w, c, win, win)
}

/// Inverse of [`window_partition`] (3 operators).
pub fn window_reverse(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    win: usize,
) -> TensorId {
    stripe_reverse(b, x, batch, h, w, c, win, win)
}

/// Cyclic roll along one axis implemented as `Slice + Slice + Concat`
/// (3 operators) — how exporters lower `torch.roll` for shifted-window
/// attention.
pub fn roll(
    b: &mut GraphBuilder,
    x: TensorId,
    axis: usize,
    extent: usize,
    shift: usize,
) -> TensorId {
    let shift = shift % extent;
    if shift == 0 {
        return x;
    }
    let head = b.slice(x, axis, 0, extent - shift);
    let tail = b.slice(x, axis, extent - shift, shift);
    b.concat(&[tail, head], axis)
}

/// Convolution + bias + activation (3 operators; BN is folded into the
/// conv at export time, matching deployed graphs).
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_act(
    b: &mut GraphBuilder,
    x: TensorId,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    groups: usize,
    act: Option<UnaryKind>,
    name: &str,
) -> TensorId {
    let w = b.weight(format!("{name}.w"), &[cout, cin / groups, k, k], DType::F16);
    // "Same" padding for sliding kernels; patchify convs (k == stride)
    // tile the input without padding.
    let pad = if k == stride { 0 } else { (k - 1) / 2 };
    let c = b.conv2d(x, w, (stride, stride), (pad, pad), groups);
    let bias = b.weight(format!("{name}.bias"), &[1, cout, 1, 1], DType::F16);
    let y = b.add(c, bias);
    match act {
        Some(kind) => b.unary(y, kind),
        None => y,
    }
}

/// ViT-style patch embedding: strided conv + flatten + transpose
/// (4 operators), yielding `[B, (H/p)·(W/p), dim]`.
#[allow(clippy::too_many_arguments)]
pub fn patch_embed(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    cin: usize,
    img: usize,
    patch: usize,
    dim: usize,
    name: &str,
) -> TensorId {
    let w = b.weight(format!("{name}.w"), &[dim, cin, patch, patch], DType::F16);
    let c = b.conv2d(x, w, (patch, patch), (0, 0), 1);
    let tokens = (img / patch) * (img / patch);
    let r = b.reshape(c, &[batch, dim, tokens]);
    let t = b.transpose(r, &[0, 2, 1]);
    let bias = b.weight(format!("{name}.b"), &[dim], DType::F16);
    b.add(t, bias)
}

/// Swin patch merging: 4 strided slices of `[B, H, W, C]`, concat,
/// LN, reduction linear (≈9 operators), yielding `[B, H/2·W/2, 2C]`.
pub fn patch_merging(
    b: &mut GraphBuilder,
    x: TensorId,
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    name: &str,
) -> TensorId {
    // Exporters lower the strided 2x2 gather as reshape+slice stacks;
    // we model it as 4 slices over a space-to-depth-style reshape.
    let r = b.reshape(x, &[batch, h / 2, 2, w / 2, 2, c]);
    let t = b.transpose(r, &[0, 1, 3, 2, 4, 5]);
    let f = b.reshape(t, &[batch * (h / 2) * (w / 2), 4 * c]);
    let n = b.layer_norm(f, vec![1]);
    let red = linear(b, n, 4 * c, 2 * c, name);
    b.reshape(red, &[batch, (h / 2) * (w / 2), 2 * c])
}

/// Classification head: global average pool over tokens + linear
/// (4 operators).
pub fn cls_head(
    b: &mut GraphBuilder,
    x: TensorId,
    dim: usize,
    classes: usize,
    name: &str,
) -> TensorId {
    let pooled = b.reduce(x, smartmem_ir::ReduceKind::Mean, vec![1], false);
    linear(b, pooled, dim, classes, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::Graph;

    fn finish(b: GraphBuilder, out: TensorId) -> Graph {
        let mut b = b;
        b.output(out);
        b.finish()
    }

    #[test]
    fn linear_shapes_and_ops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 10, 32], DType::F16);
        let y = linear(&mut b, x, 32, 64, "fc");
        let g = finish(b, y);
        assert_eq!(g.op_count(), 2);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 10, 64]);
    }

    #[test]
    fn mha_produces_same_shape() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[2, 49, 96], DType::F16);
        let y = mha(&mut b, x, 2, 49, 96, 3, "attn");
        let g = finish(b, y);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[2, 49, 96]);
        // The explicit head-splitting chain is present.
        assert!(g.layout_transform_count() >= 6);
    }

    #[test]
    fn transformer_block_shape_preserved() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 196, 192], DType::F16);
        let y = transformer_block(&mut b, x, 1, 196, 192, 6, 4, "blk");
        let g = finish(b, y);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 196, 192]);
    }

    #[test]
    fn window_partition_roundtrip() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 56, 56, 96], DType::F16);
        let wins = window_partition(&mut b, x, 1, 56, 56, 96, 7);
        let g0 = {
            let mut bb = GraphBuilder::new("check");
            let _ = bb.input("d", &[1], DType::F16);
            bb.finish()
        };
        let _ = g0;
        let back = window_reverse(&mut b, wins, 1, 56, 56, 96, 7);
        let g = finish(b, back);
        let wins_shape = g
            .nodes()
            .iter()
            .find(|n| n.outputs.iter().any(|&o| g.tensor(o).shape.dims() == [64, 49, 96]))
            .is_some();
        assert!(wins_shape, "expected 64 windows of 49 tokens");
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 56, 56, 96]);
    }

    #[test]
    fn roll_is_three_ops() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 8, 8, 4], DType::F16);
        let y = roll(&mut b, x, 1, 8, 3);
        let g = finish(b, y);
        assert_eq!(g.op_count(), 3);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 8, 8, 4]);
    }

    #[test]
    fn conv_block_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 3, 224, 224], DType::F16);
        let y = conv_bn_act(&mut b, x, 3, 64, 7, 2, 1, Some(UnaryKind::Relu), "stem");
        let g = finish(b, y);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 64, 112, 112]);
    }

    #[test]
    fn patch_embed_tokens() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 3, 224, 224], DType::F16);
        let y = patch_embed(&mut b, x, 1, 3, 224, 16, 768, "embed");
        let g = finish(b, y);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 196, 768]);
    }

    #[test]
    fn patch_merging_halves_resolution() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", &[1, 56, 56, 96], DType::F16);
        let y = patch_merging(&mut b, x, 1, 56, 56, 96, "merge");
        let g = finish(b, y);
        assert_eq!(g.tensor(*g.outputs().first().unwrap()).shape.dims(), &[1, 784, 192]);
    }
}
