//! ConvNet models: ResNet50, ResNext, RegNet, ConvNext, YOLO-V8 and the
//! style-transfer network (FST) of Table 1.

use crate::blocks::{conv_bn_act, linear};
use smartmem_ir::{
    BinaryKind, DType, Graph, GraphBuilder, PoolKind, ReduceKind, TensorId, UnaryKind,
};

/// ConvNet classification head in the form mobile exporters emit for
/// NCNN/TFLite: global average pool + 1x1 convolution + flatten (no
/// MatMul, which those GPU backends lack).
fn conv_head(b: &mut GraphBuilder, x: TensorId, cin: usize, batch: usize, name: &str) -> TensorId {
    let pooled = b.reduce(x, ReduceKind::Mean, vec![2, 3], true);
    let w = b.weight(format!("{name}.w"), &[1000, cin, 1, 1], DType::F16);
    let c = b.conv2d(pooled, w, (1, 1), (0, 0), 1);
    b.reshape(c, &[batch, 1000])
}

/// Bottleneck residual block (1x1 → 3x3(groups) → 1x1 + skip).
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    b: &mut GraphBuilder,
    x: TensorId,
    cin: usize,
    cmid: usize,
    cout: usize,
    stride: usize,
    groups: usize,
    name: &str,
) -> TensorId {
    let c1 = conv_bn_act(b, x, cin, cmid, 1, 1, 1, Some(UnaryKind::Relu), &format!("{name}.c1"));
    let c2 = conv_bn_act(
        b,
        c1,
        cmid,
        cmid,
        3,
        stride,
        groups,
        Some(UnaryKind::Relu),
        &format!("{name}.c2"),
    );
    let c3 = conv_bn_act(b, c2, cmid, cout, 1, 1, 1, None, &format!("{name}.c3"));
    let skip = if cin != cout || stride != 1 {
        conv_bn_act(b, x, cin, cout, 1, stride, 1, None, &format!("{name}.down"))
    } else {
        x
    };
    let s = b.add(c3, skip);
    b.unary(s, UnaryKind::Relu)
}

fn resnet_like(name: &str, batch: usize, groups: usize, width_factor: usize) -> Graph {
    let mut b = GraphBuilder::new(name);
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let stem = conv_bn_act(&mut b, x, 3, 64, 7, 2, 1, Some(UnaryKind::Relu), "stem");
    let mut cur = b.pool2d(stem, PoolKind::Max, (3, 3), (2, 2), (1, 1));
    let mut cin = 64;
    let depths = [3usize, 4, 6, 3];
    for (si, &depth) in depths.iter().enumerate() {
        let cout = 256 << si;
        let cmid = (64 << si) * width_factor;
        for d in 0..depth {
            let stride = if d == 0 && si > 0 { 2 } else { 1 };
            cur = bottleneck(&mut b, cur, cin, cmid, cout, stride, groups, &format!("s{si}.b{d}"));
            cin = cout;
        }
    }
    let logits = conv_head(&mut b, cur, cin, batch, "head");
    b.output(logits);
    b.finish()
}

/// ResNet50 (He et al.) — the Table 1 motivation ConvNet.
pub fn resnet50(batch: usize) -> Graph {
    resnet_like("resnet50", batch, 1, 1)
}

/// ResNext50-32x4d (Xie et al.): bottlenecks with 32-way grouped 3x3s.
pub fn resnext50(batch: usize) -> Graph {
    resnet_like("resnext", batch, 32, 2)
}

/// RegNetY-3.2GF-style network: four stages of grouped bottlenecks with
/// squeeze-excitation.
pub fn regnet(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("regnet");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let mut cur = conv_bn_act(&mut b, x, 3, 32, 3, 2, 1, Some(UnaryKind::Relu), "stem");
    let mut cin = 32;
    let widths = [96usize, 192, 432, 1008];
    let depths = [2usize, 5, 13, 1];
    for (si, (&w, &depth)) in widths.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            let stride = if d == 0 { 2 } else { 1 };
            let name = format!("s{si}.b{d}");
            let groups = (w / 48).max(1);
            let c1 = conv_bn_act(
                &mut b,
                cur,
                cin,
                w,
                1,
                1,
                1,
                Some(UnaryKind::Relu),
                &format!("{name}.c1"),
            );
            let c2 = conv_bn_act(
                &mut b,
                c1,
                w,
                w,
                3,
                stride,
                groups,
                Some(UnaryKind::Relu),
                &format!("{name}.c2"),
            );
            // Squeeze-excitation.
            let se = b.reduce(c2, ReduceKind::Mean, vec![2, 3], true);
            let sw1 = b.weight(format!("{name}.se1"), &[w / 4, w, 1, 1], DType::F16);
            let se1 = b.conv2d(se, sw1, (1, 1), (0, 0), 1);
            let se1a = b.unary(se1, UnaryKind::Relu);
            let sw2 = b.weight(format!("{name}.se2"), &[w, w / 4, 1, 1], DType::F16);
            let se2 = b.conv2d(se1a, sw2, (1, 1), (0, 0), 1);
            let gate = b.unary(se2, UnaryKind::Sigmoid);
            let scaled = b.binary(c2, gate, BinaryKind::Mul);
            let c3 = conv_bn_act(&mut b, scaled, w, w, 1, 1, 1, None, &format!("{name}.c3"));
            let skip = if cin != w || stride != 1 {
                conv_bn_act(&mut b, cur, cin, w, 1, stride, 1, None, &format!("{name}.down"))
            } else {
                cur
            };
            let s = b.add(c3, skip);
            cur = b.unary(s, UnaryKind::Relu);
            cin = w;
        }
    }
    let logits = conv_head(&mut b, cur, cin, batch, "head");
    b.output(logits);
    b.finish()
}

/// ConvNext-T (Liu et al.): depthwise 7x7 blocks in channels-last form,
/// full of explicit permutes around the LayerNorms — the ConvNet where
/// SmartMem still wins 3.3x over DNNFusion.
pub fn convnext(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("convnext");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [96usize, 192, 384, 768];
    let depths = [3usize, 3, 9, 3];
    // Patchify stem: 4x4 stride-4 conv + channels-last LN.
    let mut cur = conv_bn_act(&mut b, x, 3, dims[0], 4, 4, 1, None, "stem");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        if si > 0 {
            // Downsample: channels-last LN + 2x2 stride-2 conv.
            let t = b.transpose(cur, &[0, 2, 3, 1]);
            let n = b.layer_norm(t, vec![3]);
            let back = b.transpose(n, &[0, 3, 1, 2]);
            cur = conv_bn_act(&mut b, back, dims[si - 1], dim, 2, 2, 1, None, &format!("down{si}"));
            res /= 2;
        }
        for d in 0..depth {
            let name = format!("s{si}.b{d}");
            let dw = conv_bn_act(&mut b, cur, dim, dim, 7, 1, dim, None, &format!("{name}.dw"));
            // channels-last: permute, LN, pointwise MLP, permute back.
            let t = b.transpose(dw, &[0, 2, 3, 1]);
            let n = b.layer_norm(t, vec![3]);
            let f = b.reshape(n, &[batch * res * res, dim]);
            let h = linear(&mut b, f, dim, 4 * dim, &format!("{name}.p1"));
            let a = b.unary(h, UnaryKind::Gelu);
            let o = linear(&mut b, a, 4 * dim, dim, &format!("{name}.p2"));
            let gamma = b.weight(format!("{name}.gamma"), &[dim], DType::F16);
            let scaled = b.binary(o, gamma, BinaryKind::Mul);
            let r = b.reshape(scaled, &[batch, res, res, dim]);
            let back = b.transpose(r, &[0, 3, 1, 2]);
            cur = b.add(cur, back);
        }
    }
    let pooled = b.reduce(cur, ReduceKind::Mean, vec![2, 3], false);
    let n = b.layer_norm(pooled, vec![1]);
    let logits = linear(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// YOLO-V8n-style detector at 640x640: CSP-like stages with split/concat
/// blocks, SPPF, and a multi-scale detection head.
pub fn yolo_v8(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("yolo-v8");
    let x = b.input("image", &[batch, 3, 640, 640], DType::F16);

    fn c2f(
        b: &mut GraphBuilder,
        x: TensorId,
        cin: usize,
        cout: usize,
        n: usize,
        name: &str,
    ) -> TensorId {
        let pre =
            conv_bn_act(b, x, cin, cout, 1, 1, 1, Some(UnaryKind::Silu), &format!("{name}.pre"));
        let parts = b.split(pre, 1, 2);
        let mut feats = vec![parts[0], parts[1]];
        let mut cur = parts[1];
        for i in 0..n {
            let h = conv_bn_act(
                b,
                cur,
                cout / 2,
                cout / 2,
                3,
                1,
                1,
                Some(UnaryKind::Silu),
                &format!("{name}.m{i}a"),
            );
            let h2 = conv_bn_act(
                b,
                h,
                cout / 2,
                cout / 2,
                3,
                1,
                1,
                Some(UnaryKind::Silu),
                &format!("{name}.m{i}b"),
            );
            cur = b.add(cur, h2);
            feats.push(cur);
        }
        let cat = b.concat(&feats, 1);
        let total = cout / 2 * (2 + n);
        conv_bn_act(b, cat, total, cout, 1, 1, 1, Some(UnaryKind::Silu), &format!("{name}.post"))
    }

    let widths = [16usize, 32, 64, 128, 256];
    let mut cur = conv_bn_act(&mut b, x, 3, widths[0], 3, 2, 1, Some(UnaryKind::Silu), "stem");
    let mut feats = Vec::new();
    for (si, win) in widths.windows(2).enumerate() {
        let (cin, cout) = (win[0], win[1]);
        cur = conv_bn_act(
            &mut b,
            cur,
            cin,
            cout,
            3,
            2,
            1,
            Some(UnaryKind::Silu),
            &format!("down{si}"),
        );
        let n = if si == 1 || si == 2 { 2 } else { 1 };
        cur = c2f(&mut b, cur, cout, cout, n, &format!("c2f{si}"));
        if si >= 1 {
            feats.push(cur);
        }
    }
    // SPPF on the last feature.
    let sp = conv_bn_act(
        &mut b,
        cur,
        widths[4],
        widths[4] / 2,
        1,
        1,
        1,
        Some(UnaryKind::Silu),
        "sppf.pre",
    );
    let p1 = b.pool2d(sp, PoolKind::Max, (5, 5), (1, 1), (2, 2));
    let p2 = b.pool2d(p1, PoolKind::Max, (5, 5), (1, 1), (2, 2));
    let p3 = b.pool2d(p2, PoolKind::Max, (5, 5), (1, 1), (2, 2));
    let cat = b.concat(&[sp, p1, p2, p3], 1);
    let neck = conv_bn_act(
        &mut b,
        cat,
        widths[4] * 2,
        widths[4],
        1,
        1,
        1,
        Some(UnaryKind::Silu),
        "sppf.post",
    );

    // PAN neck: top-down upsampling path then bottom-up aggregation.
    feats.pop();
    feats.push(neck); // feats = [P3 (64@80²), P4 (128@40²), P5 (256@20²)]
    let p5 = feats[2];
    let up5 = conv_bn_act(&mut b, p5, 256, 512, 1, 1, 1, Some(UnaryKind::Silu), "neck.up5");
    let u5 = b.depth_to_space(up5, 2); // 128@40²
    let cat4 = b.concat(&[u5, feats[1]], 1); // 256@40²
    let n4 = c2f(&mut b, cat4, 256, 128, 1, "neck.c2f4");
    let up4 = conv_bn_act(&mut b, n4, 128, 256, 1, 1, 1, Some(UnaryKind::Silu), "neck.up4");
    let u4 = b.depth_to_space(up4, 2); // 64@80²
    let cat3 = b.concat(&[u4, feats[0]], 1); // 128@80²
    let n3 = c2f(&mut b, cat3, 128, 64, 1, "neck.c2f3");
    let d3 = conv_bn_act(&mut b, n3, 64, 64, 3, 2, 1, Some(UnaryKind::Silu), "neck.d3");
    let cat4b = b.concat(&[d3, n4], 1); // 192@40²
    let n4b = c2f(&mut b, cat4b, 192, 128, 1, "neck.c2f4b");
    let d4 = conv_bn_act(&mut b, n4b, 128, 128, 3, 2, 1, Some(UnaryKind::Silu), "neck.d4");
    let cat5b = b.concat(&[d4, p5], 1); // 384@20²
    let n5b = c2f(&mut b, cat5b, 384, 256, 1, "neck.c2f5b");

    // Decoupled detection heads at three scales.
    let head_feats = [(n3, 64usize), (n4b, 128usize), (n5b, 256usize)];
    let mut outputs = Vec::new();
    for (i, &(f, c)) in head_feats.iter().enumerate() {
        let b1 =
            conv_bn_act(&mut b, f, c, 64, 3, 1, 1, Some(UnaryKind::Silu), &format!("head{i}.box1"));
        let b2 = conv_bn_act(
            &mut b,
            b1,
            64,
            64,
            3,
            1,
            1,
            Some(UnaryKind::Silu),
            &format!("head{i}.box2"),
        );
        let box_conv = conv_bn_act(&mut b, b2, 64, 64, 1, 1, 1, None, &format!("head{i}.box3"));
        let c1 =
            conv_bn_act(&mut b, f, c, 80, 3, 1, 1, Some(UnaryKind::Silu), &format!("head{i}.cls1"));
        let c2 = conv_bn_act(
            &mut b,
            c1,
            80,
            80,
            3,
            1,
            1,
            Some(UnaryKind::Silu),
            &format!("head{i}.cls2"),
        );
        let cls_conv = conv_bn_act(&mut b, c2, 80, 80, 1, 1, 1, None, &format!("head{i}.cls3"));
        let catd = b.concat(&[box_conv, cls_conv], 1);
        let res = 640 / (8 << i);
        let flat = b.reshape(catd, &[batch, 144, res * res]);
        outputs.push(flat);
    }
    let all = b.concat(&outputs, 2);
    let sig = b.unary(all, UnaryKind::Sigmoid);
    b.output(sig);
    b.finish()
}

/// Fast-style-transfer network (Johnson et al.) at 1024x1024 — the
/// Table 1 model whose InstanceNorms trigger massive implicit
/// transformations in MNN (Fig. 1b).
pub fn fst(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("fst");
    let x = b.input("image", &[batch, 3, 1024, 1024], DType::F16);
    let c1 = conv_bn_act(&mut b, x, 3, 32, 9, 1, 1, None, "c1");
    let n1 = b.instance_norm(c1);
    let a1 = b.unary(n1, UnaryKind::Relu);
    let c2 = conv_bn_act(&mut b, a1, 32, 64, 3, 2, 1, None, "c2");
    let n2 = b.instance_norm(c2);
    let a2 = b.unary(n2, UnaryKind::Relu);
    let c3 = conv_bn_act(&mut b, a2, 64, 128, 3, 2, 1, None, "c3");
    let n3 = b.instance_norm(c3);
    let mut cur = b.unary(n3, UnaryKind::Relu);
    for i in 0..5 {
        let r1 = conv_bn_act(&mut b, cur, 128, 128, 3, 1, 1, None, &format!("res{i}.a"));
        let rn1 = b.instance_norm(r1);
        let ra = b.unary(rn1, UnaryKind::Relu);
        let r2 = conv_bn_act(&mut b, ra, 128, 128, 3, 1, 1, None, &format!("res{i}.b"));
        let rn2 = b.instance_norm(r2);
        cur = b.add(cur, rn2);
    }
    // Upsampling via conv + depth-to-space (the explicit transforms of
    // Table 1's "32 layout transform" count).
    let u1 = conv_bn_act(&mut b, cur, 128, 256, 3, 1, 1, None, "up1");
    let d1 = b.depth_to_space(u1, 2);
    let un1 = b.instance_norm(d1);
    let ua1 = b.unary(un1, UnaryKind::Relu);
    let u2 = conv_bn_act(&mut b, ua1, 64, 128, 3, 1, 1, None, "up2");
    let d2 = b.depth_to_space(u2, 2);
    let un2 = b.instance_norm(d2);
    let ua2 = b.unary(un2, UnaryKind::Relu);
    let out = conv_bn_act(&mut b, ua2, 32, 3, 9, 1, 1, Some(UnaryKind::Tanh), "out");
    b.output(out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmacs(g: &Graph) -> f64 {
        g.total_macs() as f64 / 1e9
    }
    fn mparams(g: &Graph) -> f64 {
        g.param_count() as f64 / 1e6
    }

    #[test]
    fn resnet50_macs_match_paper() {
        let g = resnet50(1);
        assert!((3.0..5.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.1G
        assert!((20.0..32.0).contains(&mparams(&g)), "got {}", mparams(&g));
        assert!(g.layout_transform_count() <= 5); // Table 1: 3 transforms
    }

    #[test]
    fn resnext_macs() {
        let g = resnext50(1);
        assert!((3.4..6.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.3G
        assert!((80..210).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 122
    }

    #[test]
    fn regnet_shape_and_macs() {
        let g = regnet(1);
        assert!((2.2..4.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 3.2G
        assert!((180..380).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 282
    }

    #[test]
    fn convnext_has_many_transforms() {
        let g = convnext(1);
        assert!((3.2..6.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.5G
        assert!(g.layout_transform_count() > 30, "channels-last permutes expected");
        assert!((200..400).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 292
    }

    #[test]
    fn yolo_structure() {
        let g = yolo_v8(1);
        assert!((2.8..6.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.4G
        assert!((150..320).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 233
        assert!((2.0..6.0).contains(&mparams(&g)), "got {}", mparams(&g)); // paper: 3.2M
    }

    #[test]
    fn fst_is_transform_heavy_and_huge() {
        let g = fst(1);
        assert!((100.0..220.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 162G
        assert!(g.nodes().iter().any(|n| matches!(n.op, smartmem_ir::Op::DepthToSpace { .. })));
        assert!(
            g.nodes().iter().filter(|n| matches!(n.op, smartmem_ir::Op::InstanceNorm)).count()
                >= 10
        );
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let g1 = resnet50(1);
        let g4 = resnet50(4);
        assert_eq!(g4.total_macs(), 4 * g1.total_macs());
    }
}
