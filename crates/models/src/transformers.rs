//! Transformer models: Swin, ViT, CSwin, CrossFormer, AutoFormer,
//! FlattenFormer, SMTFormer and BiFormer.
//!
//! Architectural hyper-parameters follow the published variants the
//! paper evaluates (Swin-T, ViT-B/16, CSwin-S, CrossFormer-S, …); the
//! builders reproduce the operator-level structure, including every
//! explicit reshape/transpose the exported graphs contain.

use crate::blocks::{
    cls_head, linear, mha, mlp, patch_embed, patch_merging, roll, stripe_partition, stripe_reverse,
    transformer_block, window_partition, window_reverse,
};
use smartmem_ir::{BinaryKind, DType, Graph, GraphBuilder, ReduceKind, TensorId, UnaryKind};

/// One Swin block: LN → (shift) → window partition → W-MSA → reverse →
/// (unshift) → +res → LN → MLP → +res.
#[allow(clippy::too_many_arguments)]
fn swin_block(
    b: &mut GraphBuilder,
    x: TensorId, // [B, H*W, C]
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    heads: usize,
    win: usize,
    shift: bool,
    name: &str,
) -> TensorId {
    let n1 = b.layer_norm(x, vec![2]);
    let spatial = b.reshape(n1, &[batch, h, w, c]);
    let shifted = if shift {
        let r1 = roll(b, spatial, 1, h, win / 2);
        roll(b, r1, 2, w, win / 2)
    } else {
        spatial
    };
    let wins = window_partition(b, shifted, batch, h, w, c, win);
    let nw = (h / win) * (w / win);
    let a = mha(b, wins, batch * nw, win * win, c, heads, &format!("{name}.wmsa"));
    let back = window_reverse(b, a, batch, h, w, c, win);
    let unshifted = if shift {
        let r1 = roll(b, back, 1, h, h - win / 2);
        roll(b, r1, 2, w, w - win / 2)
    } else {
        back
    };
    let flat = b.reshape(unshifted, &[batch, h * w, c]);
    let r1 = b.add(x, flat);
    let n2 = b.layer_norm(r1, vec![2]);
    let m = mlp(b, n2, c, 4 * c, &format!("{name}.mlp"));
    b.add(r1, m)
}

/// Swin-T (Liu et al.): dims 96/192/384/768, depths 2/2/6/2, window 7.
pub fn swin_tiny(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("swin-t");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [96usize, 192, 384, 768];
    let depths = [2usize, 2, 6, 2];
    let heads = [3usize, 6, 12, 24];
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 4, dims[0], "embed");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            cur = swin_block(
                &mut b,
                cur,
                batch,
                res,
                res,
                dim,
                heads[si],
                7,
                d % 2 == 1,
                &format!("s{si}.b{d}"),
            );
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// ViT-B/16 (Dosovitskiy et al.): 12 global-attention blocks, dim 768.
pub fn vit(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("vit");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dim = 768;
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 16, dim, "embed");
    let pos = b.weight("pos", &[196, dim], DType::F16);
    cur = b.add(cur, pos);
    for d in 0..12 {
        cur = transformer_block(&mut b, cur, batch, 196, dim, 12, 4, &format!("blk{d}"));
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dim, 1000, "head");
    b.output(logits);
    b.finish()
}

/// One CSwin block: parallel horizontal/vertical stripe attention on
/// half the channels each, with a depthwise LePE convolution per branch.
#[allow(clippy::too_many_arguments)]
fn cswin_block(
    b: &mut GraphBuilder,
    x: TensorId, // [B, H*W, C]
    batch: usize,
    h: usize,
    w: usize,
    c: usize,
    heads: usize,
    split: usize,
    name: &str,
) -> TensorId {
    let n1 = b.layer_norm(x, vec![2]);
    let qkv = linear(b, n1, c, 3 * c, &format!("{name}.qkv"));
    let spatial = b.reshape(qkv, &[batch, h, w, 3 * c]);
    let halves = b.split(spatial, 3, 2); // two branches of 3*C/2
    let c2 = c / 2;
    let mut outs = Vec::new();
    for (bi, &half) in halves.iter().enumerate() {
        let (sh, sw) = if bi == 0 { (split.min(h), w) } else { (h, split.min(w)) };
        let stripes = stripe_partition(b, half, batch, h, w, 3 * c2, sh, sw);
        let seq = sh * sw;
        let nst = (h / sh) * (w / sw);
        let qkv3 = b.reshape(stripes, &[batch * nst, seq, 3, c2]);
        let t = b.transpose(qkv3, &[2, 0, 1, 3]);
        let parts = b.split(t, 0, 3);
        let q = b.reshape(parts[0], &[batch * nst, seq, c2]);
        let k = b.reshape(parts[1], &[batch * nst, seq, c2]);
        let v = b.reshape(parts[2], &[batch * nst, seq, c2]);
        let attn = b.matmul_t(q, k, false, true);
        let p = b.softmax(attn, 2);
        let o = b.matmul(p, v);
        // LePE: depthwise 3x3 on V in spatial form, added to the output.
        let vsp = stripe_reverse(b, v, batch, h, w, c2, sh, sw);
        let vchw = b.transpose(vsp, &[0, 3, 1, 2]);
        let wdw = b.weight(format!("{name}.lepe{bi}"), &[c2, 1, 3, 3], DType::F16);
        let lepe = b.conv2d(vchw, wdw, (1, 1), (1, 1), c2);
        let lhwc = b.transpose(lepe, &[0, 2, 3, 1]);
        let lstripes = stripe_partition(b, lhwc, batch, h, w, c2, sh, sw);
        let sum = b.add(o, lstripes);
        let back = stripe_reverse(b, sum, batch, h, w, c2, sh, sw);
        outs.push(back);
        let _ = heads;
    }
    let cat = b.concat(&outs, 3);
    let flat = b.reshape(cat, &[batch, h * w, c]);
    let proj = linear(b, flat, c, c, &format!("{name}.proj"));
    let r1 = b.add(x, proj);
    let n2 = b.layer_norm(r1, vec![2]);
    let m = mlp(b, n2, c, 4 * c, &format!("{name}.mlp"));
    b.add(r1, m)
}

/// CSwin-S (Dong et al.): dim 64, depths 2/4/32/2, cross-shaped stripe
/// attention — the most operator-heavy model of Table 7.
pub fn cswin(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("cswin");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [64usize, 128, 256, 512];
    let depths = [2usize, 4, 32, 2];
    let heads = [2usize, 4, 8, 16];
    let splits = [1usize, 2, 7, 7];
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 4, dims[0], "embed");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            cur = cswin_block(
                &mut b,
                cur,
                batch,
                res,
                res,
                dim,
                heads[si],
                if si == 3 { res } else { splits[si] },
                &format!("s{si}.b{d}"),
            );
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// CrossFormer-S (Wang et al.): cross-scale patch embeddings (parallel
/// convs of different kernel sizes concatenated) and alternating
/// short-/long-distance window attention.
pub fn crossformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("crossformer");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [96usize, 192, 384, 768];
    let depths = [2usize, 2, 6, 2];
    let heads = [3usize, 6, 12, 24];
    // Cross-scale embedding: 4 convs (4/8/16/32 kernels) concatenated.
    let mut embeds = Vec::new();
    for (i, k) in [4usize, 8, 16, 32].iter().enumerate() {
        let cdim = dims[0] / 4;
        let w = b.weight(format!("cel{i}.w"), &[cdim, 3, *k, *k], DType::F16);
        let pad = (*k - 4) / 2;
        let c = b.conv2d(x, w, (4, 4), (pad, pad), 1);
        embeds.push(c);
    }
    let cat = b.concat(&embeds, 1);
    let r = b.reshape(cat, &[batch, dims[0], 56 * 56]);
    let t = b.transpose(r, &[0, 2, 1]);
    let mut cur = b.layer_norm(t, vec![2]);
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            let name = format!("s{si}.b{d}");
            let n1 = b.layer_norm(cur, vec![2]);
            let spatial = b.reshape(n1, &[batch, res, res, dim]);
            let g = 7usize.min(res);
            // SDA: contiguous windows; LDA: dilated groups, which the
            // exporter lowers as an extra transpose pair.
            let wins = if d % 2 == 0 {
                window_partition(&mut b, spatial, batch, res, res, dim, g)
            } else {
                let rr = b.reshape(spatial, &[batch, g, res / g, g, res / g, dim]);
                let tt = b.transpose(rr, &[0, 2, 4, 1, 3, 5]);
                b.reshape(tt, &[batch * (res / g) * (res / g), g * g, dim])
            };
            let nw = (res / g) * (res / g);
            let a = mha(&mut b, wins, batch * nw, g * g, dim, heads[si], &format!("{name}.attn"));
            let back = if d % 2 == 0 {
                window_reverse(&mut b, a, batch, res, res, dim, g)
            } else {
                let rr = b.reshape(a, &[batch, res / g, res / g, g, g, dim]);
                let tt = b.transpose(rr, &[0, 3, 1, 4, 2, 5]);
                b.reshape(tt, &[batch, res, res, dim])
            };
            let flat = b.reshape(back, &[batch, res * res, dim]);
            let r1 = b.add(cur, flat);
            let n2 = b.layer_norm(r1, vec![2]);
            let m = mlp(&mut b, n2, dim, 4 * dim, &format!("{name}.mlp"));
            cur = b.add(r1, m);
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// AutoFormer (searched ViT supernet, small config): 13 plain blocks
/// with searched dims.
pub fn autoformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("autoformer");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dim = 448;
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 16, dim, "embed");
    let pos = b.weight("pos", &[196, dim], DType::F16);
    cur = b.add(cur, pos);
    for d in 0..13 {
        // Searched mlp ratios alternate between 3 and 4.
        let ratio = if d % 2 == 0 { 3 } else { 4 };
        cur = transformer_block(&mut b, cur, batch, 196, dim, 7, ratio, &format!("blk{d}"));
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dim, 1000, "head");
    b.output(logits);
    b.finish()
}

/// FLatten-Swin-S (Han et al., "FlattenFormer"): Swin-S layout with
/// focused linear attention (kernelized q/k, attention computed as
/// `q·(kᵀv)` plus a depthwise rank-restore convolution).
pub fn flattenformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("flattenformer");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [96usize, 192, 384, 768];
    let depths = [2usize, 2, 18, 2];
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 4, dims[0], "embed");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            let name = format!("s{si}.b{d}");
            let n1 = b.layer_norm(cur, vec![2]);
            let spatial = b.reshape(n1, &[batch, res, res, dim]);
            let win = 7usize.min(res);
            let wins = window_partition(&mut b, spatial, batch, res, res, dim, win);
            let nw = (res / win) * (res / win);
            let seq = win * win;
            // Focused linear attention.
            let qkv = linear(&mut b, wins, dim, 3 * dim, &format!("{name}.qkv"));
            let parts = b.split(qkv, 2, 3);
            let q = b.unary(parts[0], UnaryKind::Relu);
            let k = b.unary(parts[1], UnaryKind::Relu);
            let kv = b.matmul_t(k, parts[2], true, false); // [B', dim, dim]
            let o = b.matmul(q, kv); // [B', seq, dim]
            let norm = b.reduce(k, ReduceKind::Sum, vec![1], true);
            let qn = b.matmul_t(q, norm, false, true);
            let scaled = b.binary(o, qn, BinaryKind::Div);
            // Depthwise rank restoration on V.
            let vsp = stripe_reverse(&mut b, parts[2], batch, res, res, dim, win, win);
            let vchw = b.transpose(vsp, &[0, 3, 1, 2]);
            let wdw = b.weight(format!("{name}.dwc"), &[dim, 1, 3, 3], DType::F16);
            let dwc = b.conv2d(vchw, wdw, (1, 1), (1, 1), dim);
            let dhwc = b.transpose(dwc, &[0, 2, 3, 1]);
            let dwin = stripe_partition(&mut b, dhwc, batch, res, res, dim, win, win);
            let sum = b.add(scaled, dwin);
            let proj = linear(&mut b, sum, dim, dim, &format!("{name}.proj"));
            let back = window_reverse(&mut b, proj, batch, res, res, dim, win);
            let flat = b.reshape(back, &[batch, res * res, dim]);
            let r1 = b.add(cur, flat);
            let n2 = b.layer_norm(r1, vec![2]);
            let m = mlp(&mut b, n2, dim, 4 * dim, &format!("{name}.mlp"));
            cur = b.add(r1, m);
            let _ = (nw, seq);
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// SMT-S (Lin et al., "SMTFormer"): scale-aware modulation convolutions
/// in the early stages, standard attention in the late stages.
pub fn smtformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("smtformer");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [64usize, 128, 256, 512];
    let depths = [3usize, 4, 18, 2];
    let heads = [2usize, 4, 8, 16];
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 4, dims[0], "embed");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        for d in 0..depth {
            let name = format!("s{si}.b{d}");
            if si < 2 {
                // Scale-aware modulation: multi-scale depthwise convs,
                // aggregated and gated.
                let n1 = b.layer_norm(cur, vec![2]);
                let spatial = b.reshape(n1, &[batch, res, res, dim]);
                let chw = b.transpose(spatial, &[0, 3, 1, 2]);
                let mut scales = Vec::new();
                let parts = b.split(chw, 1, 2);
                for (pi, &part) in parts.iter().enumerate() {
                    let k = 3 + 2 * pi;
                    let wdw = b.weight(format!("{name}.dw{pi}"), &[dim / 2, 1, k, k], DType::F16);
                    let c = b.conv2d(part, wdw, (1, 1), (k / 2, k / 2), dim / 2);
                    scales.push(c);
                }
                let cat = b.concat(&scales, 1);
                let wpw = b.weight(format!("{name}.pw"), &[dim, dim, 1, 1], DType::F16);
                let mixed = b.conv2d(cat, wpw, (1, 1), (0, 0), 1);
                let gate = b.unary(mixed, UnaryKind::Gelu);
                let modulated = b.mul(chw, gate);
                let hwc = b.transpose(modulated, &[0, 2, 3, 1]);
                let flat = b.reshape(hwc, &[batch, res * res, dim]);
                let proj = linear(&mut b, flat, dim, dim, &format!("{name}.proj"));
                let r1 = b.add(cur, proj);
                let n2 = b.layer_norm(r1, vec![2]);
                let m = mlp(&mut b, n2, dim, 4 * dim, &format!("{name}.mlp"));
                cur = b.add(r1, m);
            } else {
                cur = transformer_block(&mut b, cur, batch, res * res, dim, heads[si], 4, &name);
            }
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

/// BiFormer-S (Zhu et al.): bi-level routing attention — region-level
/// routing (pool + matmul + gather of the top-k regions) followed by
/// token attention within gathered regions, plus a depthwise LCE path.
pub fn biformer(batch: usize) -> Graph {
    let mut b = GraphBuilder::new("biformer");
    let x = b.input("image", &[batch, 3, 224, 224], DType::F16);
    let dims = [64usize, 128, 256, 512];
    let depths = [4usize, 4, 18, 4];
    let mut cur = patch_embed(&mut b, x, batch, 3, 224, 4, dims[0], "embed");
    let mut res = 56usize;
    for (si, (&dim, &depth)) in dims.iter().zip(depths.iter()).enumerate() {
        let regions = 7usize; // S^2 = 49 regions
        for d in 0..depth {
            let name = format!("s{si}.b{d}");
            let n1 = b.layer_norm(cur, vec![2]);
            let spatial = b.reshape(n1, &[batch, res, res, dim]);
            let rwins = stripe_partition(
                &mut b,
                spatial,
                batch,
                res,
                res,
                dim,
                res / regions,
                res / regions,
            );
            let nreg = regions * regions;
            let rtok = (res / regions) * (res / regions);
            // qkv per token.
            let qkv = linear(&mut b, rwins, dim, 3 * dim, &format!("{name}.qkv"));
            let parts = b.split(qkv, 2, 3);
            // Region-level routing: mean-pool q,k per region.
            let qr = b.reshape(parts[0], &[batch, nreg, rtok, dim]);
            let qm = b.reduce(qr, ReduceKind::Mean, vec![2], false); // [B, nreg, dim]
            let kr = b.reshape(parts[1], &[batch, nreg, rtok, dim]);
            let km = b.reduce(kr, ReduceKind::Mean, vec![2], false);
            let adj = b.matmul_t(qm, km, false, true); // [B, nreg, nreg]
            let routes = b.softmax(adj, 2);
            // Top-k routing (k = 4): keep the strongest 4 regions per
            // query region, then gather their k/v tokens
            // (token-selection gathers are what makes BiFormer so
            // transformation-heavy in MNN).
            let topk = b.slice(routes, 2, 0, 4);
            let kflat = b.reshape(parts[1], &[batch * nreg, rtok * dim]);
            let vflat = b.reshape(parts[2], &[batch * nreg, rtok * dim]);
            let gk = b.gather(kflat, topk, 0);
            let gv = b.gather(vflat, topk, 0);
            let gk2 = b.reshape(gk, &[batch * nreg, 4, rtok * dim]);
            let gv2 = b.reshape(gv, &[batch * nreg, 4, rtok * dim]);
            let gk3 = b.reduce(gk2, ReduceKind::Mean, vec![1], false);
            let gv3 = b.reduce(gv2, ReduceKind::Mean, vec![1], false);
            let gk4 = b.reshape(gk3, &[batch * nreg, rtok, dim]);
            let gv4 = b.reshape(gv3, &[batch * nreg, rtok, dim]);
            let q = b.reshape(parts[0], &[batch * nreg, rtok, dim]);
            let attn = b.matmul_t(q, gk4, false, true);
            let p = b.softmax(attn, 2);
            let o = b.matmul(p, gv4);
            // LCE depthwise path on V.
            let vsp = stripe_reverse(
                &mut b,
                parts[2],
                batch,
                res,
                res,
                dim,
                res / regions,
                res / regions,
            );
            let vchw = b.transpose(vsp, &[0, 3, 1, 2]);
            let wdw = b.weight(format!("{name}.lce"), &[dim, 1, 5, 5], DType::F16);
            let lce = b.conv2d(vchw, wdw, (1, 1), (2, 2), dim);
            let lhwc = b.transpose(lce, &[0, 2, 3, 1]);
            let lwin =
                stripe_partition(&mut b, lhwc, batch, res, res, dim, res / regions, res / regions);
            let sum = b.add(o, lwin);
            let proj = linear(&mut b, sum, dim, dim, &format!("{name}.proj"));
            let back =
                stripe_reverse(&mut b, proj, batch, res, res, dim, res / regions, res / regions);
            let flat = b.reshape(back, &[batch, res * res, dim]);
            let r1 = b.add(cur, flat);
            let n2 = b.layer_norm(r1, vec![2]);
            let m = mlp(&mut b, n2, dim, 3 * dim, &format!("{name}.mlp"));
            cur = b.add(r1, m);
        }
        if si < 3 {
            let spatial = b.reshape(cur, &[batch, res, res, dim]);
            cur = patch_merging(&mut b, spatial, batch, res, res, dim, &format!("merge{si}"));
            res /= 2;
        }
    }
    let n = b.layer_norm(cur, vec![2]);
    let logits = cls_head(&mut b, n, dims[3], 1000, "head");
    b.output(logits);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gmacs(g: &Graph) -> f64 {
        g.total_macs() as f64 / 1e9
    }

    #[test]
    fn swin_matches_paper_scale() {
        let g = swin_tiny(1);
        assert!((3.2..6.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.6G
        assert!((450..900).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 765
        assert!(g.layout_transform_count() > 150, "got {}", g.layout_transform_count());
        // Table 1: 242
    }

    #[test]
    fn vit_matches_paper_scale() {
        let g = vit(1);
        assert!((14.0..24.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 21G
        assert!((280..460).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 444
    }

    #[test]
    fn cswin_is_most_operator_heavy() {
        let g = cswin(1);
        assert!((4.5..9.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 6.9G
        let swin_ops = swin_tiny(1).op_count();
        assert!(g.op_count() > 2 * swin_ops, "cswin {} vs swin {}", g.op_count(), swin_ops);
    }

    #[test]
    fn crossformer_scale() {
        let g = crossformer(1);
        assert!((3.4..7.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 5.0G
        assert!((350..700).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 505
    }

    #[test]
    fn autoformer_scale() {
        let g = autoformer(1);
        assert!((3.2..7.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.7G
        assert!((250..600).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 546
    }

    #[test]
    fn flattenformer_scale() {
        let g = flattenformer(1);
        assert!((4.2..10.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 7.2G
        assert!((900..2400).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 2016
    }

    #[test]
    fn smtformer_scale() {
        let g = smtformer(1);
        assert!((3.0..7.5).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.9G
        assert!((700..1700).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 1406
    }

    #[test]
    fn biformer_scale() {
        let g = biformer(1);
        assert!((3.0..8.0).contains(&gmacs(&g)), "got {}", gmacs(&g)); // paper: 4.5G
        assert!((1100..2600).contains(&g.op_count()), "got {}", g.op_count()); // Table 7: 2042
                                                                               // Token-selection gathers present.
        assert!(g.nodes().iter().any(|n| matches!(n.op, smartmem_ir::Op::Gather { .. })));
    }

    #[test]
    fn all_graphs_validate() {
        for g in [swin_tiny(1), vit(1), autoformer(1)] {
            assert!(g.validate().is_ok());
        }
    }
}
