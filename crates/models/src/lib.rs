//! # smartmem-models
//!
//! Programmatic computational-graph builders for the 20 DNNs of the
//! SmartMem paper's evaluation: the 18 models of Tables 7–8 plus
//! ResNet50 and the style-transfer network (FST) from the Table 1
//! motivation study.
//!
//! Each builder reproduces the published architecture's operator-level
//! structure — including every explicit `Reshape`/`Transpose` chain that
//! window attention, head splitting, channels-last blocks and RoPE
//! produce — with parameter and MAC counts close to the paper's Table 7
//! characterization. All builders take the batch size as a parameter
//! (Fig. 10 sweeps Swin over batches 1–16).
//!
//! # Example
//!
//! ```
//! use smartmem_models as models;
//!
//! let swin = models::swin_tiny(1);
//! assert!(swin.layout_transform_count() > 100); // Table 1: 242
//! let entry = models::all_models().into_iter().find(|m| m.name == "Swin").unwrap();
//! assert_eq!(entry.family, models::Family::Transformer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod convnets;
mod hybrid;
mod transformers;

pub use blocks::{
    cls_head, conv_bn_act, linear, mha, mlp, patch_embed, patch_merging, roll, stripe_partition,
    stripe_reverse, transformer_block, window_partition, window_reverse,
};
pub use convnets::{convnext, fst, regnet, resnet50, resnext50, yolo_v8};
pub use hybrid::{
    conformer, decode_buckets, efficientvit, pythia, pythia_decode, sd_text_encoder, sd_unet,
    sd_vae_decoder,
};
pub use transformers::{
    autoformer, biformer, crossformer, cswin, flattenformer, smtformer, swin_tiny, vit,
};

use smartmem_ir::Graph;

/// Model family (Table 7's "Model Type" column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Pure transformer.
    Transformer,
    /// Pure convolutional network.
    ConvNet,
    /// Combined transformer + ConvNet structure.
    Hybrid,
}

/// Attention mechanism (Table 7's "Attention" column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Attention {
    /// Windowed / local attention.
    Local,
    /// Full global attention.
    Global,
    /// Causal decoder attention.
    Decoder,
    /// No attention.
    None,
}

/// One evaluated model: metadata plus its graph builder.
pub struct ModelEntry {
    /// Display name (matches the paper's tables).
    pub name: &'static str,
    /// Model family.
    pub family: Family,
    /// Attention mechanism.
    pub attention: Attention,
    /// Builder (parameterized by batch size).
    pub build: fn(usize) -> Graph,
    /// The paper's reported `#MACs (G)` (Table 7), for reference.
    pub paper_gmacs: f64,
    /// The paper's reported unoptimized operator count (Table 7).
    pub paper_ops: usize,
}

impl ModelEntry {
    /// Builds the graph at batch size 1.
    pub fn graph(&self) -> Graph {
        (self.build)(1)
    }
}

/// The 18 models of the paper's main evaluation (Tables 7–8), in table
/// order.
pub fn all_models() -> Vec<ModelEntry> {
    vec![
        ModelEntry {
            name: "AutoFormer",
            family: Family::Transformer,
            attention: Attention::Local,
            build: autoformer,
            paper_gmacs: 4.7,
            paper_ops: 546,
        },
        ModelEntry {
            name: "BiFormer",
            family: Family::Hybrid,
            attention: Attention::Local,
            build: biformer,
            paper_gmacs: 4.5,
            paper_ops: 2042,
        },
        ModelEntry {
            name: "CrossFormer",
            family: Family::Transformer,
            attention: Attention::Local,
            build: crossformer,
            paper_gmacs: 5.0,
            paper_ops: 505,
        },
        ModelEntry {
            name: "CSwin",
            family: Family::Hybrid,
            attention: Attention::Local,
            build: cswin,
            paper_gmacs: 6.9,
            paper_ops: 3863,
        },
        ModelEntry {
            name: "EfficientVit",
            family: Family::Hybrid,
            attention: Attention::Local,
            build: efficientvit,
            paper_gmacs: 5.2,
            paper_ops: 536,
        },
        ModelEntry {
            name: "FlattenFormer",
            family: Family::Hybrid,
            attention: Attention::Local,
            build: flattenformer,
            paper_gmacs: 7.2,
            paper_ops: 2016,
        },
        ModelEntry {
            name: "SMTFormer",
            family: Family::Hybrid,
            attention: Attention::Local,
            build: smtformer,
            paper_gmacs: 4.9,
            paper_ops: 1406,
        },
        ModelEntry {
            name: "Swin",
            family: Family::Transformer,
            attention: Attention::Local,
            build: swin_tiny,
            paper_gmacs: 4.6,
            paper_ops: 765,
        },
        ModelEntry {
            name: "ViT",
            family: Family::Transformer,
            attention: Attention::Global,
            build: vit,
            paper_gmacs: 21.0,
            paper_ops: 444,
        },
        ModelEntry {
            name: "Conformer",
            family: Family::Hybrid,
            attention: Attention::Global,
            build: conformer,
            paper_gmacs: 12.0,
            paper_ops: 665,
        },
        ModelEntry {
            name: "SD-TextEncoder",
            family: Family::Transformer,
            attention: Attention::Global,
            build: sd_text_encoder,
            paper_gmacs: 6.7,
            paper_ops: 674,
        },
        ModelEntry {
            name: "SD-UNet",
            family: Family::Hybrid,
            attention: Attention::Global,
            build: sd_unet,
            paper_gmacs: 90.0,
            paper_ops: 1962,
        },
        ModelEntry {
            name: "SD-VAEDecoder",
            family: Family::Hybrid,
            attention: Attention::Global,
            build: sd_vae_decoder,
            paper_gmacs: 312.0,
            paper_ops: 287,
        },
        ModelEntry {
            name: "Pythia",
            family: Family::Transformer,
            attention: Attention::Decoder,
            build: pythia,
            paper_gmacs: 119.0,
            paper_ops: 1853,
        },
        ModelEntry {
            name: "ConvNext",
            family: Family::ConvNet,
            attention: Attention::None,
            build: convnext,
            paper_gmacs: 4.5,
            paper_ops: 292,
        },
        ModelEntry {
            name: "RegNet",
            family: Family::ConvNet,
            attention: Attention::None,
            build: regnet,
            paper_gmacs: 3.2,
            paper_ops: 282,
        },
        ModelEntry {
            name: "ResNext",
            family: Family::ConvNet,
            attention: Attention::None,
            build: resnext50,
            paper_gmacs: 4.3,
            paper_ops: 122,
        },
        ModelEntry {
            name: "Yolo-V8",
            family: Family::ConvNet,
            attention: Attention::None,
            build: yolo_v8,
            paper_gmacs: 4.4,
            paper_ops: 233,
        },
    ]
}

/// The Table 1 motivation set (adds ResNet50 and FST to a subset of the
/// main models).
pub fn table1_models() -> Vec<ModelEntry> {
    let mut v = vec![
        ModelEntry {
            name: "ResNet50",
            family: Family::ConvNet,
            attention: Attention::None,
            build: resnet50,
            paper_gmacs: 4.1,
            paper_ops: 126,
        },
        ModelEntry {
            name: "FST",
            family: Family::ConvNet,
            attention: Attention::None,
            build: fst,
            paper_gmacs: 162.0,
            paper_ops: 63,
        },
        ModelEntry {
            name: "RegNet",
            family: Family::ConvNet,
            attention: Attention::None,
            build: regnet,
            paper_gmacs: 3.2,
            paper_ops: 282,
        },
    ];
    let keep =
        ["CrossFormer", "Swin", "AutoFormer", "CSwin", "SD-TextEncoder", "SD-UNet", "Pythia"];
    v.extend(all_models().into_iter().filter(|m| keep.contains(&m.name)));
    v
}

/// Looks a model up by its table name.
pub fn by_name(name: &str) -> Option<ModelEntry> {
    all_models().into_iter().chain(table1_models()).find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table7() {
        let models = all_models();
        assert_eq!(models.len(), 18);
        let transformers = models.iter().filter(|m| m.family == Family::Transformer).count();
        let convnets = models.iter().filter(|m| m.family == Family::ConvNet).count();
        let hybrids = models.iter().filter(|m| m.family == Family::Hybrid).count();
        assert_eq!((transformers, convnets, hybrids), (6, 4, 8));
    }

    #[test]
    fn every_model_builds_and_validates() {
        for m in all_models() {
            let g = m.graph();
            assert!(g.validate().is_ok(), "{} invalid", m.name);
            assert!(g.op_count() > 50, "{} suspiciously small", m.name);
        }
    }

    #[test]
    fn transformer_models_are_transform_heavy() {
        // The paper's core observation (Table 1): transformer graphs
        // contain 1-2 orders of magnitude more explicit layout
        // transformations than ConvNets.
        let swin = swin_tiny(1);
        let resnet = resnet50(1);
        assert!(swin.layout_transform_count() > 20 * resnet.layout_transform_count());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("swin").is_some());
        assert!(by_name("ResNet50").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn macs_within_2x_of_paper() {
        for m in all_models() {
            let g = m.graph();
            let gmacs = g.total_macs() as f64 / 1e9;
            let ratio = gmacs / m.paper_gmacs;
            assert!(
                (0.45..2.2).contains(&ratio),
                "{}: built {gmacs:.1}G vs paper {:.1}G",
                m.name,
                m.paper_gmacs
            );
        }
    }
}
