//! Property-based tests for index expressions and maps.
//!
//! The load-bearing invariant of the whole LTE pass is that strength
//! reduction never changes the value of an index computation for any
//! in-range coordinate. These tests exercise it with random expression
//! trees and random reshape/transpose/slice chains.

use proptest::prelude::*;
use smartmem_index::{IndexExpr, IndexMap};

/// Random expression trees over 3 variables with extents from `ext()`.
fn arb_expr(depth: u32) -> BoxedStrategy<IndexExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(IndexExpr::var),
        (0i64..64).prop_map(IndexExpr::constant),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IndexExpr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IndexExpr::mul(a, b)),
            (inner.clone(), 1i64..32).prop_map(|(a, c)| IndexExpr::div(a, IndexExpr::constant(c))),
            (inner, 1i64..32).prop_map(|(a, c)| IndexExpr::rem(a, IndexExpr::constant(c))),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// simplify() must preserve the value for every in-range assignment.
    #[test]
    fn simplify_preserves_eval(e in arb_expr(4), ext in prop::array::uniform3(1usize..9)) {
        let s = e.simplify(&ext);
        // Sample the whole (small) domain.
        for v0 in 0..ext[0] {
            for v1 in 0..ext[1] {
                for v2 in 0..ext[2] {
                    let vars = [v0 as i64, v1 as i64, v2 as i64];
                    prop_assert_eq!(
                        e.eval(&vars),
                        s.eval(&vars),
                        "expr {} simplified to {} differs at {:?}", e, s, vars
                    );
                }
            }
        }
    }

    /// simplify() never increases the weighted op cost.
    #[test]
    fn simplify_never_costlier(e in arb_expr(4), ext in prop::array::uniform3(1usize..9)) {
        let s = e.simplify(&ext);
        prop_assert!(s.cost().weighted() <= e.cost().weighted() + 1e-9);
    }

    /// The range analysis is sound: every evaluated value lies inside.
    #[test]
    fn range_is_sound(e in arb_expr(3), ext in prop::array::uniform3(1usize..6)) {
        let r = e.range(&ext);
        for v0 in 0..ext[0] {
            for v1 in 0..ext[1] {
                for v2 in 0..ext[2] {
                    let v = e.eval(&[v0 as i64, v1 as i64, v2 as i64]);
                    prop_assert!(v >= r.min && v <= r.max,
                        "value {} of {} outside [{}, {}]", v, e, r.min, r.max);
                }
            }
        }
    }
}

/// Random shapes with bounded element count, as factor lists.
fn arb_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

fn enumerate_coords(extents: &[usize]) -> Vec<Vec<usize>> {
    let mut coords = vec![vec![]];
    for &e in extents {
        let mut next = Vec::new();
        for c in &coords {
            for v in 0..e {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        coords = next;
    }
    coords
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A reshape map agrees with linearize/delinearize for every
    /// coordinate, and simplification keeps it that way.
    #[test]
    fn reshape_map_correct(from in arb_shape(), split in 1usize..5) {
        let numel: usize = from.iter().product();
        // Build a "to" shape by factoring numel differently.
        let to = if numel % split == 0 { vec![split, numel / split] } else { vec![numel] };
        let m = IndexMap::reshape(&from, &to);
        let s = m.simplify();
        let from_strides: Vec<usize> = {
            let mut st = vec![1usize; from.len()];
            for i in (0..from.len().saturating_sub(1)).rev() { st[i] = st[i+1] * from[i+1]; }
            st
        };
        let to_strides: Vec<usize> = {
            let mut st = vec![1usize; to.len()];
            for i in (0..to.len().saturating_sub(1)).rev() { st[i] = st[i+1] * to[i+1]; }
            st
        };
        for coord in enumerate_coords(&to) {
            let lin: usize = coord.iter().zip(&to_strides).map(|(c, s)| c * s).sum();
            let expect: Vec<usize> = from_strides.iter().zip(&from).map(|(&st, &d)| (lin / st) % d).collect();
            prop_assert_eq!(m.eval(&coord), expect.clone());
            prop_assert_eq!(s.eval(&coord), expect);
        }
    }

    /// Composition of two random reshapes equals sequential evaluation,
    /// before and after simplification.
    #[test]
    fn composition_matches_sequential(from in arb_shape()) {
        let numel: usize = from.iter().product();
        let mid = vec![numel];
        let to = vec![1, numel];
        let a = IndexMap::reshape(&from, &mid);
        let b = IndexMap::reshape(&mid, &to);
        let chain = a.then(&b);
        let chain_s = chain.simplify();
        for coord in enumerate_coords(&to) {
            let seq = a.eval(&b.eval(&coord));
            prop_assert_eq!(chain.eval(&coord), seq.clone());
            prop_assert_eq!(chain_s.eval(&coord), seq);
        }
    }

    /// transpose . transpose⁻¹ composes to the identity after
    /// simplification.
    #[test]
    fn transpose_roundtrip(extents in prop::collection::vec(1usize..6, 2..5), seed in 0u64..1000) {
        // Derive a permutation from the seed.
        let rank = extents.len();
        let mut perm: Vec<usize> = (0..rank).collect();
        let mut s = seed;
        for i in (1..rank).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut inv = vec![0usize; rank];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let fwd = IndexMap::transpose(&extents, &perm);
        let permuted: Vec<usize> = perm.iter().map(|&p| extents[p]).collect();
        let back = IndexMap::transpose(&permuted, &inv);
        let roundtrip = fwd.then(&back).simplify();
        prop_assert!(roundtrip.is_identity(), "got {}", roundtrip);
    }
}
