//! # smartmem-index
//!
//! The *index comprehension* engine of the SmartMem reproduction
//! (§3.2.1 of the paper, Fig. 3).
//!
//! When SmartMem eliminates a chain of layout-transformation operators
//! (`Reshape`, `Transpose`, `SpaceToDepth`, …), the chain is replaced by
//! an *index computation*: every access of the surviving consumer routes
//! through a symbolic coordinate mapping from its iteration space back to
//! the producer's physical tensor. Left naive, these mappings are stacks
//! of linearize/delinearize steps full of `/` and `%` — expensive on
//! GPUs. This crate provides:
//!
//! * [`IndexExpr`] — symbolic integer expressions over coordinate
//!   variables (`+`, `*`, floor-`/`, `%`).
//! * Range-aware **strength reduction** ([`IndexExpr::simplify`])
//!   implementing the paper's rules, e.g. `i % Ca % Cb → i % Cb` when
//!   `Ca % Cb == 0`, `(a·c + b) / c → a + b/c`, and range-based
//!   elimination (`e % m → e` when `e < m`).
//! * [`IndexMap`] — multi-dimensional coordinate maps with constructors
//!   for every Fixed-output operator and composition for operator chains.
//! * Index **dependency classification** ([`IndexMap::classify`]) into
//!   identity / split / merge, as in Fig. 3.
//!
//! # Example: Fig. 3 of the paper
//!
//! ```
//! use smartmem_index::IndexMap;
//!
//! // Reshape [2, 256, 4] -> [16, 8, 4, 4], then Transpose to [16, 4, 8, 4].
//! let reshape = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
//! let transpose = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
//! let chain = reshape.then(&transpose).simplify();
//!
//! // The composed map pulls a coordinate of the final [16, 4, 8, 4]
//! // tensor back to the original [2, 256, 4] tensor.
//! assert_eq!(chain.out_extents(), &[16, 4, 8, 4]);
//! assert_eq!(chain.in_rank(), 3);
//! // Strength reduction removes most of the div/mod chains:
//! assert!(chain.cost().divmods() <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expr;
mod intern;
mod map;
mod simplify;
mod wire;

pub use expr::{ExprCost, ExprView, IndexExpr, Range};
pub use map::{DepKind, IndexMap};
