//! Multi-dimensional coordinate maps for layout-transformation chains.

use crate::expr::{self, ExprCost, IndexExpr};
use std::fmt;

/// Index dependency kind of one input dimension with respect to the
/// output iteration space (Fig. 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Input dim equals one output variable (`=`).
    Identity,
    /// Input dim is carved out of a single output variable via `/`, `%`
    /// (one variable, non-trivial expression).
    Split,
    /// Input dim combines several output variables via `*`, `+`.
    Merge,
    /// Input dim is a constant (e.g. a sliced singleton).
    Constant,
}

/// A pull-back coordinate map for one operator (or a fused chain):
/// given a coordinate in the *output* tensor's iteration space, yields
/// the coordinate of the element read from the *input* tensor.
///
/// Maps compose with [`IndexMap::then`] along dataflow order, which is
/// how SmartMem replaces an eliminated `Reshape`/`Transpose`/… chain by
/// a single index computation attached to the surviving edge (§3.2.1).
///
/// Component expressions are hash-consed handles (see [`IndexExpr`]),
/// so cloning a map copies a few machine words per dimension and
/// composition shares subterms instead of deep-cloning trees.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IndexMap {
    in_extents: Vec<usize>,
    out_extents: Vec<usize>,
    /// `exprs[j]` computes input coordinate `j` from output variables.
    exprs: Vec<IndexExpr>,
}

impl IndexMap {
    /// Builds a map from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `exprs.len() != in_extents.len()`.
    pub fn from_parts(
        in_extents: Vec<usize>,
        out_extents: Vec<usize>,
        exprs: Vec<IndexExpr>,
    ) -> Self {
        assert_eq!(exprs.len(), in_extents.len(), "one expression per input dim");
        IndexMap { in_extents, out_extents, exprs }
    }

    /// Identity map over `extents`.
    pub fn identity(extents: &[usize]) -> Self {
        IndexMap {
            in_extents: extents.to_vec(),
            out_extents: extents.to_vec(),
            exprs: (0..extents.len()).map(IndexExpr::var).collect(),
        }
    }

    /// Map of a `Reshape` from `from` to `to` (row-major element order
    /// preserved): output coordinates are linearized with `to` strides
    /// and delinearized with `from` strides.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(from: &[usize], to: &[usize]) -> Self {
        let numel = |d: &[usize]| d.iter().map(|&x| x as u64).product::<u64>();
        assert_eq!(numel(from), numel(to), "reshape must preserve element count");
        // L = sum(o_i * stride_to_i)
        let mut to_strides = vec![1i64; to.len()];
        for i in (0..to.len().saturating_sub(1)).rev() {
            to_strides[i] = to_strides[i + 1] * to[i + 1] as i64;
        }
        let mut linear = IndexExpr::constant(0);
        for (i, &s) in to_strides.iter().enumerate() {
            linear =
                IndexExpr::add(linear, IndexExpr::mul(IndexExpr::var(i), IndexExpr::constant(s)));
        }
        let mut from_strides = vec![1i64; from.len()];
        for i in (0..from.len().saturating_sub(1)).rev() {
            from_strides[i] = from_strides[i + 1] * from[i + 1] as i64;
        }
        // `linear` is shared (not cloned) across all components — the
        // arena stores the sum once.
        let exprs = from_strides
            .iter()
            .zip(from.iter())
            .map(|(&stride, &extent)| {
                IndexExpr::rem(
                    IndexExpr::div(linear, IndexExpr::constant(stride)),
                    IndexExpr::constant(extent as i64),
                )
            })
            .collect();
        IndexMap { in_extents: from.to_vec(), out_extents: to.to_vec(), exprs }
    }

    /// Map of a `Transpose` with permutation `perm` applied to an input
    /// of `in_extents` (`out.dim(i) == in.dim(perm[i])`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn transpose(in_extents: &[usize], perm: &[usize]) -> Self {
        let rank = in_extents.len();
        assert_eq!(perm.len(), rank, "perm rank mismatch");
        let mut inv = vec![usize::MAX; rank];
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < rank && inv[p] == usize::MAX, "invalid permutation {perm:?}");
            inv[p] = i;
        }
        let out_extents: Vec<usize> = perm.iter().map(|&p| in_extents[p]).collect();
        let exprs = inv.into_iter().map(IndexExpr::var).collect();
        IndexMap { in_extents: in_extents.to_vec(), out_extents, exprs }
    }

    /// Map of a `Slice` along `axis` starting at `start` keeping `len`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the axis extent.
    pub fn slice(in_extents: &[usize], axis: usize, start: usize, len: usize) -> Self {
        assert!(start + len <= in_extents[axis], "slice out of bounds");
        let mut out_extents = in_extents.to_vec();
        out_extents[axis] = len;
        let exprs = (0..in_extents.len())
            .map(|j| {
                if j == axis && start > 0 {
                    IndexExpr::add(IndexExpr::var(j), IndexExpr::constant(start as i64))
                } else {
                    IndexExpr::var(j)
                }
            })
            .collect();
        IndexMap { in_extents: in_extents.to_vec(), out_extents, exprs }
    }

    /// Map of part `part` of an even `Split` into `parts` along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the extent is not divisible by `parts` or
    /// `part >= parts`.
    pub fn split_part(in_extents: &[usize], axis: usize, parts: usize, part: usize) -> Self {
        assert!(part < parts, "part out of range");
        assert_eq!(in_extents[axis] % parts, 0, "uneven split");
        let len = in_extents[axis] / parts;
        Self::slice(in_extents, axis, part * len, len)
    }

    /// Map of a `DepthToSpace` (DCR order) with the given block on an
    /// `[N, C, H, W]` input.
    ///
    /// # Panics
    ///
    /// Panics unless rank is 4 and `C % block² == 0`.
    pub fn depth_to_space(in_extents: &[usize], block: usize) -> Self {
        assert_eq!(in_extents.len(), 4, "depth_to_space expects rank 4");
        let b = block as i64;
        let c_out = in_extents[1] / (block * block);
        assert_eq!(in_extents[1] % (block * block), 0, "channels not divisible by block^2");
        let out_extents = vec![in_extents[0], c_out, in_extents[2] * block, in_extents[3] * block];
        // in_c = (y%b * b + x%b) * C' + c ; in_h = y/b ; in_w = x/b
        let dh = IndexExpr::rem(IndexExpr::var(2), IndexExpr::constant(b));
        let dw = IndexExpr::rem(IndexExpr::var(3), IndexExpr::constant(b));
        let in_c = IndexExpr::add(
            IndexExpr::mul(
                IndexExpr::add(IndexExpr::mul(dh, IndexExpr::constant(b)), dw),
                IndexExpr::constant(c_out as i64),
            ),
            IndexExpr::var(1),
        );
        let exprs = vec![
            IndexExpr::var(0),
            in_c,
            IndexExpr::div(IndexExpr::var(2), IndexExpr::constant(b)),
            IndexExpr::div(IndexExpr::var(3), IndexExpr::constant(b)),
        ];
        IndexMap { in_extents: in_extents.to_vec(), out_extents, exprs }
    }

    /// Map of a `SpaceToDepth` (DCR order) with the given block on an
    /// `[N, C, H, W]` input.
    ///
    /// # Panics
    ///
    /// Panics unless rank is 4 and the spatial dims divide by `block`.
    pub fn space_to_depth(in_extents: &[usize], block: usize) -> Self {
        assert_eq!(in_extents.len(), 4, "space_to_depth expects rank 4");
        assert!(in_extents[2] % block == 0 && in_extents[3] % block == 0, "spatial not divisible");
        let b = block as i64;
        let c_in = in_extents[1] as i64;
        let out_extents = vec![
            in_extents[0],
            in_extents[1] * block * block,
            in_extents[2] / block,
            in_extents[3] / block,
        ];
        // c2 = (dh*b + dw)*C + c  =>  c = c2 % C ; dh = (c2/C)/b ; dw = (c2/C)%b
        let tmp = IndexExpr::div(IndexExpr::var(1), IndexExpr::constant(c_in));
        let dh = IndexExpr::div(tmp, IndexExpr::constant(b));
        let dw = IndexExpr::rem(tmp, IndexExpr::constant(b));
        let exprs = vec![
            IndexExpr::var(0),
            IndexExpr::rem(IndexExpr::var(1), IndexExpr::constant(c_in)),
            IndexExpr::add(IndexExpr::mul(IndexExpr::var(2), IndexExpr::constant(b)), dh),
            IndexExpr::add(IndexExpr::mul(IndexExpr::var(3), IndexExpr::constant(b)), dw),
        ];
        IndexMap { in_extents: in_extents.to_vec(), out_extents, exprs }
    }

    /// Composes `self` (applied first in dataflow) with `next`
    /// (applied afterwards), yielding the map from `next`'s output
    /// coordinates to `self`'s input coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `self`'s output space differs from `next`'s input space.
    pub fn then(&self, next: &IndexMap) -> IndexMap {
        assert_eq!(
            self.out_extents, next.in_extents,
            "composition mismatch: {:?} then {:?}",
            self.out_extents, next.in_extents
        );
        // One arena lock + one substitution memo across components.
        let exprs = expr::substitute_all(&self.exprs, &next.exprs);
        IndexMap {
            in_extents: self.in_extents.clone(),
            out_extents: next.out_extents.clone(),
            exprs,
        }
    }

    /// Applies strength reduction to every component expression.
    pub fn simplify(&self) -> IndexMap {
        IndexMap {
            in_extents: self.in_extents.clone(),
            out_extents: self.out_extents.clone(),
            exprs: expr::simplify_all(&self.exprs, &self.out_extents),
        }
    }

    /// Evaluates the map at an output coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `coord` rank differs from the output rank.
    pub fn eval(&self, coord: &[usize]) -> Vec<usize> {
        assert_eq!(coord.len(), self.out_extents.len(), "coordinate rank mismatch");
        let vars: Vec<i64> = coord.iter().map(|&c| c as i64).collect();
        expr::eval_all(&self.exprs, &vars).into_iter().map(|v| v.max(0) as usize).collect()
    }

    /// Input extents (the producer tensor's shape).
    pub fn in_extents(&self) -> &[usize] {
        &self.in_extents
    }

    /// Output extents (the consumer's iteration space).
    pub fn out_extents(&self) -> &[usize] {
        &self.out_extents
    }

    /// Input rank.
    pub fn in_rank(&self) -> usize {
        self.in_extents.len()
    }

    /// Output rank.
    pub fn out_rank(&self) -> usize {
        self.out_extents.len()
    }

    /// Component expressions (one per input dim).
    pub fn exprs(&self) -> &[IndexExpr] {
        &self.exprs
    }

    /// Total index-computation cost across components.
    pub fn cost(&self) -> ExprCost {
        expr::cost_all(&self.exprs)
    }

    /// Whether this map is the identity.
    pub fn is_identity(&self) -> bool {
        self.in_extents == self.out_extents
            && self.exprs.iter().enumerate().all(|(j, e)| e.as_var() == Some(j))
    }

    /// Whether the map is a pure dimension permutation, returning
    /// `perm` such that input dim `j` reads output var `perm[j]`.
    pub fn as_permutation(&self) -> Option<Vec<usize>> {
        let mut perm = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            match e.as_var() {
                Some(i) => perm.push(i),
                None => return None,
            }
        }
        let mut seen = vec![false; self.out_extents.len()];
        for &p in &perm {
            if p >= seen.len() || seen[p] {
                return None;
            }
            seen[p] = true;
        }
        if perm.len() == self.out_extents.len() {
            Some(perm)
        } else {
            None
        }
    }

    /// Classifies each input dimension's dependency on the output
    /// iteration space (Fig. 3: identity / split / merge).
    pub fn classify(&self) -> Vec<DepKind> {
        self.exprs
            .iter()
            .map(|e| {
                let vars = e.vars();
                match vars.len() {
                    0 => DepKind::Constant,
                    1 => {
                        if e.as_var().is_some() {
                            DepKind::Identity
                        } else {
                            DepKind::Split
                        }
                    }
                    _ => DepKind::Merge,
                }
            })
            .collect()
    }
}

impl fmt::Display for IndexMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map {:?} <- {:?}: [", self.in_extents, self.out_extents)?;
        for (j, e) in self.exprs.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_total(map: &IndexMap, reference: impl Fn(&[usize]) -> Vec<usize>) {
        // Exhaustively check the map against a reference on its domain.
        let out = map.out_extents().to_vec();
        let total: usize = out.iter().product();
        assert!(total <= 1 << 16, "domain too large for exhaustive check");
        let mut coord = vec![0usize; out.len()];
        for _ in 0..total {
            assert_eq!(map.eval(&coord), reference(&coord), "mismatch at {coord:?}");
            // increment coord
            for d in (0..out.len()).rev() {
                coord[d] += 1;
                if coord[d] < out[d] {
                    break;
                }
                coord[d] = 0;
            }
        }
    }

    #[test]
    fn identity_map() {
        let m = IndexMap::identity(&[3, 4]);
        assert!(m.is_identity());
        assert_eq!(m.eval(&[2, 3]), vec![2, 3]);
        assert_eq!(m.classify(), vec![DepKind::Identity, DepKind::Identity]);
    }

    #[test]
    fn reshape_map_matches_linearization() {
        let from = [2, 6];
        let to = [3, 4];
        let m = IndexMap::reshape(&from, &to).simplify();
        check_total(&m, |o| {
            let lin = o[0] * 4 + o[1];
            vec![lin / 6, lin % 6]
        });
    }

    #[test]
    fn transpose_map() {
        let m = IndexMap::transpose(&[2, 3, 4], &[2, 0, 1]);
        assert_eq!(m.out_extents(), &[4, 2, 3]);
        // out[a,b,c] = in[b, c, a]
        check_total(&m, |o| vec![o[1], o[2], o[0]]);
        assert_eq!(m.as_permutation(), Some(vec![1, 2, 0]));
    }

    #[test]
    fn slice_map_offsets() {
        let m = IndexMap::slice(&[10, 4], 0, 3, 5);
        assert_eq!(m.out_extents(), &[5, 4]);
        check_total(&m, |o| vec![o[0] + 3, o[1]]);
    }

    #[test]
    fn split_part_map() {
        let m = IndexMap::split_part(&[12, 2], 0, 3, 2);
        assert_eq!(m.out_extents(), &[4, 2]);
        check_total(&m, |o| vec![o[0] + 8, o[1]]);
    }

    #[test]
    fn depth_to_space_roundtrip() {
        let d2s = IndexMap::depth_to_space(&[1, 8, 2, 2], 2);
        assert_eq!(d2s.out_extents(), &[1, 2, 4, 4]);
        let s2d = IndexMap::space_to_depth(d2s.out_extents(), 2);
        assert_eq!(s2d.out_extents(), &[1, 8, 2, 2]);
        let roundtrip = d2s.then(&s2d).simplify();
        assert!(roundtrip.is_identity(), "got {roundtrip}");
    }

    #[test]
    fn reshape_roundtrip_is_identity() {
        let a = IndexMap::reshape(&[4, 6], &[3, 8]);
        let b = IndexMap::reshape(&[3, 8], &[4, 6]);
        let m = a.then(&b).simplify();
        assert!(m.is_identity(), "got {m}");
    }

    #[test]
    fn composition_matches_sequential_eval() {
        let r = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
        let t = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
        let chain = r.then(&t);
        let chain_s = chain.simplify();
        // sequential: out coord -> transpose -> reshape
        check_total(&chain_s, |o| {
            let mid = t.eval(o);
            r.eval(&mid)
        });
        assert_eq!(chain_s.eval(&[0; 4]), vec![0, 0, 0]);
        let _ = chain; // keep unsimplified for cost comparison below
    }

    #[test]
    fn simplification_reduces_figure3_cost() {
        let r = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
        let t = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
        let raw = r.then(&t);
        let simplified = raw.simplify();
        assert!(
            simplified.cost().weighted() < raw.cost().weighted() / 2.0,
            "simplify should at least halve the index cost: {} vs {}",
            simplified.cost().weighted(),
            raw.cost().weighted()
        );
    }

    #[test]
    fn classify_split_and_merge() {
        // Reshape [4,6] -> [24]: the two input dims are Split (carved
        // out of one output var).
        let m = IndexMap::reshape(&[4, 6], &[24]).simplify();
        assert_eq!(m.classify(), vec![DepKind::Split, DepKind::Split]);
        // Reshape [24] -> [4,6]: input dim merges two output vars.
        let m = IndexMap::reshape(&[24], &[4, 6]).simplify();
        assert_eq!(m.classify(), vec![DepKind::Merge]);
    }

    #[test]
    #[should_panic(expected = "composition mismatch")]
    fn composition_checks_extents() {
        let a = IndexMap::identity(&[2, 3]);
        let b = IndexMap::identity(&[3, 2]);
        let _ = a.then(&b);
    }

    #[test]
    fn display_renders() {
        let m = IndexMap::identity(&[2]);
        assert!(m.to_string().contains("map"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let m = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]).simplify();
        let c = m.clone();
        assert_eq!(m, c);
        // Interned components: the clone shares the exact same ids.
        for (a, b) in m.exprs().iter().zip(c.exprs()) {
            assert_eq!(a, b);
        }
    }
}
