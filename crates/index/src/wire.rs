//! Wire-codec implementations for index expressions and maps (consumed
//! by the persistent compilation cache in `smartmem-core`).

use crate::expr::IndexExpr;
use crate::map::IndexMap;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};

impl Encode for IndexExpr {
    fn encode(&self, w: &mut Writer) {
        match self {
            IndexExpr::Var(i) => {
                w.put_u8(0);
                i.encode(w);
            }
            IndexExpr::Const(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            IndexExpr::Add(a, b) => {
                w.put_u8(2);
                a.encode(w);
                b.encode(w);
            }
            IndexExpr::Mul(a, b) => {
                w.put_u8(3);
                a.encode(w);
                b.encode(w);
            }
            IndexExpr::Div(a, b) => {
                w.put_u8(4);
                a.encode(w);
                b.encode(w);
            }
            IndexExpr::Mod(a, b) => {
                w.put_u8(5);
                a.encode(w);
                b.encode(w);
            }
        }
    }
}

impl Decode for IndexExpr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let pair = |r: &mut Reader<'_>| -> Result<(Box<IndexExpr>, Box<IndexExpr>), WireError> {
            Ok((Box::new(IndexExpr::decode(r)?), Box::new(IndexExpr::decode(r)?)))
        };
        Ok(match r.get_u8()? {
            0 => IndexExpr::Var(Decode::decode(r)?),
            1 => IndexExpr::Const(Decode::decode(r)?),
            2 => {
                let (a, b) = pair(r)?;
                IndexExpr::Add(a, b)
            }
            3 => {
                let (a, b) = pair(r)?;
                IndexExpr::Mul(a, b)
            }
            4 => {
                let (a, b) = pair(r)?;
                IndexExpr::Div(a, b)
            }
            5 => {
                let (a, b) = pair(r)?;
                IndexExpr::Mod(a, b)
            }
            tag => return Err(WireError::BadTag { ty: "IndexExpr", tag }),
        })
    }
}

impl Encode for IndexMap {
    fn encode(&self, w: &mut Writer) {
        self.in_extents().encode(w);
        self.out_extents().encode(w);
        self.exprs().encode(w);
    }
}

impl Decode for IndexMap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let in_extents = Vec::<usize>::decode(r)?;
        let out_extents = Vec::<usize>::decode(r)?;
        let exprs = Vec::<IndexExpr>::decode(r)?;
        if exprs.len() != in_extents.len() {
            return Err(WireError::Invalid("index map arity mismatch".into()));
        }
        // Every expression must only reference output variables, or a
        // later eval would panic on a wild Var index.
        let out_rank = out_extents.len();
        for e in &exprs {
            if e.vars().iter().any(|&v| v >= out_rank) {
                return Err(WireError::Invalid("index expr references unknown variable".into()));
            }
        }
        Ok(IndexMap::from_parts(in_extents, out_extents, exprs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::wire::{decode_from, encode_to_vec};

    #[test]
    fn maps_roundtrip() {
        let maps = vec![
            IndexMap::identity(&[2, 3]),
            IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]).simplify(),
            IndexMap::transpose(&[2, 3, 4], &[2, 0, 1]),
            IndexMap::slice(&[10, 4], 0, 3, 5),
            IndexMap::depth_to_space(&[1, 8, 2, 2], 2),
        ];
        for m in maps {
            let back: IndexMap = decode_from(&encode_to_vec(&m)).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut w = Writer::new();
        vec![2usize, 3].encode(&mut w); // 2 input dims
        vec![3usize, 2].encode(&mut w);
        vec![IndexExpr::Var(0)].encode(&mut w); // but only 1 expr
        assert!(decode_from::<IndexMap>(&w.into_bytes()).is_err());
    }

    #[test]
    fn wild_variable_rejected() {
        let mut w = Writer::new();
        vec![2usize].encode(&mut w);
        vec![3usize].encode(&mut w);
        vec![IndexExpr::Var(7)].encode(&mut w); // out rank is 1
        assert!(decode_from::<IndexMap>(&w.into_bytes()).is_err());
    }
}
