//! Wire-codec implementations for index expressions and maps (consumed
//! by the persistent compilation cache in `smartmem-core`).
//!
//! The byte format is the structural tree encoding (tag + operands,
//! recursively) and is unchanged by hash-consing: encoding walks the
//! arena DAG as a tree, decoding re-interns every node, so artifacts
//! written before and after interning are byte-identical for equal
//! expressions.

use crate::expr::IndexExpr;
use crate::intern::{self, Arena, ExprId, Node};
use crate::map::IndexMap;
use smartmem_ir::wire::{Decode, Encode, Reader, WireError, Writer};

fn encode_expr(a: &Arena, id: ExprId, w: &mut Writer) {
    let binop = |a: &Arena, tag: u8, x: ExprId, y: ExprId, w: &mut Writer| {
        w.put_u8(tag);
        encode_expr(a, x, w);
        encode_expr(a, y, w);
    };
    match a.node(id) {
        Node::Var(i) => {
            w.put_u8(0);
            i.encode(w);
        }
        Node::Const(c) => {
            w.put_u8(1);
            c.encode(w);
        }
        Node::Add(x, y) => binop(a, 2, x, y, w),
        Node::Mul(x, y) => binop(a, 3, x, y, w),
        Node::Div(x, y) => binop(a, 4, x, y, w),
        Node::Mod(x, y) => binop(a, 5, x, y, w),
    }
}

fn decode_expr(a: &mut Arena, r: &mut Reader<'_>) -> Result<ExprId, WireError> {
    let tag = r.get_u8()?;
    Ok(match tag {
        0 => {
            let i: usize = Decode::decode(r)?;
            a.var(i)
        }
        1 => {
            let c: i64 = Decode::decode(r)?;
            a.constant(c)
        }
        2..=5 => {
            let x = decode_expr(a, r)?;
            let y = decode_expr(a, r)?;
            match tag {
                2 => a.add(x, y),
                3 => a.mul(x, y),
                4 => a.div(x, y),
                _ => a.rem(x, y),
            }
        }
        tag => return Err(WireError::BadTag { ty: "IndexExpr", tag }),
    })
}

impl Encode for IndexExpr {
    fn encode(&self, w: &mut Writer) {
        intern::with_read(|a| encode_expr(a, self.id(), w));
    }
}

impl Decode for IndexExpr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        intern::with_write(|a| {
            let id = decode_expr(a, r)?;
            Ok(IndexExpr::from_id(a, id))
        })
    }
}

impl Encode for IndexMap {
    fn encode(&self, w: &mut Writer) {
        self.in_extents().encode(w);
        self.out_extents().encode(w);
        self.exprs().encode(w);
    }
}

impl Decode for IndexMap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let in_extents = Vec::<usize>::decode(r)?;
        let out_extents = Vec::<usize>::decode(r)?;
        let exprs = Vec::<IndexExpr>::decode(r)?;
        if exprs.len() != in_extents.len() {
            return Err(WireError::Invalid("index map arity mismatch".into()));
        }
        // Every expression must only reference output variables, or a
        // later eval would panic on a wild Var index.
        let out_rank = out_extents.len();
        for e in &exprs {
            if e.vars().iter().any(|&v| v >= out_rank) {
                return Err(WireError::Invalid("index expr references unknown variable".into()));
            }
        }
        Ok(IndexMap::from_parts(in_extents, out_extents, exprs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::wire::{decode_from, encode_to_vec};

    #[test]
    fn maps_roundtrip() {
        let maps = vec![
            IndexMap::identity(&[2, 3]),
            IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]).simplify(),
            IndexMap::transpose(&[2, 3, 4], &[2, 0, 1]),
            IndexMap::slice(&[10, 4], 0, 3, 5),
            IndexMap::depth_to_space(&[1, 8, 2, 2], 2),
        ];
        for m in maps {
            let back: IndexMap = decode_from(&encode_to_vec(&m)).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn shared_subterms_encode_as_trees() {
        // Two components sharing one arena node must decode back to an
        // equal map (the wire format expands sharing into trees).
        let m = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
        let back: IndexMap = decode_from(&encode_to_vec(&m)).unwrap();
        assert_eq!(m, back);
        for (a, b) in m.exprs().iter().zip(back.exprs()) {
            // Re-interning yields the exact same handles.
            assert_eq!(a, b);
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut w = Writer::new();
        vec![2usize, 3].encode(&mut w); // 2 input dims
        vec![3usize, 2].encode(&mut w);
        vec![IndexExpr::var(0)].encode(&mut w); // but only 1 expr
        assert!(decode_from::<IndexMap>(&w.into_bytes()).is_err());
    }

    #[test]
    fn wild_variable_rejected() {
        let mut w = Writer::new();
        vec![2usize].encode(&mut w);
        vec![3usize].encode(&mut w);
        vec![IndexExpr::var(7)].encode(&mut w); // out rank is 1
        assert!(decode_from::<IndexMap>(&w.into_bytes()).is_err());
    }
}
