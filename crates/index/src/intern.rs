//! Hash-consing arena for index expressions.
//!
//! Every [`crate::IndexExpr`] is a handle (`ExprId`) into a process-wide
//! arena of immutable nodes. Structurally equal expressions intern to the
//! same id, so equality is an integer compare, composition shares
//! subterms instead of deep-cloning them, and the strength-reduction
//! fixpoint can memoize rewrites per node. Each node carries a *stable
//! structural digest* computed at intern time — `Hash` for `IndexExpr`
//! hashes that digest, which (unlike the id) does not depend on arena
//! insertion order and is therefore safe to persist in cache
//! fingerprints.
//!
//! Locking discipline: the arena lives behind one `RwLock`; every public
//! operation on `IndexExpr`/`IndexMap` acquires it exactly once and runs
//! the whole traversal inside (`with_read` for inspection, `with_write`
//! for construction). Internal helpers take `&Arena`/`&mut Arena` and
//! must never re-enter the lock.

use crate::expr::{ExprCost, Range};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// Handle of an interned expression node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ExprId(u32);

impl ExprId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node; children are handles into the same arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Var(usize),
    Const(i64),
    Add(ExprId, ExprId),
    Mul(ExprId, ExprId),
    Div(ExprId, ExprId),
    Mod(ExprId, ExprId),
}

/// The hash-consing store: append-only node table plus the consing map.
pub(crate) struct Arena {
    nodes: Vec<Node>,
    digests: Vec<u64>,
    table: HashMap<Node, ExprId>,
}

static ARENA: OnceLock<RwLock<Arena>> = OnceLock::new();

fn arena() -> &'static RwLock<Arena> {
    ARENA.get_or_init(|| {
        RwLock::new(Arena {
            nodes: Vec::with_capacity(1024),
            digests: Vec::with_capacity(1024),
            table: HashMap::with_capacity(1024),
        })
    })
}

/// Runs `f` with shared access to the arena (one acquisition).
pub(crate) fn with_read<R>(f: impl FnOnce(&Arena) -> R) -> R {
    let guard = arena().read().unwrap_or_else(|e| e.into_inner());
    f(&guard)
}

/// Runs `f` with exclusive access to the arena (one acquisition).
pub(crate) fn with_write<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
    let mut guard = arena().write().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

impl Arena {
    /// Interns `node`, returning the canonical id for its structure.
    pub(crate) fn intern(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.table.get(&node) {
            return id;
        }
        let mut h = DefaultHasher::new();
        match node {
            Node::Var(i) => {
                0u8.hash(&mut h);
                i.hash(&mut h);
            }
            Node::Const(c) => {
                1u8.hash(&mut h);
                c.hash(&mut h);
            }
            Node::Add(a, b) => {
                2u8.hash(&mut h);
                self.digest(a).hash(&mut h);
                self.digest(b).hash(&mut h);
            }
            Node::Mul(a, b) => {
                3u8.hash(&mut h);
                self.digest(a).hash(&mut h);
                self.digest(b).hash(&mut h);
            }
            Node::Div(a, b) => {
                4u8.hash(&mut h);
                self.digest(a).hash(&mut h);
                self.digest(b).hash(&mut h);
            }
            Node::Mod(a, b) => {
                5u8.hash(&mut h);
                self.digest(a).hash(&mut h);
                self.digest(b).hash(&mut h);
            }
        }
        let id = ExprId(u32::try_from(self.nodes.len()).expect("expression arena overflow"));
        self.nodes.push(node);
        self.digests.push(h.finish());
        self.table.insert(node, id);
        id
    }

    /// The node behind `id`.
    pub(crate) fn node(&self, id: ExprId) -> Node {
        self.nodes[id.index()]
    }

    /// The stable structural digest of `id`.
    pub(crate) fn digest(&self, id: ExprId) -> u64 {
        self.digests[id.index()]
    }

    pub(crate) fn var(&mut self, i: usize) -> ExprId {
        self.intern(Node::Var(i))
    }

    pub(crate) fn constant(&mut self, c: i64) -> ExprId {
        self.intern(Node::Const(c))
    }

    pub(crate) fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(Node::Add(a, b))
    }

    pub(crate) fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(Node::Mul(a, b))
    }

    pub(crate) fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(Node::Div(a, b))
    }

    pub(crate) fn rem(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern(Node::Mod(a, b))
    }

    /// The constant value if `id` is a literal.
    pub(crate) fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.node(id) {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The variable index if `id` is a bare variable.
    pub(crate) fn as_var(&self, id: ExprId) -> Option<usize> {
        match self.node(id) {
            Node::Var(i) => Some(i),
            _ => None,
        }
    }

    /// Evaluates `id` for concrete variable values (tree semantics).
    pub(crate) fn eval(&self, id: ExprId, vars: &[i64]) -> i64 {
        match self.node(id) {
            Node::Var(i) => vars[i],
            Node::Const(c) => c,
            Node::Add(a, b) => self.eval(a, vars) + self.eval(b, vars),
            Node::Mul(a, b) => self.eval(a, vars) * self.eval(b, vars),
            Node::Div(a, b) => self.eval(a, vars).div_euclid(self.eval(b, vars)),
            Node::Mod(a, b) => self.eval(a, vars).rem_euclid(self.eval(b, vars)),
        }
    }

    /// Interval of possible values of `id` given per-variable extents.
    /// `memo` caches per-node results (sound: the interval depends only
    /// on the node and `extents`, which is fixed per call tree).
    pub(crate) fn range(
        &self,
        id: ExprId,
        extents: &[usize],
        memo: &mut HashMap<ExprId, Range>,
    ) -> Range {
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let r = match self.node(id) {
            Node::Var(i) => Range { min: 0, max: extents[i].saturating_sub(1) as i64 },
            Node::Const(c) => Range::point(c),
            Node::Add(a, b) => {
                let (ra, rb) = (self.range(a, extents, memo), self.range(b, extents, memo));
                Range { min: ra.min.saturating_add(rb.min), max: ra.max.saturating_add(rb.max) }
            }
            Node::Mul(a, b) => {
                let (ra, rb) = (self.range(a, extents, memo), self.range(b, extents, memo));
                let products = [
                    ra.min.saturating_mul(rb.min),
                    ra.min.saturating_mul(rb.max),
                    ra.max.saturating_mul(rb.min),
                    ra.max.saturating_mul(rb.max),
                ];
                Range {
                    min: *products.iter().min().expect("non-empty"),
                    max: *products.iter().max().expect("non-empty"),
                }
            }
            Node::Div(a, b) => {
                let ra = self.range(a, extents, memo);
                match self.as_const(b) {
                    Some(d) if d > 0 => {
                        Range { min: ra.min.div_euclid(d), max: ra.max.div_euclid(d) }
                    }
                    _ => Range { min: i64::MIN / 2, max: i64::MAX / 2 },
                }
            }
            Node::Mod(a, b) => {
                let ra = self.range(a, extents, memo);
                match self.as_const(b) {
                    Some(m) if m > 0 => {
                        if ra.within(m) {
                            ra
                        } else {
                            Range { min: 0, max: m - 1 }
                        }
                    }
                    _ => Range { min: i64::MIN / 2, max: i64::MAX / 2 },
                }
            }
        };
        memo.insert(id, r);
        r
    }

    /// Whether `id` is provably divisible by `m` for all variable values.
    pub(crate) fn divisible_by(&self, id: ExprId, m: i64, extents: &[usize]) -> bool {
        if m == 1 {
            return true;
        }
        match self.node(id) {
            Node::Const(c) => c % m == 0,
            Node::Var(i) => extents[i] == 1, // always zero
            Node::Add(a, b) => self.divisible_by(a, m, extents) && self.divisible_by(b, m, extents),
            Node::Mul(a, b) => self.divisible_by(a, m, extents) || self.divisible_by(b, m, extents),
            _ => false,
        }
    }

    /// Pushes every variable referenced under `id` into `out`
    /// (shared subterms visited once).
    pub(crate) fn collect_vars(
        &self,
        id: ExprId,
        out: &mut Vec<usize>,
        seen: &mut HashMap<ExprId, ()>,
    ) {
        if seen.insert(id, ()).is_some() {
            return;
        }
        match self.node(id) {
            Node::Var(i) => out.push(i),
            Node::Const(_) => {}
            Node::Add(a, b) | Node::Mul(a, b) | Node::Div(a, b) | Node::Mod(a, b) => {
                self.collect_vars(a, out, seen);
                self.collect_vars(b, out, seen);
            }
        }
    }

    /// Operation counts of the expression *tree* rooted at `id` (shared
    /// subterms counted once per occurrence, matching the pre-interning
    /// cost model), computed in time linear in the DAG size.
    pub(crate) fn cost(&self, id: ExprId, memo: &mut HashMap<ExprId, ExprCost>) -> ExprCost {
        if let Some(&c) = memo.get(&id) {
            return c;
        }
        let c = match self.node(id) {
            Node::Var(_) | Node::Const(_) => ExprCost::default(),
            Node::Add(a, b) => self
                .cost(a, memo)
                .combine(self.cost(b, memo))
                .combine(ExprCost { adds: 1, ..Default::default() }),
            Node::Mul(a, b) => self
                .cost(a, memo)
                .combine(self.cost(b, memo))
                .combine(ExprCost { muls: 1, ..Default::default() }),
            Node::Div(a, b) => self
                .cost(a, memo)
                .combine(self.cost(b, memo))
                .combine(ExprCost { divs: 1, ..Default::default() }),
            Node::Mod(a, b) => self
                .cost(a, memo)
                .combine(self.cost(b, memo))
                .combine(ExprCost { mods: 1, ..Default::default() }),
        };
        memo.insert(id, c);
        c
    }

    /// Substitutes `replacements[i]` for `Var(i)` under `id`, memoized
    /// per node (`memo` may be shared across the components of one map
    /// composition — the replacement list is fixed for its lifetime).
    pub(crate) fn substitute(
        &mut self,
        id: ExprId,
        replacements: &[ExprId],
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let out = match self.node(id) {
            Node::Var(i) => replacements[i],
            Node::Const(_) => id,
            Node::Add(a, b) => {
                let (ra, rb) = (
                    self.substitute(a, replacements, memo),
                    self.substitute(b, replacements, memo),
                );
                self.add(ra, rb)
            }
            Node::Mul(a, b) => {
                let (ra, rb) = (
                    self.substitute(a, replacements, memo),
                    self.substitute(b, replacements, memo),
                );
                self.mul(ra, rb)
            }
            Node::Div(a, b) => {
                let (ra, rb) = (
                    self.substitute(a, replacements, memo),
                    self.substitute(b, replacements, memo),
                );
                self.div(ra, rb)
            }
            Node::Mod(a, b) => {
                let (ra, rb) = (
                    self.substitute(a, replacements, memo),
                    self.substitute(b, replacements, memo),
                );
                self.rem(ra, rb)
            }
        };
        memo.insert(id, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        with_write(|a| {
            let x = a.var(0);
            let c = a.constant(4);
            let e1 = a.mul(x, c);
            let e2 = a.mul(x, c);
            assert_eq!(e1, e2);
            assert_eq!(a.digest(e1), a.digest(e2));
        });
    }

    #[test]
    fn digest_distinguishes_structure() {
        with_write(|a| {
            let x = a.var(0);
            let c = a.constant(4);
            let add = a.add(x, c);
            let mul = a.mul(x, c);
            assert_ne!(add, mul);
            assert_ne!(a.digest(add), a.digest(mul));
        });
    }

    #[test]
    fn shared_subterms_counted_per_occurrence() {
        with_write(|a| {
            let x = a.var(0);
            let c = a.constant(3);
            let m = a.mul(x, c); // 1 mul
            let s = a.add(m, m); // tree cost: 2 muls + 1 add
            let cost = a.cost(s, &mut HashMap::new());
            assert_eq!((cost.adds, cost.muls), (1, 2));
        });
    }
}
