//! Strength reduction for index expressions (§3.2.1 of the paper).
//!
//! The rule catalogue (applied bottom-up to a fixpoint):
//!
//! | rule | condition |
//! |---|---|
//! | constant folding | both operands constant |
//! | `x + 0 → x`, `x * 1 → x`, `x * 0 → 0`, `x / 1 → x`, `x % 1 → 0` | — |
//! | `(x % a) % b → x % b` | `a % b == 0` (the paper's example) |
//! | `e % m → e` | `range(e) ⊆ [0, m)` |
//! | `(x / a) / b → x / (a·b)` | constants |
//! | `e / m → 0` | `range(e) ⊆ [0, m)` |
//! | `(a + b) / m → a/m + b/m` | `a` provably divisible by `m` |
//! | `(a + b) % m → b % m` | `a` provably divisible by `m` |
//! | `(x · c) / m → x · (c/m)` | `c % m == 0` |
//! | `(x · c) % m → 0` | `c % m == 0` |
//! | `c * x → x * c` (canonicalization) | constant on the right |
//! | `(x / c) % d → (x % (c·d)) / c` (normalization) | constants > 0 |
//! | `(a + b) · c → a·c + b·c` | `c` constant (exposes sum terms) |
//! | digit recombination: `(x/a)·a·s + (x%a)·s → x·s` and its general form `((x%M)/D_hi)·S_hi + ((x%D_hi)/D_lo)·S_lo → ((x%M)/D_lo)·S_lo` | `D_lo ∣ D_hi`, `S_hi = S_lo·D_hi/D_lo` |
//!
//! All rules preserve the value for every assignment of variables within
//! their extents — verified by the property tests at the bottom of this
//! file and in `tests/`.
//!
//! Since expressions are hash-consed (see `intern`), the rewriter works
//! on `ExprId`s inside a single arena lock and memoizes per node: the
//! single-pass rewrite result, range analysis, and tree cost. A rewrite
//! is a pure function of `(node, extents)`, so the memo stays sound
//! across fixpoint passes and across the components of one map.

use crate::expr::{ExprCost, Range};
use crate::intern::{Arena, ExprId, Node};
use std::collections::HashMap;

/// Maximum rewrite passes; expressions from realistic operator chains
/// converge in 2–4 passes.
const MAX_PASSES: usize = 12;

/// Strength-reduction context: exclusive arena access plus per-node
/// memos that are shared across fixpoint passes (and, via
/// `simplify_all`, across the components of one map).
pub(crate) struct Rewriter<'a> {
    arena: &'a mut Arena,
    ext: Vec<usize>,
    rewrites: HashMap<ExprId, ExprId>,
    ranges: HashMap<ExprId, Range>,
    costs: HashMap<ExprId, ExprCost>,
}

impl<'a> Rewriter<'a> {
    pub(crate) fn new(arena: &'a mut Arena, extents: &[usize]) -> Self {
        Rewriter {
            arena,
            ext: extents.to_vec(),
            rewrites: HashMap::new(),
            ranges: HashMap::new(),
            costs: HashMap::new(),
        }
    }

    pub(crate) fn arena(&self) -> &Arena {
        self.arena
    }

    /// Simplifies `expr` under the rewriter's variable extents.
    pub(crate) fn simplify(&mut self, expr: ExprId) -> ExprId {
        let mut cur = expr;
        for _ in 0..MAX_PASSES {
            let next = self.rewrite(cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        // Distribution can in principle increase the op count when no
        // recombination follows; never return something costlier than
        // the input.
        if self.cost(cur).weighted() <= self.cost(expr).weighted() {
            cur
        } else {
            expr
        }
    }

    fn cost(&mut self, id: ExprId) -> ExprCost {
        self.arena.cost(id, &mut self.costs)
    }

    fn range(&mut self, id: ExprId) -> Range {
        self.arena.range(id, &self.ext, &mut self.ranges)
    }

    fn rewrite(&mut self, id: ExprId) -> ExprId {
        if let Some(&done) = self.rewrites.get(&id) {
            return done;
        }
        // Rewrite children first (bottom-up), then apply the local rules.
        let out = match self.arena.node(id) {
            Node::Add(a, b) => {
                let (ra, rb) = (self.rewrite(a), self.rewrite(b));
                self.rewrite_add(ra, rb)
            }
            Node::Mul(a, b) => {
                let (ra, rb) = (self.rewrite(a), self.rewrite(b));
                self.rewrite_mul(ra, rb)
            }
            Node::Div(a, b) => {
                let (ra, rb) = (self.rewrite(a), self.rewrite(b));
                self.rewrite_div(ra, rb)
            }
            Node::Mod(a, b) => {
                let (ra, rb) = (self.rewrite(a), self.rewrite(b));
                self.rewrite_mod(ra, rb)
            }
            _ => id,
        };
        self.rewrites.insert(id, out);
        out
    }

    fn rewrite_add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let plain = match (self.arena.as_const(a), self.arena.as_const(b)) {
            (Some(x), Some(y)) => return self.arena.constant(x + y),
            (Some(0), None) => return b,
            (None, Some(0)) => return a,
            // Canonicalize constants to the right for the Div/Mod split
            // rules.
            (Some(_), None) => self.arena.add(b, a),
            _ => self.arena.add(a, b),
        };
        self.recombine_sum(plain).unwrap_or(plain)
    }

    fn rewrite_mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.arena.as_const(a), self.arena.as_const(b)) {
            (Some(x), Some(y)) => self.arena.constant(x * y),
            (Some(0), None) | (None, Some(0)) => self.arena.constant(0),
            (Some(1), None) => b,
            (None, Some(1)) => a,
            // Canonicalize constants to the right.
            (Some(_), None) => self.rewrite_mul(b, a),
            (None, Some(c)) => {
                // Distribute over sums to expose digit-recombination
                // terms.
                if let Node::Add(p, q) = self.arena.node(a) {
                    let cid = self.arena.constant(c);
                    let l = self.rewrite_mul(p, cid);
                    let r = self.rewrite_mul(q, cid);
                    self.arena.add(l, r)
                } else {
                    self.arena.mul(a, b)
                }
            }
            _ => self.arena.mul(a, b),
        }
    }

    fn rewrite_div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let Some(m) = self.arena.as_const(b) else { return self.arena.div(a, b) };
        if m == 1 {
            return a;
        }
        if m <= 0 {
            return self.arena.div(a, b); // degenerate; leave untouched
        }
        if let Some(x) = self.arena.as_const(a) {
            return self.arena.constant(x.div_euclid(m));
        }
        // e / m -> 0 when e < m.
        if self.range(a).within(m) {
            return self.arena.constant(0);
        }
        match self.arena.node(a) {
            // (x / c) / m -> x / (c*m)
            Node::Div(x, c) => match self.arena.as_const(c) {
                Some(ci) if ci > 0 => {
                    let merged = self.arena.constant(ci * m);
                    self.arena.div(x, merged)
                }
                _ => self.arena.div(a, b),
            },
            // (p + q) / m with p divisible by m -> p/m + q/m (and
            // symmetric).
            Node::Add(p, q) => {
                if self.arena.divisible_by(p, m, &self.ext)
                    || self.arena.divisible_by(q, m, &self.ext)
                {
                    let mid = self.arena.constant(m);
                    let l = self.rewrite_div(p, mid);
                    let r = self.rewrite_div(q, mid);
                    self.rewrite_add(l, r)
                } else {
                    self.arena.div(a, b)
                }
            }
            // (x * c) / m -> x * (c/m) when m | c.
            Node::Mul(x, c) => match self.arena.as_const(c) {
                Some(ci) if ci % m == 0 => {
                    let scaled = self.arena.constant(ci / m);
                    self.rewrite_mul(x, scaled)
                }
                // (x * c) / m when x*c's range < m handled above; also
                // c | m and x % (m/c) unknown: keep.
                _ => self.arena.div(a, b),
            },
            _ => self.arena.div(a, b),
        }
    }

    fn rewrite_mod(&mut self, a: ExprId, b: ExprId) -> ExprId {
        let Some(m) = self.arena.as_const(b) else { return self.arena.rem(a, b) };
        if m == 1 {
            return self.arena.constant(0);
        }
        if m <= 0 {
            return self.arena.rem(a, b);
        }
        if let Some(x) = self.arena.as_const(a) {
            return self.arena.constant(x.rem_euclid(m));
        }
        // e % m -> e when range(e) ⊆ [0, m).
        if self.range(a).within(m) {
            return a;
        }
        if self.arena.divisible_by(a, m, &self.ext) {
            return self.arena.constant(0);
        }
        match self.arena.node(a) {
            // (x % a) % m -> x % m when m | a  (paper's rule: i%Ca%Cb).
            Node::Mod(x, c) => match self.arena.as_const(c) {
                Some(ci) if ci > 0 && ci % m == 0 => {
                    let mid = self.arena.constant(m);
                    self.rewrite_mod(x, mid)
                }
                _ => self.arena.rem(a, b),
            },
            // (x / c) % m -> (x % (c*m)) / c  (canonical digit-extraction
            // form; enables recombination and range-based mod
            // elimination).
            Node::Div(x, c) => match self.arena.as_const(c) {
                Some(ci) if ci > 0 => {
                    let wide = self.arena.constant(ci * m);
                    let inner = self.rewrite_mod(x, wide);
                    let cid = self.arena.constant(ci);
                    self.rewrite_div(inner, cid)
                }
                _ => self.arena.rem(a, b),
            },
            // (p + q) % m with p divisible by m -> q % m (and symmetric).
            Node::Add(p, q) => {
                if self.arena.divisible_by(p, m, &self.ext) {
                    let mid = self.arena.constant(m);
                    self.rewrite_mod(q, mid)
                } else if self.arena.divisible_by(q, m, &self.ext) {
                    let mid = self.arena.constant(m);
                    self.rewrite_mod(p, mid)
                } else {
                    self.arena.rem(a, b)
                }
            }
            _ => self.arena.rem(a, b),
        }
    }

    /// Attempts digit recombination across a flattened sum tree. Returns
    /// `Some(rebuilt)` only when at least one merge happened.
    fn recombine_sum(&mut self, e: ExprId) -> Option<ExprId> {
        fn flatten(a: &Arena, e: ExprId, out: &mut Vec<ExprId>) {
            match a.node(e) {
                Node::Add(p, q) => {
                    flatten(a, p, out);
                    flatten(a, q, out);
                }
                _ => out.push(e),
            }
        }
        let mut parts = Vec::new();
        flatten(self.arena, e, &mut parts);
        if parts.len() < 2 {
            return None;
        }
        let mut constant = 0i64;
        let mut terms: Vec<Term> = Vec::new();
        let mut opaque: Vec<ExprId> = Vec::new();
        for p in parts {
            if let Some(c) = self.arena.as_const(p) {
                constant += c;
            } else {
                match Term::parse(self.arena, p) {
                    Some(t) => terms.push(t),
                    None => opaque.push(p),
                }
            }
        }
        let mut merged_any = false;
        'outer: loop {
            for i in 0..terms.len() {
                for j in 0..terms.len() {
                    if i == j {
                        continue;
                    }
                    if let Some(m) = Term::merge(&terms[i], &terms[j]) {
                        let (a, b) = (i.max(j), i.min(j));
                        terms.remove(a);
                        terms.remove(b);
                        terms.push(m);
                        merged_any = true;
                        continue 'outer;
                    }
                }
            }
            break;
        }
        if !merged_any {
            return None;
        }
        let mut out: Option<ExprId> = None;
        let rebuilt: Vec<ExprId> =
            terms.into_iter().map(|t| t.build(self.arena)).chain(opaque).collect();
        for piece in rebuilt {
            out = Some(match out {
                None => piece,
                Some(acc) => self.arena.add(acc, piece),
            });
        }
        let mut out = out.unwrap_or_else(|| self.arena.constant(0));
        if constant != 0 {
            let cid = self.arena.constant(constant);
            out = self.arena.add(out, cid);
        }
        Some(out)
    }
}

/// One term of a flattened sum in the canonical "digit extraction" form
/// `((base % modulo) / div) * scale` (`modulo = None` means no mod).
struct Term {
    base: ExprId,
    div: i64,
    modulo: Option<i64>,
    scale: i64,
}

impl Term {
    fn parse(a: &Arena, e: ExprId) -> Option<Term> {
        let (core, scale) = match a.node(e) {
            Node::Mul(x, s) => match a.as_const(s) {
                Some(c) => (x, c),
                None => (e, 1),
            },
            _ => (e, 1),
        };
        let (core, div) = match a.node(core) {
            Node::Div(x, d) => match a.as_const(d) {
                Some(c) if c > 0 => (x, c),
                _ => (core, 1),
            },
            _ => (core, 1),
        };
        let (base, modulo) = match a.node(core) {
            Node::Mod(x, m) => match a.as_const(m) {
                Some(c) if c > 0 => (x, Some(c)),
                _ => (core, None),
            },
            _ => (core, None),
        };
        if scale <= 0 {
            return None;
        }
        Some(Term { base, div, modulo, scale })
    }

    fn build(self, a: &mut Arena) -> ExprId {
        let mut e = self.base;
        if let Some(m) = self.modulo {
            let mid = a.constant(m);
            e = a.rem(e, mid);
        }
        if self.div != 1 {
            let did = a.constant(self.div);
            e = a.div(e, did);
        }
        if self.scale != 1 {
            let sid = a.constant(self.scale);
            e = a.mul(e, sid);
        }
        e
    }

    /// Merges a higher-digit term with a lower-digit term over the same
    /// base when they cover adjacent digit ranges:
    /// `((x%M)/Dh)·Sh + ((x%Dh)/Dl)·Sl = ((x%M)/Dl)·Sl`
    /// provided `Dl | Dh` and `Sh = Sl·Dh/Dl`.
    fn merge(hi: &Term, lo: &Term) -> Option<Term> {
        if hi.base != lo.base {
            return None;
        }
        if lo.modulo != Some(hi.div) {
            return None;
        }
        if hi.div <= 0 || lo.div <= 0 || hi.div % lo.div != 0 {
            return None;
        }
        if hi.scale != lo.scale * (hi.div / lo.div) {
            return None;
        }
        Some(Term { base: hi.base, div: lo.div, modulo: hi.modulo, scale: lo.scale })
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::IndexExpr as E;

    fn simp(e: &E, ext: &[usize]) -> E {
        e.simplify(ext)
    }

    #[test]
    fn constant_folding() {
        let e = E::add(E::constant(3), E::mul(E::constant(4), E::constant(5)));
        assert_eq!(simp(&e, &[]), E::constant(23));
    }

    #[test]
    fn identity_rules() {
        assert_eq!(simp(&E::add(E::var(0), E::constant(0)), &[8]), E::var(0));
        assert_eq!(simp(&E::mul(E::var(0), E::constant(1)), &[8]), E::var(0));
        assert_eq!(simp(&E::mul(E::var(0), E::constant(0)), &[8]), E::constant(0));
        assert_eq!(simp(&E::div(E::var(0), E::constant(1)), &[8]), E::var(0));
        assert_eq!(simp(&E::rem(E::var(0), E::constant(1)), &[8]), E::constant(0));
    }

    #[test]
    fn paper_mod_mod_rule() {
        // i % 32 % 8 -> i % 8 because 32 % 8 == 0.
        let e = E::rem(E::rem(E::var(0), E::constant(32)), E::constant(8));
        assert_eq!(simp(&e, &[1024]), E::rem(E::var(0), E::constant(8)));
    }

    #[test]
    fn mod_mod_incompatible_kept() {
        // i % 6 % 4 cannot drop the inner mod (6 % 4 != 0) — but range
        // of (i % 6) is [0,5], not within 4, so the expression stays.
        let e = E::rem(E::rem(E::var(0), E::constant(6)), E::constant(4));
        let s = simp(&e, &[1024]);
        assert_eq!(s, e);
    }

    #[test]
    fn range_based_mod_elimination() {
        // i % 16 with i < 8 -> i.
        let e = E::rem(E::var(0), E::constant(16));
        assert_eq!(simp(&e, &[8]), E::var(0));
    }

    #[test]
    fn range_based_div_elimination() {
        // i / 16 with i < 8 -> 0.
        let e = E::div(E::var(0), E::constant(16));
        assert_eq!(simp(&e, &[8]), E::constant(0));
    }

    #[test]
    fn div_div_merge() {
        let e = E::div(E::div(E::var(0), E::constant(4)), E::constant(8));
        assert_eq!(simp(&e, &[4096]), E::div(E::var(0), E::constant(32)));
    }

    #[test]
    fn linear_form_div_distributes() {
        // (i0*32 + i1) / 32 with i1 < 32 -> i0.
        let e = E::div(E::add(E::mul(E::var(0), E::constant(32)), E::var(1)), E::constant(32));
        assert_eq!(simp(&e, &[64, 32]), E::var(0));
    }

    #[test]
    fn linear_form_mod_drops_multiples() {
        // (i0*32 + i1) % 32 with i1 < 32 -> i1.
        let e = E::rem(E::add(E::mul(E::var(0), E::constant(32)), E::var(1)), E::constant(32));
        assert_eq!(simp(&e, &[64, 32]), E::var(1));
    }

    #[test]
    fn partial_distribution() {
        // (i0*16 + i1) / 4 with i1 < 16 -> i0*4 + i1/4.
        let e = E::div(E::add(E::mul(E::var(0), E::constant(16)), E::var(1)), E::constant(4));
        let s = simp(&e, &[8, 16]);
        assert_eq!(s, E::add(E::mul(E::var(0), E::constant(4)), E::div(E::var(1), E::constant(4))));
    }

    #[test]
    fn canonicalizes_const_right() {
        let e = E::mul(E::constant(4), E::var(0));
        assert_eq!(simp(&e, &[8]), E::mul(E::var(0), E::constant(4)));
    }

    #[test]
    fn simplification_reduces_cost() {
        // Figure 3-style stacked reshape indices.
        let lin = E::add(
            E::add(E::mul(E::var(0), E::constant(128)), E::mul(E::var(1), E::constant(16))),
            E::add(E::mul(E::var(2), E::constant(4)), E::var(3)),
        );
        let in2 = E::rem(lin, E::constant(4)); // -> i3
        let s = simp(&in2, &[16, 8, 4, 4]);
        assert_eq!(s, E::var(3));
        assert!(s.cost().weighted() < in2.cost().weighted());
    }

    #[test]
    fn rewrite_memo_consistent_across_components() {
        // Simplifying the same expression twice (second hit comes from
        // the memo when routed through simplify_all) gives one id.
        let e = E::rem(E::add(E::mul(E::var(0), E::constant(32)), E::var(1)), E::constant(32));
        let out = crate::expr::simplify_all(&[e, e], &[64, 32]);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], E::var(1));
    }
}
