//! Strength reduction for index expressions (§3.2.1 of the paper).
//!
//! The rule catalogue (applied bottom-up to a fixpoint):
//!
//! | rule | condition |
//! |---|---|
//! | constant folding | both operands constant |
//! | `x + 0 → x`, `x * 1 → x`, `x * 0 → 0`, `x / 1 → x`, `x % 1 → 0` | — |
//! | `(x % a) % b → x % b` | `a % b == 0` (the paper's example) |
//! | `e % m → e` | `range(e) ⊆ [0, m)` |
//! | `(x / a) / b → x / (a·b)` | constants |
//! | `e / m → 0` | `range(e) ⊆ [0, m)` |
//! | `(a + b) / m → a/m + b/m` | `a` provably divisible by `m` |
//! | `(a + b) % m → b % m` | `a` provably divisible by `m` |
//! | `(x · c) / m → x · (c/m)` | `c % m == 0` |
//! | `(x · c) % m → 0` | `c % m == 0` |
//! | `c * x → x * c` (canonicalization) | constant on the right |
//! | `(x / c) % d → (x % (c·d)) / c` (normalization) | constants > 0 |
//! | `(a + b) · c → a·c + b·c` | `c` constant (exposes sum terms) |
//! | digit recombination: `(x/a)·a·s + (x%a)·s → x·s` and its general form `((x%M)/D_hi)·S_hi + ((x%D_hi)/D_lo)·S_lo → ((x%M)/D_lo)·S_lo` | `D_lo ∣ D_hi`, `S_hi = S_lo·D_hi/D_lo` |
//!
//! All rules preserve the value for every assignment of variables within
//! their extents — verified by the property tests at the bottom of this
//! file and in `tests/`.

use crate::expr::IndexExpr;

/// Maximum rewrite passes; expressions from realistic operator chains
/// converge in 2–4 passes.
const MAX_PASSES: usize = 12;

/// Simplifies `expr` under the variable extents `extents`.
pub(crate) fn simplify(expr: &IndexExpr, extents: &[usize]) -> IndexExpr {
    let mut cur = expr.clone();
    for _ in 0..MAX_PASSES {
        let next = rewrite(&cur, extents);
        if next == cur {
            break;
        }
        cur = next;
    }
    // Distribution can in principle increase the op count when no
    // recombination follows; never return something costlier than the
    // input.
    if cur.cost().weighted() <= expr.cost().weighted() {
        cur
    } else {
        expr.clone()
    }
}

fn rewrite(e: &IndexExpr, ext: &[usize]) -> IndexExpr {
    use IndexExpr as E;
    // Rewrite children first (bottom-up).
    let e = match e {
        E::Add(a, b) => E::add(rewrite(a, ext), rewrite(b, ext)),
        E::Mul(a, b) => E::mul(rewrite(a, ext), rewrite(b, ext)),
        E::Div(a, b) => E::div(rewrite(a, ext), rewrite(b, ext)),
        E::Mod(a, b) => E::rem(rewrite(a, ext), rewrite(b, ext)),
        other => other.clone(),
    };

    match e {
        E::Add(a, b) => rewrite_add(*a, *b),
        E::Mul(a, b) => rewrite_mul(*a, *b),
        E::Div(a, b) => rewrite_div(*a, *b, ext),
        E::Mod(a, b) => rewrite_mod(*a, *b, ext),
        other => other,
    }
}

fn rewrite_add(a: IndexExpr, b: IndexExpr) -> IndexExpr {
    use IndexExpr as E;
    let plain = match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => return E::Const(x + y),
        (Some(0), None) => return b,
        (None, Some(0)) => return a,
        // Canonicalize constants to the right for the Div/Mod split rules.
        (Some(_), None) => E::add(b, a),
        _ => E::add(a, b),
    };
    recombine_sum(&plain).unwrap_or(plain)
}

fn rewrite_mul(a: IndexExpr, b: IndexExpr) -> IndexExpr {
    use IndexExpr as E;
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => E::Const(x * y),
        (Some(0), None) | (None, Some(0)) => E::Const(0),
        (Some(1), None) => b,
        (None, Some(1)) => a,
        // Canonicalize constants to the right.
        (Some(_), None) => rewrite_mul(b, a),
        (None, Some(c)) => {
            // Distribute over sums to expose digit-recombination terms.
            if let E::Add(p, q) = a {
                E::add(rewrite_mul(*p, E::Const(c)), rewrite_mul(*q, E::Const(c)))
            } else {
                E::mul(a, E::Const(c))
            }
        }
        _ => E::mul(a, b),
    }
}

/// One term of a flattened sum in the canonical "digit extraction" form
/// `((base % modulo) / div) * scale` (`modulo = None` means no mod).
struct Term {
    base: IndexExpr,
    div: i64,
    modulo: Option<i64>,
    scale: i64,
}

impl Term {
    fn parse(e: &IndexExpr) -> Option<Term> {
        use IndexExpr as E;
        let (core, scale) = match e {
            E::Mul(x, s) => match s.as_const() {
                Some(c) => (x.as_ref(), c),
                None => (e, 1),
            },
            _ => (e, 1),
        };
        let (core, div) = match core {
            E::Div(x, d) => match d.as_const() {
                Some(c) if c > 0 => (x.as_ref(), c),
                _ => (core, 1),
            },
            _ => (core, 1),
        };
        let (base, modulo) = match core {
            E::Mod(x, m) => match m.as_const() {
                Some(c) if c > 0 => (x.as_ref().clone(), Some(c)),
                _ => (core.clone(), None),
            },
            _ => (core.clone(), None),
        };
        if scale <= 0 {
            return None;
        }
        Some(Term { base, div, modulo, scale })
    }

    fn build(self) -> IndexExpr {
        use IndexExpr as E;
        let mut e = self.base;
        if let Some(m) = self.modulo {
            e = E::rem(e, E::Const(m));
        }
        if self.div != 1 {
            e = E::div(e, E::Const(self.div));
        }
        if self.scale != 1 {
            e = E::mul(e, E::Const(self.scale));
        }
        e
    }

    /// Merges a higher-digit term with a lower-digit term over the same
    /// base when they cover adjacent digit ranges:
    /// `((x%M)/Dh)·Sh + ((x%Dh)/Dl)·Sl = ((x%M)/Dl)·Sl`
    /// provided `Dl | Dh` and `Sh = Sl·Dh/Dl`.
    fn merge(hi: &Term, lo: &Term) -> Option<Term> {
        if hi.base != lo.base {
            return None;
        }
        if lo.modulo != Some(hi.div) {
            return None;
        }
        if hi.div <= 0 || lo.div <= 0 || hi.div % lo.div != 0 {
            return None;
        }
        if hi.scale != lo.scale * (hi.div / lo.div) {
            return None;
        }
        Some(Term { base: hi.base.clone(), div: lo.div, modulo: hi.modulo, scale: lo.scale })
    }
}

/// Attempts digit recombination across a flattened sum tree. Returns
/// `Some(rebuilt)` only when at least one merge happened.
fn recombine_sum(e: &IndexExpr) -> Option<IndexExpr> {
    use IndexExpr as E;
    fn flatten(e: &IndexExpr, out: &mut Vec<IndexExpr>) {
        match e {
            IndexExpr::Add(a, b) => {
                flatten(a, out);
                flatten(b, out);
            }
            other => out.push(other.clone()),
        }
    }
    let mut parts = Vec::new();
    flatten(e, &mut parts);
    if parts.len() < 2 {
        return None;
    }
    let mut constant = 0i64;
    let mut terms: Vec<Term> = Vec::new();
    let mut opaque: Vec<IndexExpr> = Vec::new();
    for p in parts {
        if let Some(c) = p.as_const() {
            constant += c;
        } else {
            match Term::parse(&p) {
                Some(t) => terms.push(t),
                None => opaque.push(p),
            }
        }
    }
    let mut merged_any = false;
    'outer: loop {
        for i in 0..terms.len() {
            for j in 0..terms.len() {
                if i == j {
                    continue;
                }
                if let Some(m) = Term::merge(&terms[i], &terms[j]) {
                    let (a, b) = (i.max(j), i.min(j));
                    terms.remove(a);
                    terms.remove(b);
                    terms.push(m);
                    merged_any = true;
                    continue 'outer;
                }
            }
        }
        break;
    }
    if !merged_any {
        return None;
    }
    let mut out: Option<IndexExpr> = None;
    for piece in terms.into_iter().map(Term::build).chain(opaque) {
        out = Some(match out {
            None => piece,
            Some(acc) => E::add(acc, piece),
        });
    }
    let mut out = out.unwrap_or(E::Const(0));
    if constant != 0 {
        out = E::add(out, E::Const(constant));
    }
    Some(out)
}

fn rewrite_div(a: IndexExpr, b: IndexExpr, ext: &[usize]) -> IndexExpr {
    use IndexExpr as E;
    let Some(m) = b.as_const() else { return E::div(a, b) };
    if m == 1 {
        return a;
    }
    if m <= 0 {
        return E::div(a, b); // degenerate; leave untouched
    }
    if let Some(x) = a.as_const() {
        return E::Const(x.div_euclid(m));
    }
    // e / m -> 0 when e < m.
    if a.range(ext).within(m) {
        return E::Const(0);
    }
    match a {
        // (x / c) / m -> x / (c*m)
        E::Div(x, c) => match c.as_const() {
            Some(ci) if ci > 0 => E::div(*x, E::Const(ci * m)),
            _ => E::div(E::Div(x, c), b),
        },
        // (p + q) / m with p divisible by m -> p/m + q/m (and symmetric).
        E::Add(p, q) => {
            if p.divisible_by(m, ext) || q.divisible_by(m, ext) {
                rewrite_add(rewrite_div(*p, E::Const(m), ext), rewrite_div(*q, E::Const(m), ext))
            } else {
                E::div(E::Add(p, q), b)
            }
        }
        // (x * c) / m -> x * (c/m) when m | c.
        E::Mul(x, c) => match c.as_const() {
            Some(ci) if ci % m == 0 => rewrite_mul(*x, E::Const(ci / m)),
            // (x * c) / m when x*c's range < m handled above; also
            // c | m and x % (m/c) unknown: keep.
            _ => E::div(E::Mul(x, c), b),
        },
        other => E::div(other, b),
    }
}

fn rewrite_mod(a: IndexExpr, b: IndexExpr, ext: &[usize]) -> IndexExpr {
    use IndexExpr as E;
    let Some(m) = b.as_const() else { return E::rem(a, b) };
    if m == 1 {
        return E::Const(0);
    }
    if m <= 0 {
        return E::rem(a, b);
    }
    if let Some(x) = a.as_const() {
        return E::Const(x.rem_euclid(m));
    }
    // e % m -> e when range(e) ⊆ [0, m).
    if a.range(ext).within(m) {
        return a;
    }
    if a.divisible_by(m, ext) {
        return E::Const(0);
    }
    match a {
        // (x % a) % m -> x % m when m | a  (paper's rule: i%Ca%Cb).
        E::Mod(x, c) => match c.as_const() {
            Some(ci) if ci > 0 && ci % m == 0 => rewrite_mod(*x, E::Const(m), ext),
            _ => E::rem(E::Mod(x, c), b),
        },
        // (x / c) % m -> (x % (c*m)) / c  (canonical digit-extraction
        // form; enables recombination and range-based mod elimination).
        E::Div(x, c) => match c.as_const() {
            Some(ci) if ci > 0 => {
                rewrite_div(rewrite_mod(*x, E::Const(ci * m), ext), E::Const(ci), ext)
            }
            _ => E::rem(E::Div(x, c), b),
        },
        // (p + q) % m with p divisible by m -> q % m (and symmetric).
        E::Add(p, q) => {
            if p.divisible_by(m, ext) {
                rewrite_mod(*q, E::Const(m), ext)
            } else if q.divisible_by(m, ext) {
                rewrite_mod(*p, E::Const(m), ext)
            } else {
                E::rem(E::Add(p, q), b)
            }
        }
        other => E::rem(other, b),
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::IndexExpr as E;

    fn simp(e: &E, ext: &[usize]) -> E {
        super::simplify(e, ext)
    }

    #[test]
    fn constant_folding() {
        let e = E::add(E::Const(3), E::mul(E::Const(4), E::Const(5)));
        assert_eq!(simp(&e, &[]), E::Const(23));
    }

    #[test]
    fn identity_rules() {
        assert_eq!(simp(&E::add(E::Var(0), E::Const(0)), &[8]), E::Var(0));
        assert_eq!(simp(&E::mul(E::Var(0), E::Const(1)), &[8]), E::Var(0));
        assert_eq!(simp(&E::mul(E::Var(0), E::Const(0)), &[8]), E::Const(0));
        assert_eq!(simp(&E::div(E::Var(0), E::Const(1)), &[8]), E::Var(0));
        assert_eq!(simp(&E::rem(E::Var(0), E::Const(1)), &[8]), E::Const(0));
    }

    #[test]
    fn paper_mod_mod_rule() {
        // i % 32 % 8 -> i % 8 because 32 % 8 == 0.
        let e = E::rem(E::rem(E::Var(0), E::Const(32)), E::Const(8));
        assert_eq!(simp(&e, &[1024]), E::rem(E::Var(0), E::Const(8)));
    }

    #[test]
    fn mod_mod_incompatible_kept() {
        // i % 6 % 4 cannot drop the inner mod (6 % 4 != 0) — but range
        // of (i % 6) is [0,5], not within 4, so the expression stays.
        let e = E::rem(E::rem(E::Var(0), E::Const(6)), E::Const(4));
        let s = simp(&e, &[1024]);
        assert_eq!(s, e);
    }

    #[test]
    fn range_based_mod_elimination() {
        // i % 16 with i < 8 -> i.
        let e = E::rem(E::Var(0), E::Const(16));
        assert_eq!(simp(&e, &[8]), E::Var(0));
    }

    #[test]
    fn range_based_div_elimination() {
        // i / 16 with i < 8 -> 0.
        let e = E::div(E::Var(0), E::Const(16));
        assert_eq!(simp(&e, &[8]), E::Const(0));
    }

    #[test]
    fn div_div_merge() {
        let e = E::div(E::div(E::Var(0), E::Const(4)), E::Const(8));
        assert_eq!(simp(&e, &[4096]), E::div(E::Var(0), E::Const(32)));
    }

    #[test]
    fn linear_form_div_distributes() {
        // (i0*32 + i1) / 32 with i1 < 32 -> i0.
        let e = E::div(E::add(E::mul(E::Var(0), E::Const(32)), E::Var(1)), E::Const(32));
        assert_eq!(simp(&e, &[64, 32]), E::Var(0));
    }

    #[test]
    fn linear_form_mod_drops_multiples() {
        // (i0*32 + i1) % 32 with i1 < 32 -> i1.
        let e = E::rem(E::add(E::mul(E::Var(0), E::Const(32)), E::Var(1)), E::Const(32));
        assert_eq!(simp(&e, &[64, 32]), E::Var(1));
    }

    #[test]
    fn partial_distribution() {
        // (i0*16 + i1) / 4 with i1 < 16 -> i0*4 + i1/4.
        let e = E::div(E::add(E::mul(E::Var(0), E::Const(16)), E::Var(1)), E::Const(4));
        let s = simp(&e, &[8, 16]);
        assert_eq!(s, E::add(E::mul(E::Var(0), E::Const(4)), E::div(E::Var(1), E::Const(4))));
    }

    #[test]
    fn canonicalizes_const_right() {
        let e = E::mul(E::Const(4), E::Var(0));
        assert_eq!(simp(&e, &[8]), E::mul(E::Var(0), E::Const(4)));
    }

    #[test]
    fn simplification_reduces_cost() {
        // Figure 3-style stacked reshape indices.
        let lin = E::add(
            E::add(E::mul(E::Var(0), E::Const(128)), E::mul(E::Var(1), E::Const(16))),
            E::add(E::mul(E::Var(2), E::Const(4)), E::Var(3)),
        );
        let in2 = E::rem(lin.clone(), E::Const(4)); // -> i3
        let s = simp(&in2, &[16, 8, 4, 4]);
        assert_eq!(s, E::Var(3));
        assert!(s.cost().weighted() < in2.cost().weighted());
    }
}
