//! Symbolic integer index expressions (hash-consed handles).

use crate::intern::{self, Arena, ExprId, Node};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Inclusive integer interval used for range analysis.
///
/// All index expressions in this crate are non-negative by construction
/// (coordinates and extents), but the interval arithmetic handles general
/// signed endpoints defensively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Range {
    /// Smallest possible value.
    pub min: i64,
    /// Largest possible value.
    pub max: i64,
}

impl Range {
    /// A single-point interval.
    pub fn point(v: i64) -> Self {
        Range { min: v, max: v }
    }

    /// Whether the whole interval lies in `[0, bound)`.
    pub fn within(&self, bound: i64) -> bool {
        self.min >= 0 && self.max < bound
    }
}

/// A symbolic integer expression over coordinate variables.
///
/// `var(i)` ranges over `[0, extents[i])` where `extents` is supplied by
/// the enclosing [`crate::IndexMap`] (the iteration space of the consumer
/// operator). Division is floor division; `%` is the non-negative
/// remainder — both match GPU integer semantics for the non-negative
/// values that occur in index computation.
///
/// Expressions are *hash-consed*: an `IndexExpr` is a `Copy` handle into
/// a process-wide arena, structurally equal expressions share one arena
/// node, and `==` is an O(1) id compare. Use [`IndexExpr::view`] to
/// pattern-match one level of structure, and the static constructors
/// ([`IndexExpr::var`], [`IndexExpr::constant`], [`IndexExpr::add`], …)
/// to build terms. `Hash` hashes a stable structural digest computed at
/// intern time, so hashes are independent of arena insertion order and
/// safe to fold into persisted cache fingerprints.
#[derive(Clone, Copy)]
pub struct IndexExpr {
    id: ExprId,
    digest: u64,
}

impl PartialEq for IndexExpr {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes id equality equivalent to structural
        // equality.
        self.id == other.id
    }
}

impl Eq for IndexExpr {}

impl Hash for IndexExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The structural digest, not the id: digests are stable across
        // processes, ids depend on interning order.
        self.digest.hash(state);
    }
}

/// One level of an [`IndexExpr`]'s structure, for pattern matching
/// (children are again handles).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExprView {
    /// Coordinate variable `i`.
    Var(usize),
    /// Integer constant.
    Const(i64),
    /// Sum.
    Add(IndexExpr, IndexExpr),
    /// Product.
    Mul(IndexExpr, IndexExpr),
    /// Floor division.
    Div(IndexExpr, IndexExpr),
    /// Remainder.
    Mod(IndexExpr, IndexExpr),
}

/// Operation counts of an index expression — the quantity the paper's
/// strength reduction minimizes (`/` and `%` are "expensive on GPUs",
/// §3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExprCost {
    /// Additions/subtractions.
    pub adds: u32,
    /// Multiplications.
    pub muls: u32,
    /// Floor divisions.
    pub divs: u32,
    /// Modulo operations.
    pub mods: u32,
}

impl ExprCost {
    /// Total `/` + `%` operations.
    pub fn divmods(&self) -> u32 {
        self.divs + self.mods
    }

    /// Scalar cost with GPU-typical weights (div/mod ≈ 8× an add,
    /// mul ≈ 2×). Used by the simulator's index-overhead model.
    pub fn weighted(&self) -> f64 {
        self.adds as f64 + 2.0 * self.muls as f64 + 8.0 * (self.divs + self.mods) as f64
    }

    /// Component-wise sum.
    pub fn combine(self, other: ExprCost) -> ExprCost {
        ExprCost {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            divs: self.divs + other.divs,
            mods: self.mods + other.mods,
        }
    }
}

impl IndexExpr {
    pub(crate) fn from_id(arena: &Arena, id: ExprId) -> IndexExpr {
        IndexExpr { id, digest: arena.digest(id) }
    }

    pub(crate) fn id(&self) -> ExprId {
        self.id
    }

    /// Coordinate variable `i`.
    pub fn var(i: usize) -> IndexExpr {
        intern::with_write(|a| {
            let id = a.var(i);
            IndexExpr::from_id(a, id)
        })
    }

    /// Integer constant.
    pub fn constant(c: i64) -> IndexExpr {
        intern::with_write(|a| {
            let id = a.constant(c);
            IndexExpr::from_id(a, id)
        })
    }

    /// Convenience constructor: `a + b` (also available as `a + b` via
    /// [`std::ops::Add`]).
    #[allow(clippy::should_implement_trait)] // std::ops::Add is implemented and delegates here
    pub fn add(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        intern::with_write(|ar| {
            let id = ar.add(a.id, b.id);
            IndexExpr::from_id(ar, id)
        })
    }

    /// Convenience constructor: `a * b` (also available as `a * b` via
    /// [`std::ops::Mul`]).
    #[allow(clippy::should_implement_trait)] // std::ops::Mul is implemented and delegates here
    pub fn mul(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        intern::with_write(|ar| {
            let id = ar.mul(a.id, b.id);
            IndexExpr::from_id(ar, id)
        })
    }

    /// Convenience constructor: `a / b` (floor; also available as
    /// `a / b` via [`std::ops::Div`]).
    #[allow(clippy::should_implement_trait)] // std::ops::Div is implemented and delegates here
    pub fn div(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        intern::with_write(|ar| {
            let id = ar.div(a.id, b.id);
            IndexExpr::from_id(ar, id)
        })
    }

    /// Convenience constructor: `a % b` (also available as `a % b` via
    /// [`std::ops::Rem`]).
    #[allow(clippy::should_implement_trait)] // std::ops::Rem is implemented and delegates here
    pub fn rem(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        intern::with_write(|ar| {
            let id = ar.rem(a.id, b.id);
            IndexExpr::from_id(ar, id)
        })
    }

    /// One level of structure, for pattern matching.
    pub fn view(&self) -> ExprView {
        intern::with_read(|a| match a.node(self.id) {
            Node::Var(i) => ExprView::Var(i),
            Node::Const(c) => ExprView::Const(c),
            Node::Add(x, y) => ExprView::Add(IndexExpr::from_id(a, x), IndexExpr::from_id(a, y)),
            Node::Mul(x, y) => ExprView::Mul(IndexExpr::from_id(a, x), IndexExpr::from_id(a, y)),
            Node::Div(x, y) => ExprView::Div(IndexExpr::from_id(a, x), IndexExpr::from_id(a, y)),
            Node::Mod(x, y) => ExprView::Mod(IndexExpr::from_id(a, x), IndexExpr::from_id(a, y)),
        })
    }

    /// Evaluates the expression for concrete variable values.
    ///
    /// # Panics
    ///
    /// Panics on division/modulo by zero or a variable index out of
    /// range of `vars`.
    pub fn eval(&self, vars: &[i64]) -> i64 {
        intern::with_read(|a| a.eval(self.id, vars))
    }

    /// Interval of possible values given per-variable extents
    /// (`var(i) ∈ [0, extents[i])`).
    pub fn range(&self, extents: &[usize]) -> Range {
        intern::with_read(|a| a.range(self.id, extents, &mut HashMap::new()))
    }

    /// The constant value if the expression is a literal.
    pub fn as_const(&self) -> Option<i64> {
        intern::with_read(|a| a.as_const(self.id))
    }

    /// The variable index if the expression is a bare coordinate
    /// variable.
    pub fn as_var(&self) -> Option<usize> {
        intern::with_read(|a| a.as_var(self.id))
    }

    /// Whether the expression is provably divisible by `m` for all
    /// variable values (used by the `(a·c + b) / c` and `%` rewrite
    /// rules).
    pub fn divisible_by(&self, m: i64, extents: &[usize]) -> bool {
        intern::with_read(|a| a.divisible_by(self.id, m, extents))
    }

    /// Variables referenced by the expression, ascending and deduplicated.
    pub fn vars(&self) -> Vec<usize> {
        let mut v = intern::with_read(|a| {
            let mut out = Vec::new();
            a.collect_vars(self.id, &mut out, &mut HashMap::new());
            out
        });
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Operation counts.
    pub fn cost(&self) -> ExprCost {
        intern::with_read(|a| a.cost(self.id, &mut HashMap::new()))
    }

    /// Substitutes `replacements[i]` for `var(i)`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of `replacements`.
    pub fn substitute(&self, replacements: &[IndexExpr]) -> IndexExpr {
        intern::with_write(|a| {
            let reps: Vec<ExprId> = replacements.iter().map(|r| r.id).collect();
            let id = a.substitute(self.id, &reps, &mut HashMap::new());
            IndexExpr::from_id(a, id)
        })
    }

    /// Applies the strength-reduction rules to a fixpoint (bounded number
    /// of passes). `extents` gives each variable's iteration extent for
    /// range-based rules. See the `simplify` module internals for the
    /// rule catalogue.
    pub fn simplify(&self, extents: &[usize]) -> IndexExpr {
        intern::with_write(|a| {
            let mut rw = crate::simplify::Rewriter::new(a, extents);
            let id = rw.simplify(self.id);
            IndexExpr::from_id(rw.arena(), id)
        })
    }
}

impl std::ops::Add for IndexExpr {
    type Output = IndexExpr;
    fn add(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::add(self, rhs)
    }
}

impl std::ops::Mul for IndexExpr {
    type Output = IndexExpr;
    fn mul(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::mul(self, rhs)
    }
}

impl std::ops::Div for IndexExpr {
    type Output = IndexExpr;
    fn div(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::div(self, rhs)
    }
}

impl std::ops::Rem for IndexExpr {
    type Output = IndexExpr;
    fn rem(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::rem(self, rhs)
    }
}

/// Substitutes every expression in `exprs` against one replacement list,
/// sharing a single arena lock and substitution memo (the hot path of
/// [`crate::IndexMap::then`]).
pub(crate) fn substitute_all(exprs: &[IndexExpr], replacements: &[IndexExpr]) -> Vec<IndexExpr> {
    intern::with_write(|a| {
        let reps: Vec<ExprId> = replacements.iter().map(|r| r.id).collect();
        let mut memo = HashMap::new();
        exprs
            .iter()
            .map(|e| {
                let id = a.substitute(e.id, &reps, &mut memo);
                IndexExpr::from_id(a, id)
            })
            .collect()
    })
}

/// Simplifies every expression in `exprs` under one extent list, sharing
/// a single arena lock and rewrite/range/cost memos across components.
pub(crate) fn simplify_all(exprs: &[IndexExpr], extents: &[usize]) -> Vec<IndexExpr> {
    intern::with_write(|a| {
        let mut rw = crate::simplify::Rewriter::new(a, extents);
        let ids: Vec<ExprId> = exprs.iter().map(|e| rw.simplify(e.id)).collect();
        ids.into_iter().map(|id| IndexExpr::from_id(rw.arena(), id)).collect()
    })
}

/// Evaluates every expression in `exprs` under one variable assignment
/// with a single arena lock (the hot path of [`crate::IndexMap::eval`]).
pub(crate) fn eval_all(exprs: &[IndexExpr], vars: &[i64]) -> Vec<i64> {
    intern::with_read(|a| exprs.iter().map(|e| a.eval(e.id, vars)).collect())
}

/// Sums the costs of `exprs` with a single arena lock and a shared
/// per-node memo.
pub(crate) fn cost_all(exprs: &[IndexExpr]) -> ExprCost {
    intern::with_read(|a| {
        let mut memo = HashMap::new();
        exprs.iter().fold(ExprCost::default(), |acc, e| acc.combine(a.cost(e.id, &mut memo)))
    })
}

fn fmt_display(a: &Arena, id: ExprId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match a.node(id) {
        Node::Var(i) => write!(f, "i{i}"),
        Node::Const(c) => write!(f, "{c}"),
        Node::Add(x, y) => {
            write!(f, "(")?;
            fmt_display(a, x, f)?;
            write!(f, " + ")?;
            fmt_display(a, y, f)?;
            write!(f, ")")
        }
        Node::Mul(x, y) => {
            write!(f, "(")?;
            fmt_display(a, x, f)?;
            write!(f, " * ")?;
            fmt_display(a, y, f)?;
            write!(f, ")")
        }
        Node::Div(x, y) => {
            write!(f, "(")?;
            fmt_display(a, x, f)?;
            write!(f, " / ")?;
            fmt_display(a, y, f)?;
            write!(f, ")")
        }
        Node::Mod(x, y) => {
            write!(f, "(")?;
            fmt_display(a, x, f)?;
            write!(f, " % ")?;
            fmt_display(a, y, f)?;
            write!(f, ")")
        }
    }
}

fn fmt_debug(a: &Arena, id: ExprId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pair = |name: &str, x: ExprId, y: ExprId, f: &mut fmt::Formatter<'_>| -> fmt::Result {
        write!(f, "{name}(")?;
        fmt_debug(a, x, f)?;
        write!(f, ", ")?;
        fmt_debug(a, y, f)?;
        write!(f, ")")
    };
    match a.node(id) {
        Node::Var(i) => write!(f, "Var({i})"),
        Node::Const(c) => write!(f, "Const({c})"),
        Node::Add(x, y) => pair("Add", x, y, f),
        Node::Mul(x, y) => pair("Mul", x, y, f),
        Node::Div(x, y) => pair("Div", x, y, f),
        Node::Mod(x, y) => pair("Mod", x, y, f),
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        intern::with_read(|a| fmt_display(a, self.id, f))
    }
}

impl fmt::Debug for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Structural rendering in the pre-interning derive format
        // (`Add(Var(0), Const(4))`), so diagnostics stay readable.
        intern::with_read(|a| fmt_debug(a, self.id, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IndexExpr as E;

    #[test]
    fn eval_basics() {
        let e = E::add(E::mul(E::var(0), E::constant(4)), E::var(1));
        assert_eq!(e.eval(&[3, 2]), 14);
        assert_eq!(E::div(E::constant(7), E::constant(2)).eval(&[]), 3);
        assert_eq!(E::rem(E::constant(7), E::constant(4)).eval(&[]), 3);
    }

    #[test]
    fn range_of_linear_form() {
        // i0*4 + i1 with i0 < 8, i1 < 4  ->  [0, 31]
        let e = E::add(E::mul(E::var(0), E::constant(4)), E::var(1));
        assert_eq!(e.range(&[8, 4]), Range { min: 0, max: 31 });
    }

    #[test]
    fn range_of_div_mod() {
        let e = E::div(E::var(0), E::constant(4));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 3 });
        let e = E::rem(E::var(0), E::constant(4));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 3 });
        // mod with already-smaller range keeps the tight range
        let e = E::rem(E::var(0), E::constant(100));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 15 });
    }

    #[test]
    fn divisibility() {
        let e = E::add(E::mul(E::var(0), E::constant(8)), E::mul(E::var(1), E::constant(4)));
        assert!(e.divisible_by(4, &[16, 16]));
        assert!(!e.divisible_by(3, &[16, 16]));
        let with_var = E::add(e, E::var(2));
        assert!(!with_var.divisible_by(4, &[16, 16, 16]));
    }

    #[test]
    fn unit_extent_vars_are_divisible() {
        assert!(E::var(0).divisible_by(4, &[1]));
    }

    #[test]
    fn cost_counts_ops() {
        let e = E::rem(E::div(E::var(0), E::constant(4)), E::constant(8));
        let c = e.cost();
        assert_eq!((c.divs, c.mods, c.adds, c.muls), (1, 1, 0, 0));
        assert_eq!(c.divmods(), 2);
        assert!(c.weighted() > 15.0);
    }

    #[test]
    fn substitute_replaces_vars() {
        let e = E::add(E::var(0), E::mul(E::var(1), E::constant(2)));
        let s = e.substitute(&[E::constant(5), E::var(0)]);
        assert_eq!(s.eval(&[3]), 11);
    }

    #[test]
    fn vars_deduplicated() {
        let e = E::add(E::var(2), E::mul(E::var(2), E::var(0)));
        assert_eq!(e.vars(), vec![0, 2]);
    }

    #[test]
    fn display_renders() {
        let e = E::div(E::var(0), E::constant(4));
        assert_eq!(e.to_string(), "(i0 / 4)");
    }

    #[test]
    fn debug_renders_structurally() {
        let e = E::add(E::var(0), E::constant(4));
        assert_eq!(format!("{e:?}"), "Add(Var(0), Const(4))");
    }

    #[test]
    fn interned_equality_is_structural() {
        let a = E::add(E::mul(E::var(0), E::constant(4)), E::var(1));
        let b = E::add(E::mul(E::var(0), E::constant(4)), E::var(1));
        assert_eq!(a, b);
        let c = E::add(E::var(1), E::mul(E::var(0), E::constant(4)));
        assert_ne!(a, c);
    }

    #[test]
    fn view_matches_structure() {
        let e = E::add(E::var(0), E::constant(4));
        match e.view() {
            ExprView::Add(x, y) => {
                assert_eq!(x.as_var(), Some(0));
                assert_eq!(y.as_const(), Some(4));
            }
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn hash_is_stable_structural_digest() {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let h = |e: &E| {
            let mut s = DefaultHasher::new();
            e.hash(&mut s);
            s.finish()
        };
        let a = E::rem(E::var(0), E::constant(8));
        let b = E::rem(E::var(0), E::constant(8));
        assert_eq!(h(&a), h(&b));
        assert_ne!(h(&a), h(&E::div(E::var(0), E::constant(8))));
    }
}
