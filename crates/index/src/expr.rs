//! Symbolic integer index expressions.

use std::fmt;

/// Inclusive integer interval used for range analysis.
///
/// All index expressions in this crate are non-negative by construction
/// (coordinates and extents), but the interval arithmetic handles general
/// signed endpoints defensively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Range {
    /// Smallest possible value.
    pub min: i64,
    /// Largest possible value.
    pub max: i64,
}

impl Range {
    /// A single-point interval.
    pub fn point(v: i64) -> Self {
        Range { min: v, max: v }
    }

    /// Whether the whole interval lies in `[0, bound)`.
    pub fn within(&self, bound: i64) -> bool {
        self.min >= 0 && self.max < bound
    }
}

/// A symbolic integer expression over coordinate variables.
///
/// `Var(i)` ranges over `[0, extents[i])` where `extents` is supplied by
/// the enclosing [`crate::IndexMap`] (the iteration space of the consumer
/// operator). Division is floor division; `Mod` is the non-negative
/// remainder — both match GPU integer semantics for the non-negative
/// values that occur in index computation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IndexExpr {
    /// Coordinate variable `i`.
    Var(usize),
    /// Integer constant.
    Const(i64),
    /// Sum.
    Add(Box<IndexExpr>, Box<IndexExpr>),
    /// Product.
    Mul(Box<IndexExpr>, Box<IndexExpr>),
    /// Floor division.
    Div(Box<IndexExpr>, Box<IndexExpr>),
    /// Remainder.
    Mod(Box<IndexExpr>, Box<IndexExpr>),
}

/// Operation counts of an index expression — the quantity the paper's
/// strength reduction minimizes (`/` and `%` are "expensive on GPUs",
/// §3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExprCost {
    /// Additions/subtractions.
    pub adds: u32,
    /// Multiplications.
    pub muls: u32,
    /// Floor divisions.
    pub divs: u32,
    /// Modulo operations.
    pub mods: u32,
}

impl ExprCost {
    /// Total `/` + `%` operations.
    pub fn divmods(&self) -> u32 {
        self.divs + self.mods
    }

    /// Scalar cost with GPU-typical weights (div/mod ≈ 8× an add,
    /// mul ≈ 2×). Used by the simulator's index-overhead model.
    pub fn weighted(&self) -> f64 {
        self.adds as f64 + 2.0 * self.muls as f64 + 8.0 * (self.divs + self.mods) as f64
    }

    /// Component-wise sum.
    pub fn combine(self, other: ExprCost) -> ExprCost {
        ExprCost {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            divs: self.divs + other.divs,
            mods: self.mods + other.mods,
        }
    }
}

// Static two-argument constructors, not operator overloads (the
// expression tree owns its children via `Box`).
#[allow(clippy::should_implement_trait)]
impl IndexExpr {
    /// Convenience constructor: `a + b`.
    pub fn add(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        IndexExpr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a * b`.
    pub fn mul(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        IndexExpr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a / b` (floor).
    pub fn div(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        IndexExpr::Div(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a % b`.
    pub fn rem(a: IndexExpr, b: IndexExpr) -> IndexExpr {
        IndexExpr::Mod(Box::new(a), Box::new(b))
    }

    /// Evaluates the expression for concrete variable values.
    ///
    /// # Panics
    ///
    /// Panics on division/modulo by zero or a variable index out of
    /// range of `vars`.
    pub fn eval(&self, vars: &[i64]) -> i64 {
        match self {
            IndexExpr::Var(i) => vars[*i],
            IndexExpr::Const(c) => *c,
            IndexExpr::Add(a, b) => a.eval(vars) + b.eval(vars),
            IndexExpr::Mul(a, b) => a.eval(vars) * b.eval(vars),
            IndexExpr::Div(a, b) => a.eval(vars).div_euclid(b.eval(vars)),
            IndexExpr::Mod(a, b) => a.eval(vars).rem_euclid(b.eval(vars)),
        }
    }

    /// Interval of possible values given per-variable extents
    /// (`Var(i) ∈ [0, extents[i])`).
    pub fn range(&self, extents: &[usize]) -> Range {
        match self {
            IndexExpr::Var(i) => Range { min: 0, max: extents[*i].saturating_sub(1) as i64 },
            IndexExpr::Const(c) => Range::point(*c),
            IndexExpr::Add(a, b) => {
                let (ra, rb) = (a.range(extents), b.range(extents));
                Range { min: ra.min.saturating_add(rb.min), max: ra.max.saturating_add(rb.max) }
            }
            IndexExpr::Mul(a, b) => {
                let (ra, rb) = (a.range(extents), b.range(extents));
                let products = [
                    ra.min.saturating_mul(rb.min),
                    ra.min.saturating_mul(rb.max),
                    ra.max.saturating_mul(rb.min),
                    ra.max.saturating_mul(rb.max),
                ];
                Range {
                    min: *products.iter().min().expect("non-empty"),
                    max: *products.iter().max().expect("non-empty"),
                }
            }
            IndexExpr::Div(a, b) => {
                let ra = a.range(extents);
                match b.as_const() {
                    Some(d) if d > 0 => {
                        Range { min: ra.min.div_euclid(d), max: ra.max.div_euclid(d) }
                    }
                    _ => Range { min: i64::MIN / 2, max: i64::MAX / 2 },
                }
            }
            IndexExpr::Mod(a, b) => {
                let ra = a.range(extents);
                match b.as_const() {
                    Some(m) if m > 0 => {
                        if ra.within(m) {
                            ra
                        } else {
                            Range { min: 0, max: m - 1 }
                        }
                    }
                    _ => Range { min: i64::MIN / 2, max: i64::MAX / 2 },
                }
            }
        }
    }

    /// The constant value if the expression is a literal.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IndexExpr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Whether the expression is provably divisible by `m` for all
    /// variable values (used by the `(a·c + b) / c` and `%` rewrite
    /// rules).
    pub fn divisible_by(&self, m: i64, extents: &[usize]) -> bool {
        if m == 1 {
            return true;
        }
        match self {
            IndexExpr::Const(c) => c % m == 0,
            IndexExpr::Var(i) => extents[*i] == 1, // always zero
            IndexExpr::Add(a, b) => a.divisible_by(m, extents) && b.divisible_by(m, extents),
            IndexExpr::Mul(a, b) => a.divisible_by(m, extents) || b.divisible_by(m, extents),
            _ => false,
        }
    }

    /// Variables referenced by the expression, ascending and deduplicated.
    pub fn vars(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            IndexExpr::Var(i) => out.push(*i),
            IndexExpr::Const(_) => {}
            IndexExpr::Add(a, b)
            | IndexExpr::Mul(a, b)
            | IndexExpr::Div(a, b)
            | IndexExpr::Mod(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Operation counts.
    pub fn cost(&self) -> ExprCost {
        match self {
            IndexExpr::Var(_) | IndexExpr::Const(_) => ExprCost::default(),
            IndexExpr::Add(a, b) => {
                a.cost().combine(b.cost()).combine(ExprCost { adds: 1, ..Default::default() })
            }
            IndexExpr::Mul(a, b) => {
                a.cost().combine(b.cost()).combine(ExprCost { muls: 1, ..Default::default() })
            }
            IndexExpr::Div(a, b) => {
                a.cost().combine(b.cost()).combine(ExprCost { divs: 1, ..Default::default() })
            }
            IndexExpr::Mod(a, b) => {
                a.cost().combine(b.cost()).combine(ExprCost { mods: 1, ..Default::default() })
            }
        }
    }

    /// Substitutes `replacements[i]` for `Var(i)`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of `replacements`.
    pub fn substitute(&self, replacements: &[IndexExpr]) -> IndexExpr {
        match self {
            IndexExpr::Var(i) => replacements[*i].clone(),
            IndexExpr::Const(c) => IndexExpr::Const(*c),
            IndexExpr::Add(a, b) => {
                IndexExpr::add(a.substitute(replacements), b.substitute(replacements))
            }
            IndexExpr::Mul(a, b) => {
                IndexExpr::mul(a.substitute(replacements), b.substitute(replacements))
            }
            IndexExpr::Div(a, b) => {
                IndexExpr::div(a.substitute(replacements), b.substitute(replacements))
            }
            IndexExpr::Mod(a, b) => {
                IndexExpr::rem(a.substitute(replacements), b.substitute(replacements))
            }
        }
    }

    /// Applies the strength-reduction rules to a fixpoint (bounded number
    /// of passes). `extents` gives each variable's iteration extent for
    /// range-based rules. See the `simplify` module internals for the
    /// rule catalogue.
    pub fn simplify(&self, extents: &[usize]) -> IndexExpr {
        crate::simplify::simplify(self, extents)
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Var(i) => write!(f, "i{i}"),
            IndexExpr::Const(c) => write!(f, "{c}"),
            IndexExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IndexExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            IndexExpr::Div(a, b) => write!(f, "({a} / {b})"),
            IndexExpr::Mod(a, b) => write!(f, "({a} % {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IndexExpr as E;

    #[test]
    fn eval_basics() {
        let e = E::add(E::mul(E::Var(0), E::Const(4)), E::Var(1));
        assert_eq!(e.eval(&[3, 2]), 14);
        assert_eq!(E::div(E::Const(7), E::Const(2)).eval(&[]), 3);
        assert_eq!(E::rem(E::Const(7), E::Const(4)).eval(&[]), 3);
    }

    #[test]
    fn range_of_linear_form() {
        // i0*4 + i1 with i0 < 8, i1 < 4  ->  [0, 31]
        let e = E::add(E::mul(E::Var(0), E::Const(4)), E::Var(1));
        assert_eq!(e.range(&[8, 4]), Range { min: 0, max: 31 });
    }

    #[test]
    fn range_of_div_mod() {
        let e = E::div(E::Var(0), E::Const(4));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 3 });
        let e = E::rem(E::Var(0), E::Const(4));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 3 });
        // mod with already-smaller range keeps the tight range
        let e = E::rem(E::Var(0), E::Const(100));
        assert_eq!(e.range(&[16]), Range { min: 0, max: 15 });
    }

    #[test]
    fn divisibility() {
        let e = E::add(E::mul(E::Var(0), E::Const(8)), E::mul(E::Var(1), E::Const(4)));
        assert!(e.divisible_by(4, &[16, 16]));
        assert!(!e.divisible_by(3, &[16, 16]));
        let with_var = E::add(e, E::Var(2));
        assert!(!with_var.divisible_by(4, &[16, 16, 16]));
    }

    #[test]
    fn unit_extent_vars_are_divisible() {
        assert!(E::Var(0).divisible_by(4, &[1]));
    }

    #[test]
    fn cost_counts_ops() {
        let e = E::rem(E::div(E::Var(0), E::Const(4)), E::Const(8));
        let c = e.cost();
        assert_eq!((c.divs, c.mods, c.adds, c.muls), (1, 1, 0, 0));
        assert_eq!(c.divmods(), 2);
        assert!(c.weighted() > 15.0);
    }

    #[test]
    fn substitute_replaces_vars() {
        let e = E::add(E::Var(0), E::mul(E::Var(1), E::Const(2)));
        let s = e.substitute(&[E::Const(5), E::Var(0)]);
        assert_eq!(s.eval(&[3]), 11);
    }

    #[test]
    fn vars_deduplicated() {
        let e = E::add(E::Var(2), E::mul(E::Var(2), E::Var(0)));
        assert_eq!(e.vars(), vec![0, 2]);
    }

    #[test]
    fn display_renders() {
        let e = E::div(E::Var(0), E::Const(4));
        assert_eq!(e.to_string(), "(i0 / 4)");
    }
}
