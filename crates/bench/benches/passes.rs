//! Criterion benchmarks of the SmartMem compiler passes and the
//! simulator itself (wall-clock cost of this repository's own code, as
//! opposed to the modeled device latencies printed by the table/figure
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use smartmem_core::{eliminate, fuse, Framework, SmartMemPipeline};
use smartmem_index::IndexMap;
use smartmem_models as models;
use smartmem_sim::{CacheConfig, CacheSim, DeviceConfig};
use std::hint::black_box;

fn bench_index_engine(c: &mut Criterion) {
    c.bench_function("index/compose+simplify fig3 chain", |b| {
        b.iter(|| {
            let r = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
            let t = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
            black_box(r.then(&t).simplify())
        })
    });
}

fn bench_lte(c: &mut Criterion) {
    let swin = models::swin_tiny(1);
    c.bench_function("lte/eliminate swin", |b| {
        b.iter(|| black_box(eliminate(&swin, true, true)))
    });
    let lte = eliminate(&swin, true, true);
    c.bench_function("fusion/group swin", |b| b.iter(|| black_box(fuse(&swin, &lte, true))));
}

fn bench_pipeline(c: &mut Criterion) {
    let swin = models::swin_tiny(1);
    let device = DeviceConfig::snapdragon_8gen2();
    c.bench_function("pipeline/optimize swin", |b| {
        b.iter(|| black_box(SmartMemPipeline::new().optimize(&swin, &device).unwrap()))
    });
    let opt = SmartMemPipeline::new().optimize(&swin, &device).unwrap();
    c.bench_function("pipeline/estimate swin", |b| b.iter(|| black_box(opt.estimate(&device))));
}

fn bench_model_builders(c: &mut Criterion) {
    c.bench_function("models/build swin", |b| b.iter(|| black_box(models::swin_tiny(1))));
    c.bench_function("models/build cswin", |b| b.iter(|| black_box(models::cswin(1))));
}

fn bench_cache_sim(c: &mut Criterion) {
    c.bench_function("sim/cache 64k accesses", |b| {
        b.iter(|| {
            let mut cache = CacheSim::new(CacheConfig { size_bytes: 1 << 20, line_bytes: 64, ways: 8 });
            for i in 0..65536u64 {
                cache.access(black_box(i % 4096));
            }
            black_box(cache.miss_ratio())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_engine, bench_lte, bench_pipeline, bench_model_builders, bench_cache_sim
}
criterion_main!(benches);
