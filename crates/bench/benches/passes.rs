//! Benchmarks of the SmartMem compiler passes and the simulator itself
//! (wall-clock cost of this repository's own code, as opposed to the
//! modeled device latencies printed by the table/figure binaries).
//!
//! The container has no criterion crate, so this is a `harness = false`
//! bench with a small median-of-N timing loop. Run with
//! `cargo bench -p smartmem-bench`.

use smartmem_core::{eliminate, fuse, CompileSession, Framework, SmartMemPipeline};
use smartmem_index::IndexMap;
use smartmem_models as models;
use smartmem_sim::{CacheConfig, CacheSim, DeviceConfig};
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` repeatedly and prints the median per-iteration time.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up, then size the batch so one sample takes ~1 ms.
    f();
    let probe = Instant::now();
    f();
    let per_iter = probe.elapsed().as_secs_f64().max(1e-9);
    let batch = ((1e-3 / per_iter) as usize).clamp(1, 10_000);
    let samples = 10;
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        times.push(start.elapsed().as_secs_f64() / batch as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[samples / 2];
    println!("{name:<40} {:>12.2} us/iter", median * 1e6);
}

fn bench_index_engine() {
    bench("index/compose+simplify fig3 chain", || {
        let r = IndexMap::reshape(&[2, 256, 4], &[16, 8, 4, 4]);
        let t = IndexMap::transpose(&[16, 8, 4, 4], &[0, 2, 1, 3]);
        black_box(r.then(&t).simplify());
    });
}

fn bench_lte() {
    let swin = models::swin_tiny(1);
    bench("lte/eliminate swin", || {
        black_box(eliminate(&swin, true, true));
    });
    let lte = eliminate(&swin, true, true);
    bench("fusion/group swin", || {
        black_box(fuse(&swin, &lte, true));
    });
}

fn bench_pipeline() {
    let swin = models::swin_tiny(1);
    let device = DeviceConfig::snapdragon_8gen2();
    bench("pipeline/optimize swin", || {
        black_box(SmartMemPipeline::new().optimize(&swin, &device).unwrap());
    });
    let opt = SmartMemPipeline::new().optimize(&swin, &device).unwrap();
    bench("pipeline/estimate swin", || {
        black_box(opt.estimate(&device));
    });
    // Per-pass breakdown of one compilation, from the pass manager.
    let timed = SmartMemPipeline::new().optimize_timed(&swin, &device).unwrap();
    for t in &timed.timings {
        println!(
            "  pass/{:<36} {:>12.2} us (kernels {})",
            t.pass,
            t.duration.as_secs_f64() * 1e6,
            t.stats.kernel_count
        );
    }
    // Cached recompiles through a session.
    let session = CompileSession::new();
    let fw = SmartMemPipeline::new();
    session.compile(&fw, &swin, &device).unwrap();
    bench("session/compile swin (warm cache)", || {
        black_box(session.compile(&fw, &swin, &device).unwrap());
    });
}

fn bench_model_builders() {
    bench("models/build swin", || {
        black_box(models::swin_tiny(1));
    });
    bench("models/build cswin", || {
        black_box(models::cswin(1));
    });
}

fn bench_cache_sim() {
    bench("sim/cache 64k accesses", || {
        let mut cache = CacheSim::new(CacheConfig { size_bytes: 1 << 20, line_bytes: 64, ways: 8 });
        for i in 0..65536u64 {
            cache.access(black_box(i % 4096));
        }
        black_box(cache.miss_ratio());
    });
}

fn main() {
    bench_index_engine();
    bench_lte();
    bench_pipeline();
    bench_model_builders();
    bench_cache_sim();
}
