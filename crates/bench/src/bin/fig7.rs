//! Regenerates **Fig. 7**: memory-access and cache-miss counts of all
//! frameworks on CSwin and ResNext, normalized to SmartMem (paper:
//! other frameworks use ~1.8x more accesses and ~2.0x more misses on
//! average).

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::render_table;
use smartmem_models::{cswin, resnext50};
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_mobile_frameworks();
    for (name, graph) in [("CSwin", cswin(1)), ("ResNext", resnext50(1))] {
        let mut results = Vec::new();
        for fw in &frameworks {
            let r = fw.run(&graph, &device).ok();
            results.push((fw.name().to_string(), r));
        }
        let ours = results.last().unwrap().1.as_ref().expect("smartmem runs").mem;
        let mut rows = Vec::new();
        for (fw, r) in &results {
            match r {
                Some(rep) => rows.push(vec![
                    fw.clone(),
                    format!("{:.2}", rep.mem.accesses() as f64 / ours.accesses() as f64),
                    format!("{:.2}", rep.mem.misses() as f64 / ours.misses() as f64),
                ]),
                None => rows.push(vec![fw.clone(), "–".into(), "–".into()]),
            }
        }
        print!(
            "{}",
            render_table(
                &format!("Fig. 7: memory accesses / cache misses on {name} (normalized to Ours)"),
                &["Framework", "#Mem access (x)", "#Cache miss (x)"],
                &rows,
            )
        );
    }
    println!("\npaper shape: every baseline >= 1.0x on both counters; ~1.8x accesses and ~2.0x misses on average.");
}
