//! Regenerates **Table 7**: operator counts after optimization for all
//! six frameworks on the 18 evaluated models, plus SmartMem's fusion
//! ratio over DNNFusion (paper: 1.1–1.7x for Transformer/Hybrid).
//!
//! Pass `--cache-dir DIR` to back the compilation session with the
//! persistent artifact cache: a rerun against the same directory
//! regenerates the table without a single cold compile.

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::render_table;
use smartmem_core::CompileSession;
use smartmem_models::all_models;
use smartmem_sim::DeviceConfig;

fn main() {
    let cache_dir = smartmem_bench::parse_cache_dir_arg();
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_mobile_frameworks();
    // All framework x model compilations run in parallel through one
    // cached compilation session (disk-backed under --cache-dir).
    let session = match &cache_dir {
        Some(dir) => CompileSession::with_cache_dir(dir).expect("open cache dir"),
        None => CompileSession::new(),
    };
    let entries = all_models();
    let graphs: Vec<_> = entries.iter().map(|m| m.graph()).collect();
    let results = session.compile_batch(&frameworks, &graphs, &device, 0);
    let mut rows = Vec::new();
    let mut ours_vs_dnnf = Vec::new();
    for ((m, graph), row_results) in entries.iter().zip(&graphs).zip(&results) {
        let mut row = vec![
            m.name.to_string(),
            format!("{:?}", m.family),
            graph.op_count().to_string(),
            format!("{:.1}", graph.param_count() as f64 / 1e6),
            format!("{:.1}", graph.total_macs() as f64 / 1e9),
        ];
        let mut counts = Vec::new();
        for res in row_results {
            match res {
                Ok(out) => {
                    row.push(out.optimized.stats.kernel_count.to_string());
                    counts.push(Some(out.optimized.stats.kernel_count));
                }
                Err(_) => {
                    row.push("–".into());
                    counts.push(None);
                }
            }
        }
        if let (Some(Some(dnnf)), Some(Some(ours))) = (counts.get(4), counts.get(5)) {
            ours_vs_dnnf.push((m.name, *dnnf as f64 / *ours as f64));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Table 7: #operators with optimizations",
            &[
                "Model",
                "Type",
                "#Ops",
                "Params(M)",
                "MACs(G)",
                "MNN",
                "NCNN",
                "TFLite",
                "TVM",
                "DNNF",
                "Ours"
            ],
            &rows,
        )
    );
    println!("\nSmartMem fusion ratio over DNNFusion (paper: up to 1.7x):");
    for (name, r) in ours_vs_dnnf {
        println!("  {name:>16}: {r:.2}x");
    }
    if session.cache_dir().is_some() {
        let stats = session.stats();
        println!(
            "\npersistent cache: {} cold compiles, {} disk hits ({} artifacts on disk)",
            stats.misses,
            stats.disk_hits,
            session.disk_len(),
        );
    }
}
