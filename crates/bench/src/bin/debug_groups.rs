//! Diagnostic: prints the most expensive kernel groups of one model
//! under one framework, with the latency decomposition.
//!
//! Usage: `cargo run -p smartmem-bench --release --bin debug_groups <model> <framework>`

use smartmem_baselines::all_mobile_frameworks;
use smartmem_models::by_name;
use smartmem_sim::DeviceConfig;

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "Swin".into());
    let fw_name = std::env::args().nth(2).unwrap_or_else(|| "SmartMem".into());
    let device = DeviceConfig::snapdragon_8gen2();
    let entry = by_name(&model).expect("unknown model");
    let graph = entry.graph();
    let fw = all_mobile_frameworks()
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(&fw_name))
        .expect("unknown framework");
    let opt = fw.optimize(&graph, &device).expect("optimize");
    let report = opt.estimate(&device);
    println!(
        "{} on {}: {:.1} ms, {} kernels ({} source ops, {} eliminated, {} fused, {} implicit)",
        fw.name(),
        entry.name,
        report.latency_ms,
        report.kernel_count,
        opt.stats.source_ops,
        opt.stats.eliminated_ops,
        opt.stats.fused_ops,
        opt.stats.implicit_inserted,
    );
    println!(
        "breakdown: compute {:.1} ms, explicit {:.1} ms, implicit {:.1} ms; dram {:.1} MB; peak mem {:.1} MB",
        report.compute_ms,
        report.explicit_ms,
        report.implicit_ms,
        report.dram_bytes as f64 / 1e6,
        report.peak_memory_bytes as f64 / 1e6
    );
    let mut groups = report.groups.clone();
    groups.sort_by(|a, b| b.cost.total_ns().partial_cmp(&a.cost.total_ns()).unwrap());
    println!("\ntop 15 kernels:");
    for g in groups.iter().take(15) {
        let kg = &opt.groups[g.index];
        let anchor = opt.graph.node(kg.anchor);
        let out_shape = &opt.graph.tensor(kg.output).shape;
        println!(
            "  {:>9.3} ms  {:<12} {:>14} members={} launch={:.0}us comp={:.2}ms mem={:.2}ms idx={:.2}ms out={} {}",
            g.cost.total_ns() / 1e6,
            anchor.op.mnemonic(),
            format!("{:?}", g.class),
            kg.members.len(),
            g.cost.launch_ns / 1e3,
            g.cost.compute_ns / 1e6,
            g.cost.memory_ns / 1e6,
            g.cost.index_ns / 1e6,
            out_shape,
            kg.output_layout,
        );
    }
}
