//! Regenerates **Table 9**: desktop-GPU (Tesla V100, FP32) comparison of
//! TorchInductor vs SmartMem's Layout Transformation Elimination +
//! layout selection (no 2.5D-texture optimization) on Swin and
//! AutoFormer. Paper: 1.23x and 1.11x.

use smartmem_baselines::TorchInductorFramework;
use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemPipeline};
use smartmem_models::{autoformer, swin_tiny};
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::tesla_v100();
    let inductor = TorchInductorFramework::new();
    let ours = SmartMemPipeline::new(); // no texture on this device
    let mut rows = Vec::new();
    for (name, graph, paper) in [("Swin", swin_tiny(1), 1.23), ("AutoFormer", autoformer(1), 1.11)]
    {
        let base = inductor.run(&graph, &device).expect("inductor");
        let opt = ours.run(&graph, &device).expect("smartmem");
        rows.push(vec![
            name.to_string(),
            device.name.clone(),
            format!("{:.1}", base.latency_ms),
            format!("{:.1}", opt.latency_ms),
            format!("{:.2}x", base.latency_ms / opt.latency_ms),
            format!("{paper:.2}x"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table 9: desktop GPU, FP32",
            &["Model", "Device", "TorchInductor ms", "Ours ms", "Speedup", "Paper"],
            &rows,
        )
    );
}
