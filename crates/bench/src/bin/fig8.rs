//! Regenerates **Fig. 8**: incremental optimization breakdown — speedup
//! over the DNNFusion level from (1) Layout Transformation Elimination,
//! (2) reduction-dimension Layout Selecting, (3) Other opts (2.5D
//! texture mapping + tuning) — plus the index-comprehension
//! contribution inside LTE.
//!
//! Paper shapes (Transformer/Hybrid): LTE 1.5–2.7x, +Layout 1.4–1.9x,
//! +Other 1.2–1.4x; ConvNets: 1.1–1.4x / 1.5–1.7x / 1.1–1.4x; index
//! comprehension contributes 1.1–1.3x of LTE's gain.

use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem_models::by_name;
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let models =
        ["AutoFormer", "BiFormer", "EfficientVit", "CSwin", "ViT", "ConvNext", "RegNet", "ResNext"];
    let mut rows = Vec::new();
    for name in models {
        let graph = by_name(name).expect("model").graph();
        let run = |cfg: SmartMemConfig| {
            SmartMemPipeline::with_config(cfg)
                .optimize(&graph, &device)
                .expect("optimize")
                .estimate(&device)
                .latency_ms
        };
        let base = run(SmartMemConfig::dnnfusion_level());
        let lte = run(SmartMemConfig::lte_level());
        let lte_no_ic = run(SmartMemConfig {
            lte: true,
            index_comprehension: false,
            layout_selection: false,
            texture_and_tuning: false,
            streamline: true,
        });
        let layout = run(SmartMemConfig::layout_level());
        let full = run(SmartMemConfig::full());
        rows.push(vec![
            name.to_string(),
            format!("{base:.1}"),
            format!("{:.2}x", base / lte),
            format!("{:.2}x", base / layout),
            format!("{:.2}x", base / full),
            format!("{:.2}x", lte_no_ic / lte),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 8: speedup over DNNFusion level (cumulative)",
            &["Model", "DNNF ms", "+LTE", "+Layout", "+Other", "IC within LTE"],
            &rows,
        )
    );
}
