//! Observability binary for the pass-manager architecture: per-pass
//! wall-clock timing of every framework, parallel compilation of the
//! full model zoo through a [`smartmem_core::CompileSession`], and the
//! compilation cache's hit behaviour on a warm recompile.
//!
//! ```text
//! cargo run -p smartmem-bench --release --bin pass_timing
//! cargo run -p smartmem-bench --release --bin pass_timing -- --cache-dir target/smartmem-cache
//! ```
//!
//! With `--cache-dir`, the zoo compile writes every artifact through to
//! disk; rerunning against the same directory performs **zero** cold
//! compiles — the whole framework×model matrix is served by decoding
//! persisted artifacts (identical per-model results, `misses == 0`).

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::json::{write_json, BenchRecord};
use smartmem_bench::{parse_bench_args, render_pass_timings, render_table};
use smartmem_core::{eliminate_with_options, CompileSession, Framework, SmartMemPipeline};
use smartmem_ir::{DType, Graph, GraphBuilder, UnaryKind};
use smartmem_models::all_models;
use smartmem_sim::DeviceConfig;
use std::time::Instant;

/// A 12-block MLP stack with a distinct width per block (so every
/// kernel group is structurally distinct — no intra-model dedup), used
/// to demonstrate incremental recompilation: `edited != 0` swaps one
/// mid-stack activation, which invalidates exactly one group.
fn edit_demo_model(edited: bool) -> Graph {
    let widths = [64, 80, 96, 112, 128, 144, 160, 176, 192, 208, 224, 240];
    let mut b = GraphBuilder::new("edit-demo");
    let mut cur = b.input("x", &[1, 16, widths[0]], DType::F16);
    for (i, pair) in widths.windows(2).enumerate() {
        let w = b.weight(format!("w{i}"), &[pair[0], pair[1]], DType::F16);
        let mm = b.matmul(cur, w);
        let kind = if edited && i == 5 { UnaryKind::Relu } else { UnaryKind::Gelu };
        cur = b.unary(mm, kind);
    }
    b.output(cur);
    b.finish()
}

fn main() {
    let args = parse_bench_args();
    assert!(!args.smoke, "pass_timing takes --cache-dir DIR, --json PATH and --import FILE only");
    let cache_dir = args.cache_dir;
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_mobile_frameworks();
    let mut records: Vec<BenchRecord> = Vec::new();

    // 1b (run first). The LTE compile-time hot spot: composition +
    // strength reduction, before/after the composition memo (results
    // identical). The memo is process-wide now, so this A/B must run
    // before anything else compiles — a single earlier optimize_timed
    // would pre-warm every key and the "memoized" row would measure
    // pure lookups instead of memo-building with intra-model hits.
    let swin = smartmem_models::swin_tiny(1);
    let mut rows = Vec::new();
    for (label, memoize) in [("unmemoized", false), ("memoized", true)] {
        let start = Instant::now();
        let r = eliminate_with_options(&swin, true, true, memoize);
        let us = start.elapsed().as_secs_f64() * 1e6;
        if !memoize {
            // The true cold strength-reduction cost (memo disabled) —
            // the regression gate for the index-interning layer.
            records.push(BenchRecord::new(
                "pass_timing",
                device.slug(),
                "lte_simplify_ms",
                us / 1e3,
            ));
        }
        rows.push(vec![label.to_string(), format!("{us:.0}"), format!("{}", r.eliminated.len())]);
    }
    print!(
        "{}",
        render_table(
            "LTE composition memo on Swin-T (identical results)",
            &["variant", "us", "eliminated"],
            &rows,
        )
    );

    // 1. Per-pass timing of every framework on Swin-Tiny. The LTE memo
    // is process-wide, so the A/B above has already warmed Swin-T's
    // keys: the `lte` rows below are memo-warm lookups (the true cold
    // composition cost is the "unmemoized" row above). Say so, or the
    // table silently changes meaning versus the per-call-memo era.
    println!(
        "\n(LTE memo is warm from here on — `lte` rows below are lookup times; cold vs memoized cost is the table above)"
    );
    let mut swin_smartmem_stats = None;
    for fw in &frameworks {
        match fw.optimize_timed(&swin, &device) {
            Ok(out) => {
                if fw.name() == "SmartMem" {
                    swin_smartmem_stats = Some(out.optimized.stats);
                }
                print!("{}", render_pass_timings(fw.name(), "Swin-T", &out));
            }
            Err(e) => println!("\n== {} on Swin-T: {e} ==", fw.name()),
        }
    }

    // 1a. Streamline summary on Swin-T. The counters are deterministic
    // graph-rewrite counts, so the regression gate pins them exactly
    // (well inside its ±15% band): a pass change that stops cancelling
    // transposes fails CI even though no wall-clock moved.
    {
        let s = swin_smartmem_stats.expect("SmartMem compiles Swin-T");
        println!(
            "\nstreamline on Swin-T: {} ops removed net, {} transposes cancelled/absorbed",
            s.streamline_removed_ops, s.streamline_transposes_removed,
        );
        records.push(BenchRecord::new(
            "pass_timing",
            device.slug(),
            "streamline_removed_ops",
            s.streamline_removed_ops as f64,
        ));
        records.push(BenchRecord::new(
            "pass_timing",
            device.slug(),
            "streamline_transposes_removed",
            s.streamline_transposes_removed as f64,
        ));
    }

    // 1d. `--import FILE`: run a graph from the JSON interchange format
    // (`smartmem_ir::import`) through the SmartMem pipeline and show
    // what the streamline family did to it, pass by pass. This is the
    // CLI window onto the same machinery the fixture snapshots pin.
    if let Some(path) = &args.import {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--import {}: {e}", path.display()));
        let graph = smartmem_ir::import::import_json(&src)
            .unwrap_or_else(|e| panic!("--import {}: {e}", path.display()));
        let label = graph.name().to_string();
        let out = SmartMemPipeline::new()
            .optimize_timed(&graph, &device)
            .unwrap_or_else(|e| panic!("--import {}: {e}", path.display()));
        print!("{}", render_pass_timings("SmartMem", &label, &out));
        let s = out.optimized.stats;
        let left =
            out.optimized.graph.nodes().iter().filter(|n| n.op.mnemonic() == "Transpose").count();
        println!(
            "\nstreamline on {label}: {} -> {} ops ({} streamlined away, {} transposes removed, {} left)",
            s.source_ops,
            out.optimized.graph.op_count(),
            s.streamline_removed_ops,
            s.streamline_transposes_removed,
            left,
        );
    }

    // 1c. Incremental recompilation after a one-layer edit. A fresh
    // session compiles the 12-block demo model cold, then a variant
    // with one activation changed: the per-group decision cache replays
    // layout + tuning for the 10 untouched groups and refines only the
    // edited one, so the second compile costs a fraction of the first.
    {
        let session = CompileSession::new();
        let fw = SmartMemPipeline::new();
        let start = Instant::now();
        session.compile(&fw, &edit_demo_model(false), &device).expect("cold compile");
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        session.compile(&fw, &edit_demo_model(true), &device).expect("incremental compile");
        let incr_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = session.stats();
        println!(
            "\nedit-one-layer recompile: cold {cold_ms:.2} ms, incremental {incr_ms:.2} ms ({} group hits / {} group misses)",
            stats.group_hits, stats.group_misses,
        );
        records.push(BenchRecord::new("pass_timing", device.slug(), "compile_cold_ms", cold_ms));
        records.push(BenchRecord::new(
            "pass_timing",
            device.slug(),
            "compile_incremental_ms",
            incr_ms,
        ));
    }

    // 2. Parallel compile of the whole zoo across all frameworks —
    // cold on a fresh cache directory, all disk hits on a rerun.
    let session = match &cache_dir {
        Some(dir) => CompileSession::with_cache_dir(dir).expect("open cache dir"),
        None => CompileSession::new(),
    };
    let entries = all_models();
    let graphs: Vec<_> = entries.iter().map(|m| m.graph()).collect();
    let cold_start = Instant::now();
    let results = session.compile_batch(&frameworks, &graphs, &device, 0);
    let cold = cold_start.elapsed();

    let mut rows = Vec::new();
    for (entry, row) in entries.iter().zip(&results) {
        let mut cells = vec![entry.name.to_string()];
        for (fw, res) in frameworks.iter().zip(row) {
            cells.push(match res {
                Ok(out) => {
                    let ms = out.total_duration().as_secs_f64() * 1e3;
                    records.push(BenchRecord::new(
                        "pass_timing",
                        device.slug(),
                        format!("{}.{}.compile_ms", entry.name, fw.name().to_ascii_lowercase()),
                        ms,
                    ));
                    format!("{ms:.1}")
                }
                Err(_) => "–".into(),
            });
        }
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            "Compilation wall-clock per framework (ms, parallel cold compile)",
            &["Model", "MNN", "NCNN", "TFLite", "TVM", "DNNF", "Ours"],
            &rows,
        )
    );

    // 3. Warm recompile: everything must come from the cache.
    let warm_start = Instant::now();
    let _ = session.compile_batch(&frameworks, &graphs, &device, 0);
    let warm = warm_start.elapsed();
    let stats = session.stats();
    println!(
        "\nzoo x frameworks: cold {:.0} ms, warm {:.1} ms ({} cached compilations, {} hits / {} misses, {} disk hits; {} group hits / {} group misses)",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
        session.len(),
        stats.hits,
        stats.misses,
        stats.disk_hits,
        stats.group_hits,
        stats.group_misses,
    );
    if let Some(dir) = session.cache_dir() {
        println!(
            "persistent cache: {} artifacts in {} ({} compositions in the LTE memo)",
            session.disk_len(),
            dir.display(),
            smartmem_core::lte_memo_len(),
        );
    }

    if let Some(path) = &args.json {
        records.push(BenchRecord::new(
            "pass_timing",
            device.slug(),
            "zoo_cold_compile_ms",
            cold.as_secs_f64() * 1e3,
        ));
        records.push(BenchRecord::new(
            "pass_timing",
            device.slug(),
            "zoo_warm_compile_ms",
            warm.as_secs_f64() * 1e3,
        ));
        write_json(path, &records).expect("write --json output");
        println!("wrote {} records to {}", records.len(), path.display());
    }
}
