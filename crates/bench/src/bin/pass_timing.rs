//! Observability binary for the pass-manager architecture: per-pass
//! wall-clock timing of every framework, parallel compilation of the
//! full model zoo through a [`smartmem_core::CompileSession`], and the
//! compilation cache's hit behaviour on a warm recompile.
//!
//! ```text
//! cargo run -p smartmem-bench --release --bin pass_timing
//! ```

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::{render_pass_timings, render_table};
use smartmem_core::{eliminate_with_options, CompileSession};
use smartmem_models::all_models;
use smartmem_sim::DeviceConfig;
use std::time::Instant;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_mobile_frameworks();

    // 1. Per-pass timing of every framework on Swin-Tiny.
    let swin = smartmem_models::swin_tiny(1);
    for fw in &frameworks {
        match fw.optimize_timed(&swin, &device) {
            Ok(out) => print!("{}", render_pass_timings(fw.name(), "Swin-T", &out)),
            Err(e) => println!("\n== {} on Swin-T: {e} ==", fw.name()),
        }
    }

    // 1b. The LTE compile-time hot spot: composition + strength
    // reduction, before/after the composition memo (results identical).
    let mut rows = Vec::new();
    for (label, memoize) in [("unmemoized", false), ("memoized", true)] {
        let start = Instant::now();
        let r = eliminate_with_options(&swin, true, true, memoize);
        let us = start.elapsed().as_secs_f64() * 1e6;
        rows.push(vec![label.to_string(), format!("{us:.0}"), format!("{}", r.eliminated.len())]);
    }
    print!(
        "{}",
        render_table(
            "LTE composition memo on Swin-T (identical results)",
            &["variant", "us", "eliminated"],
            &rows,
        )
    );

    // 2. Parallel cold compile of the whole zoo across all frameworks.
    let session = CompileSession::new();
    let entries = all_models();
    let graphs: Vec<_> = entries.iter().map(|m| m.graph()).collect();
    let cold_start = Instant::now();
    let results = session.compile_batch(&frameworks, &graphs, &device, 0);
    let cold = cold_start.elapsed();

    let mut rows = Vec::new();
    for (entry, row) in entries.iter().zip(&results) {
        let mut cells = vec![entry.name.to_string()];
        for res in row {
            cells.push(match res {
                Ok(out) => format!("{:.1}", out.total_duration().as_secs_f64() * 1e3),
                Err(_) => "–".into(),
            });
        }
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            "Compilation wall-clock per framework (ms, parallel cold compile)",
            &["Model", "MNN", "NCNN", "TFLite", "TVM", "DNNF", "Ours"],
            &rows,
        )
    );

    // 3. Warm recompile: everything must come from the cache.
    let warm_start = Instant::now();
    let _ = session.compile_batch(&frameworks, &graphs, &device, 0);
    let warm = warm_start.elapsed();
    let stats = session.stats();
    println!(
        "\nzoo x frameworks: cold {:.0} ms, warm {:.1} ms ({} cached compilations, {} hits / {} misses)",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
        session.len(),
        stats.hits,
        stats.misses,
    );
}
