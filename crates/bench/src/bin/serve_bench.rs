//! Open-loop serving benchmark: replays a synthetic, priority-mixed
//! request trace over the model zoo through `smartmem-serve` and
//! reports throughput, per-class latency and queue-wait percentiles,
//! SLO violations, per-device batch-size histograms, cancellation
//! accounting, and the compilation cache's steady-state hit rate.
//!
//! ```text
//! cargo run -p smartmem-bench --release --bin serve_bench            # full trace
//! cargo run -p smartmem-bench --release --bin serve_bench -- --smoke # CI-sized
//! ```
//!
//! Flags: `--smoke`, `--requests N`, `--rate RPS`, `--seed S`,
//! `--scale F` (wall-clock throttle of simulated device time),
//! `--cancel-rate P` (probability a request is cancelled ~one arrival
//! after submission, racing the batch cut), `--cut-policy pull|deadline`
//! (A/B the pull-mode batcher against the fixed-window baseline),
//! `--cold` (skip the warmup pass, so the replay measures cold-compile
//! stalls instead of steady state), `--cache-dir DIR` (persistent
//! artifact cache: cold compiles write through, rerunning against the
//! same directory warm-starts from disk), `--expect-warm` (assert
//! the run performed *zero* cold compiles — pair it with a second run
//! over an already-populated `--cache-dir`), `--trace-out PATH` (enable
//! the span recorder and export the replay as Chrome `trace_event`
//! JSON — load it in `chrome://tracing` or Perfetto, or digest it with
//! the `trace_view` binary), `--sample-every N` (trace 1-in-N requests;
//! 1 = all), and `--json PATH` (machine-readable records for CI
//! artifacts and the `bench_diff` regression gate).
//!
//! Chaos/fleet mode: `--replicas N` and/or `--fault-rate R` switch the
//! replay onto the replica [`Router`] with a seeded deterministic
//! `FaultPlan` injecting transient execute/compile faults. With more
//! than one replica the run kills one a third of the way through the
//! trace and warm-restarts it (from `--cache-dir`, when given) at two
//! thirds, then gates on the fleet conservation law: every request
//! completes somewhere within the retry/reroute budget, zero lost. The
//! records land under the `serve_chaos` bench name so `bench_diff` can
//! gate `recovered_requests`/`shed_requests` without colliding with
//! the plain run's keys.
//!
//! With `--json` the replay runs a *second* time with the opposite
//! telemetry setting and emits `telemetry_overhead_pct` — the
//! throughput cost of leaving the span recorder on, gated against
//! `bench/baseline.json` so instrumenting the hot path stays honest.
//!
//! Decode mode: `--decode` replays a mixed prefill + multi-step decode
//! workload over the bucketed `pythia_decode` models twice — once with
//! continuous batching (each generation re-enters the batcher one
//! `DecodeSession` step at a time) and once with whole-request
//! batching (one `decode_steps = n` request per generation) — at equal
//! offered load, and gates on continuous beating whole-request
//! tokens/s. `--fresh-cache` deletes the artifact cache directory
//! (`--cache-dir`, default `/tmp/smartmem-cache`) before the run, so a
//! CI cold step measures real cold compiles instead of inheriting a
//! previous job's artifacts.
//!
//! The pool serves six devices — four mobile GPUs (including the
//! AFBC-compressed Mali-G710), Apple silicon, and a server-class NPU —
//! so placement has genuinely heterogeneous latency classes to choose
//! between.
//!
//! The trace is open-loop: arrivals follow exponential inter-arrival
//! times at the configured rate and are submitted on schedule, whether
//! or not the server has caught up — the standard way to expose
//! queueing behaviour. Model popularity is Zipf-distributed, so hot
//! models exercise batching while the tail exercises cache breadth;
//! priorities are drawn 60 % `Interactive` / 25 % `Batch` / 15 %
//! `BestEffort`. Under `--smoke` the run additionally gates on zero
//! `Interactive` SLO violations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartmem_bench::render_table;
use smartmem_serve::{
    histogram_mean, ClassDeadlines, CutPolicy, DecodeSession, InferenceRequest, InferenceResponse,
    ModelSpec, Priority, Router, ServeConfig, ServeStats, Server, TelemetryConfig,
};
use smartmem_sim::{DeviceConfig, FaultKind, FaultPlan, FaultRates};
use smartmem_telemetry::{render_chrome, Telemetry};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct BenchOpts {
    smoke: bool,
    cold: bool,
    requests: usize,
    rate_rps: f64,
    seed: u64,
    exec_time_scale: f64,
    cancel_rate: f64,
    cut_policy: CutPolicy,
    cache_dir: Option<PathBuf>,
    expect_warm: bool,
    json: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    sample_every: u64,
    replicas: usize,
    fault_rate: f64,
    decode: bool,
    fresh_cache: bool,
}

fn parse_args() -> BenchOpts {
    let mut opts = BenchOpts {
        smoke: false,
        cold: false,
        requests: 600,
        rate_rps: 2000.0,
        seed: 42,
        exec_time_scale: 0.15,
        cancel_rate: 0.0,
        cut_policy: CutPolicy::Pull,
        cache_dir: None,
        expect_warm: false,
        json: None,
        trace_out: None,
        sample_every: 1,
        replicas: 1,
        fault_rate: 0.0,
        decode: false,
        fresh_cache: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> &String {
            args.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--cold" => opts.cold = true,
            "--requests" => opts.requests = value("--requests").parse().expect("integer"),
            "--rate" => opts.rate_rps = value("--rate").parse().expect("number"),
            "--seed" => opts.seed = value("--seed").parse().expect("integer"),
            "--scale" => opts.exec_time_scale = value("--scale").parse().expect("number"),
            "--cancel-rate" => opts.cancel_rate = value("--cancel-rate").parse().expect("number"),
            "--cut-policy" => {
                opts.cut_policy = match value("--cut-policy").as_str() {
                    "pull" => CutPolicy::Pull,
                    "deadline" => CutPolicy::Deadline,
                    other => panic!("--cut-policy must be pull or deadline, got {other}"),
                }
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--expect-warm" => opts.expect_warm = true,
            "--json" => opts.json = Some(PathBuf::from(value("--json"))),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--sample-every" => {
                opts.sample_every = value("--sample-every").parse().expect("integer")
            }
            "--replicas" => opts.replicas = value("--replicas").parse().expect("integer"),
            "--fault-rate" => opts.fault_rate = value("--fault-rate").parse().expect("number"),
            "--decode" => opts.decode = true,
            "--fresh-cache" => opts.fresh_cache = true,
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        !opts.expect_warm || opts.cache_dir.is_some(),
        "--expect-warm requires --cache-dir (a warm start needs persisted artifacts)"
    );
    assert!((0.0..=1.0).contains(&opts.cancel_rate), "--cancel-rate must be in [0, 1]");
    assert!(opts.sample_every >= 1, "--sample-every must be at least 1");
    assert!(opts.replicas >= 1, "--replicas must be at least 1");
    assert!((0.0..=1.0).contains(&opts.fault_rate), "--fault-rate must be in [0, 1]");
    if opts.smoke {
        opts.requests = opts.requests.min(60);
        opts.rate_rps = 3000.0;
        opts.exec_time_scale = 0.02;
    }
    opts
}

/// The served subset of the zoo: transformer-heavy and conv models of
/// Table 7 that compile in milliseconds (the SD/Pythia giants are left
/// to the figure binaries; a serving tier would shard them anyway).
fn zoo(smoke: bool) -> Vec<ModelSpec> {
    let names: &[&str] = if smoke {
        &["ConvNext", "RegNet"]
    } else {
        &[
            "AutoFormer",
            "CrossFormer",
            "EfficientVit",
            "Swin",
            "ViT",
            "SD-TextEncoder",
            "ConvNext",
            "RegNet",
            "ResNext",
            "Yolo-V8",
        ]
    };
    names
        .iter()
        .map(|n| {
            let entry = smartmem_models::by_name(n).unwrap_or_else(|| panic!("no model {n}"));
            ModelSpec::new(entry.name, entry.graph())
        })
        .collect()
}

fn devices() -> Vec<DeviceConfig> {
    vec![
        DeviceConfig::snapdragon_8gen2(),
        DeviceConfig::snapdragon_835(),
        DeviceConfig::dimensity_700(),
        DeviceConfig::mali_g710(),
        DeviceConfig::apple_m1(),
        DeviceConfig::server_npu(),
    ]
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Everything one warmup-plus-replay run produces.
struct RunOutcome {
    responses: Vec<InferenceResponse>,
    stats: ServeStats,
    warm_stats: ServeStats,
    warmup_requests: u64,
    wall_s: f64,
    cancels_attempted: u64,
    cancels_won: u64,
    device_names: Vec<String>,
    device_slugs: Vec<String>,
    deadlines: ClassDeadlines,
    telemetry: Telemetry,
}

impl RunOutcome {
    /// Served (non-cancelled) responses per second of replay wall time.
    fn throughput_rps(&self) -> f64 {
        self.responses.iter().filter(|r| !r.cancelled).count() as f64 / self.wall_s
    }
}

/// One full benchmark run: start a server, warm the caches, replay the
/// deterministic open-loop schedule, shut down. The RNGs are re-seeded
/// per call, so two runs (e.g. the telemetry-overhead A/B pair) replay
/// the *identical* request schedule.
fn run_replay(opts: &BenchOpts, telemetry_on: bool, quiet: bool) -> RunOutcome {
    let models = zoo(opts.smoke);
    let model_count = models.len();
    // The per-class budgets the trace is gated against. Smoke keeps a
    // CI-safe Interactive budget (shared runners hiccup); the full
    // trace uses the tighter production default.
    let mut config = ServeConfig {
        // Big enough that the open loop never blocks on submit:
        // arrivals stay on schedule whether or not the server has
        // caught up.
        queue_capacity: opts.requests + 64,
        max_batch: 8,
        max_delay: Duration::from_millis(3),
        exec_time_scale: opts.exec_time_scale,
        cut_policy: opts.cut_policy,
        cache_dir: opts.cache_dir.clone(),
        telemetry: TelemetryConfig {
            enabled: telemetry_on,
            sample_every: opts.sample_every,
            ..TelemetryConfig::default()
        },
        ..ServeConfig::default()
    };
    if opts.smoke {
        config.deadlines.interactive = Duration::from_millis(100);
    }
    let deadlines = config.deadlines;
    let server = Server::start(models, devices(), config);
    let telemetry = server.telemetry();

    // Zipf popularity: model i drawn with weight 1/(i+1).
    let weights: Vec<f64> = (0..model_count).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut pick_model = move || {
        let mut x = (rng.next_u64() as f64 / u64::MAX as f64) * total_weight;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        model_count - 1
    };
    // 60 % Interactive / 25 % Batch / 15 % BestEffort.
    let mut class_rng = StdRng::seed_from_u64(opts.seed ^ 0x5bf0_3635);
    let mut pick_class = move || match class_rng.next_u64() % 100 {
        0..=59 => Priority::Interactive,
        60..=84 => Priority::Batch,
        _ => Priority::BestEffort,
    };
    let mut arrival_rng = StdRng::seed_from_u64(opts.seed ^ 0x9e3779b97f4a7c15);
    let mut next_gap_s = move || {
        let u = (arrival_rng.next_u64().max(1)) as f64 / u64::MAX as f64;
        -u.ln() / rate_nonzero(opts.rate_rps)
    };
    let mut cancel_rng = StdRng::seed_from_u64(opts.seed ^ 0xc0ff_ee00);

    // --- Warmup -------------------------------------------------------
    // Compile-on-first-use happens here (one pinned request per
    // (model, device) pair) so the replay below measures steady-state
    // serving, not cold-compile stalls. `--cold` skips it.
    let mut warmup_requests = 0u64;
    if !opts.cold {
        let warm_start = Instant::now();
        let tickets: Vec<_> = (0..model_count)
            .flat_map(|m| {
                (0..server.pool().len()).map(move |d| InferenceRequest::new(m).on_device(d))
            })
            .map(|req| server.submit(req).expect("warmup submit"))
            .collect();
        warmup_requests = tickets.len() as u64;
        for t in tickets {
            let r = t.wait();
            assert!(r.error.is_none(), "warmup compile failed: {:?}", r.error);
        }
        if !quiet {
            println!(
                "warmup: compiled {} (model, device) artifacts in {:.2}s",
                warmup_requests,
                warm_start.elapsed().as_secs_f64()
            );
        }
    }
    let warm_stats = server.stats();

    // --- Replay -------------------------------------------------------
    // Cancellations are issued ~one arrival after submission, so they
    // genuinely race the batcher's cut instead of always winning.
    let replay_start = Instant::now();
    let mut arrival = replay_start;
    let mut tickets = Vec::with_capacity(opts.requests);
    let mut pending_cancels: VecDeque<smartmem_serve::CancelHandle> = VecDeque::new();
    let mut cancels_attempted = 0u64;
    let mut cancels_won = 0u64;
    for _ in 0..opts.requests {
        arrival += Duration::from_secs_f64(next_gap_s());
        if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        if let Some(handle) = pending_cancels.pop_front() {
            cancels_attempted += 1;
            if handle.cancel() {
                cancels_won += 1;
            }
        }
        let req = InferenceRequest::new(pick_model()).with_priority(pick_class());
        let ticket = server.submit(req).expect("submit");
        if opts.cancel_rate > 0.0
            && (cancel_rng.next_u64() as f64 / u64::MAX as f64) < opts.cancel_rate
        {
            pending_cancels.push_back(ticket.cancel_handle());
        }
        tickets.push(ticket);
    }
    for handle in pending_cancels {
        cancels_attempted += 1;
        if handle.cancel() {
            cancels_won += 1;
        }
    }
    let responses: Vec<InferenceResponse> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall_s = replay_start.elapsed().as_secs_f64();
    let device_names: Vec<String> =
        (0..server.pool().len()).map(|d| server.pool().device(d).name.clone()).collect();
    let device_slugs: Vec<String> =
        (0..server.pool().len()).map(|d| server.pool().device(d).slug()).collect();
    let stats = server.shutdown();
    RunOutcome {
        responses,
        stats,
        warm_stats,
        warmup_requests,
        wall_s,
        cancels_attempted,
        cancels_won,
        device_names,
        device_slugs,
        deadlines,
        telemetry,
    }
}

/// Chaos/fleet replay: the open-loop schedule routed through
/// [`Router`] replicas under seeded transient fault injection, with a
/// mid-trace replica kill + warm restart when more than one replica is
/// up. Gates on zero lost requests and (at smoke) zero Interactive SLO
/// violations, and writes `serve_chaos` bench records.
fn run_fleet(opts: &BenchOpts) {
    assert!(opts.cancel_rate == 0.0, "--cancel-rate is not supported in fleet mode");
    assert!(opts.trace_out.is_none(), "--trace-out is not supported in fleet mode");
    assert!(!opts.expect_warm, "--expect-warm is not supported in fleet mode");
    let models = zoo(opts.smoke);
    let model_count = models.len();
    let device_count = devices().len();
    let plan = (opts.fault_rate > 0.0)
        .then(|| Arc::new(FaultPlan::new(opts.seed, FaultRates::transient(opts.fault_rate))));
    let mut config = ServeConfig {
        queue_capacity: opts.requests + 64,
        max_batch: 8,
        max_delay: Duration::from_millis(3),
        exec_time_scale: opts.exec_time_scale,
        cut_policy: opts.cut_policy,
        cache_dir: opts.cache_dir.clone(),
        fault_plan: plan.clone(),
        ..ServeConfig::default()
    };
    if opts.smoke {
        config.deadlines.interactive = Duration::from_millis(100);
    }
    let router = Router::start(opts.replicas, models, devices(), config);
    println!(
        "serve_bench (fleet): {} requests over {} replicas x {} devices \
         (open loop, {:.0} rps, seed {}, fault rate {:.0}%)",
        opts.requests,
        opts.replicas,
        device_count,
        opts.rate_rps,
        opts.seed,
        opts.fault_rate * 100.0,
    );

    // --- Warmup -------------------------------------------------------
    // One pinned request per (replica, model, device), so the replay
    // measures steady-state serving on every replica. Tags stay
    // globally unique — the fault oracle is tag-keyed, so the cursed
    // set is a pure function of the seed, not the schedule.
    let warmup_tag =
        |r: usize, m: usize, d: usize| 1u64 << 40 | (r as u64) << 20 | (m as u64) << 10 | d as u64;
    let restart_tag = |m: usize, d: usize| 2u64 << 40 | (m as u64) << 10 | d as u64;
    let mut warmup_requests = 0u64;
    if !opts.cold {
        let warm_start = Instant::now();
        for r in 0..router.len() {
            let server = router.server(r).expect("replica alive at startup");
            let tickets: Vec<_> = (0..model_count)
                .flat_map(|m| {
                    (0..device_count).map(move |d| {
                        InferenceRequest::new(m).on_device(d).with_tag(warmup_tag(r, m, d))
                    })
                })
                .map(|req| server.submit(req).expect("warmup submit"))
                .collect();
            warmup_requests += tickets.len() as u64;
            for t in tickets {
                let resp = t.wait();
                assert!(resp.error.is_none(), "warmup compile failed: {:?}", resp.error);
            }
        }
        println!(
            "warmup: compiled {} (replica, model, device) artifacts in {:.2}s",
            warmup_requests,
            warm_start.elapsed().as_secs_f64()
        );
    }
    let interactive_viol = |per_replica: &[ServeStats]| -> u64 {
        per_replica.iter().map(|s| s.class(Priority::Interactive).slo_violations).sum()
    };
    let warm_viol = interactive_viol(&router.stats().per_replica);

    // --- Replay with mid-trace chaos ----------------------------------
    // Same deterministic open-loop schedule as the plain path; with
    // more than one replica, slot 1 is killed a third of the way in
    // (its queued requests re-route to the survivors) and restarted at
    // two thirds (warm from the shared --cache-dir, when given).
    let weights: Vec<f64> = (0..model_count).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut pick_model = move || {
        let mut x = (rng.next_u64() as f64 / u64::MAX as f64) * total_weight;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        model_count - 1
    };
    let mut class_rng = StdRng::seed_from_u64(opts.seed ^ 0x5bf0_3635);
    let mut pick_class = move || match class_rng.next_u64() % 100 {
        0..=59 => Priority::Interactive,
        60..=84 => Priority::Batch,
        _ => Priority::BestEffort,
    };
    let mut arrival_rng = StdRng::seed_from_u64(opts.seed ^ 0x9e3779b97f4a7c15);
    let mut next_gap_s = move || {
        let u = (arrival_rng.next_u64().max(1)) as f64 / u64::MAX as f64;
        -u.ln() / rate_nonzero(opts.rate_rps)
    };
    let chaos = opts.replicas > 1;
    let victim = 1 % opts.replicas;
    let replay_start = Instant::now();
    let mut arrival = replay_start;
    let mut tickets = Vec::with_capacity(opts.requests);
    for i in 0..opts.requests {
        if chaos && i == opts.requests / 3 {
            assert!(router.kill(victim), "killing a live replica");
            println!("chaos: killed replica {victim} at request {i}");
        }
        if chaos && i == 2 * opts.requests / 3 {
            assert!(router.restart(victim), "restarting the killed replica");
            println!("chaos: restarted replica {victim} at request {i}");
            // Warm the newcomer before it takes routed traffic — it
            // looks least-loaded and would otherwise absorb a herd of
            // requests while still paying per-(model, device) disk
            // decodes, exactly what an operator avoids by warming a
            // replica before re-adding it to the rotation. BestEffort
            // keeps any decode stall out of the gated Interactive
            // SLO counter.
            if !opts.cold {
                let server = router.server(victim).expect("replica just restarted");
                let warm: Vec<_> = (0..model_count)
                    .flat_map(|m| {
                        (0..device_count).map(move |d| {
                            InferenceRequest::new(m)
                                .on_device(d)
                                .with_priority(Priority::BestEffort)
                                .with_tag(restart_tag(m, d))
                        })
                    })
                    .map(|req| server.submit(req).expect("restart warmup submit"))
                    .collect();
                warmup_requests += warm.len() as u64;
                for t in warm {
                    let resp = t.wait();
                    assert!(resp.error.is_none(), "restart warmup failed: {:?}", resp.error);
                }
            }
        }
        arrival += Duration::from_secs_f64(next_gap_s());
        if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let req =
            InferenceRequest::new(pick_model()).with_priority(pick_class()).with_tag(i as u64);
        tickets.push(router.submit(req).expect("submit"));
    }
    let responses: Vec<InferenceResponse> = tickets.into_iter().map(|t| t.wait()).collect();
    let wall_s = replay_start.elapsed().as_secs_f64();

    // Zero lost requests: despite the kill and the injected faults,
    // every client ticket resolves as a success.
    for r in &responses {
        assert!(!r.cancelled, "fleet mode issues no cancels");
        assert!(
            r.error.is_none(),
            "request {} lost (error after retries/reroutes): {:?}",
            r.request_id,
            r.error
        );
    }
    let stats = router.shutdown();

    // --- Report -------------------------------------------------------
    let faults_by_kind: Vec<u64> = FaultKind::ALL
        .iter()
        .map(|k| stats.per_replica.iter().map(|s| s.faults[k.index()]).sum())
        .collect();
    let faults_total: u64 = faults_by_kind.iter().sum();
    let summary = vec![
        vec!["replicas".into(), format!("{}", opts.replicas)],
        vec!["completed".into(), format!("{}", stats.completed)],
        vec!["recovered (completed after retry)".into(), format!("{}", stats.recovered)],
        vec!["retried".into(), format!("{}", stats.retried)],
        vec!["shed".into(), format!("{}", stats.shed)],
        vec!["killed by replica kill".into(), format!("{}", stats.killed)],
        vec!["rerouted".into(), format!("{}", stats.rerouted)],
        vec!["kills / restarts".into(), format!("{} / {}", stats.kills, stats.restarts)],
        vec!["faults injected".into(), format!("{faults_total}")],
        vec!["throughput (req/s)".into(), format!("{:.0}", responses.len() as f64 / wall_s)],
    ];
    print!("{}", render_table("serve_chaos fleet summary", &["metric", "value"], &summary));

    // Machine-readable records (distinct bench name: the chaos run
    // rides in CI next to the plain smoke without key collisions).
    if let Some(path) = &opts.json {
        use smartmem_bench::json::{write_json, BenchRecord};
        let rec =
            |metric: &str, value: f64| BenchRecord::new("serve_chaos", "fleet", metric, value);
        let mut records = vec![
            rec("recovered_requests", stats.recovered as f64),
            rec("shed_requests", stats.shed as f64),
            rec("completed", stats.completed as f64),
            rec("retried", stats.retried as f64),
            rec("killed_requests", stats.killed as f64),
            rec("rerouted", stats.rerouted as f64),
            rec("kills", stats.kills as f64),
            rec("restarts", stats.restarts as f64),
            rec("throughput_rps", responses.len() as f64 / wall_s),
        ];
        for (kind, &count) in FaultKind::ALL.iter().zip(&faults_by_kind) {
            records.push(rec(&format!("faults.{}", kind.name()), count as f64));
        }
        write_json(path, &records).expect("write --json output");
        println!("\nwrote {} records to {}", records.len(), path.display());
    }

    // --- Gates --------------------------------------------------------
    // Fleet conservation: each generation's books balance, and every
    // client request (and warmup) completed exactly once somewhere.
    for (i, s) in stats.per_replica.iter().enumerate() {
        assert_eq!(
            s.submitted,
            s.completed + s.failed + s.cancelled,
            "generation {i}: conservation violated"
        );
    }
    assert_eq!(
        stats.completed,
        opts.requests as u64 + warmup_requests,
        "every request must complete exactly once across the fleet"
    );
    if chaos {
        assert_eq!(stats.kills, 1, "exactly one replica kill");
        assert_eq!(stats.restarts, 1, "exactly one replica restart");
        assert_eq!(stats.rerouted, stats.killed, "every request stranded by the kill was rerouted");
    }
    // The fault oracle is tag-keyed, so `recovered` must equal the
    // cursed-tag census exactly — a pure function of the seed,
    // independent of placement, batching, kills, and thread timing.
    if let Some(plan) = &plan {
        let cursed = |tag: u64| {
            plan.would_fault(FaultKind::ExecError, tag)
                || plan.would_fault(FaultKind::CompileFault, tag)
        };
        let mut expected = (0..opts.requests as u64).filter(|&t| cursed(t)).count() as u64;
        if !opts.cold {
            for r in 0..opts.replicas {
                for m in 0..model_count {
                    for d in 0..device_count {
                        if cursed(warmup_tag(r, m, d)) {
                            expected += 1;
                        }
                    }
                }
            }
            if chaos {
                for m in 0..model_count {
                    for d in 0..device_count {
                        if cursed(restart_tag(m, d)) {
                            expected += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(
            stats.recovered, expected,
            "recovered must equal the deterministic cursed-tag census"
        );
    }
    // Zero Interactive SLO violations at smoke load, the same promise
    // the plain path makes — retries and re-routes must hide inside
    // the budget (warmup excluded: it pays the cold compiles).
    if opts.smoke {
        let viol = interactive_viol(&stats.per_replica) - warm_viol;
        if viol != 0 {
            // Ship the offenders with the failure so a red CI run
            // explains itself.
            for r in responses.iter().filter(|r| r.wall_ms > 100.0) {
                eprintln!(
                    "  slow: id={} model={} device={} wall={:.1}ms queue={:.1}ms retries={}",
                    r.request_id, r.model, r.device, r.wall_ms, r.queue_ms, r.retries
                );
            }
        }
        assert_eq!(viol, 0, "Interactive SLO violations at smoke load: {viol}");
    }
    println!("\nserve_bench fleet OK ({wall_s:.2}s wall)");
}

/// One arm of the decode A/B: the same session + prefill workload,
/// served either step-at-a-time or as whole `decode_steps = n`
/// requests.
struct DecodeArm {
    tokens: u64,
    wall_s: f64,
    /// Simulated device milliseconds consumed by every post-warmup
    /// batch (each response contributes `exec_ms / batch_size`, so
    /// each batch is counted exactly once).
    device_ms: f64,
    step_wall_ms: Vec<f64>,
    prefill_wall_ms: Vec<f64>,
}

fn run_decode_arm(
    opts: &BenchOpts,
    continuous: bool,
    prompts: &[usize],
    gens: &[usize],
    prefill: usize,
    prefill_rate: f64,
) -> DecodeArm {
    let table = smartmem_models::decode_buckets();
    let buckets: Vec<usize> = table.buckets().to_vec();
    let models: Vec<ModelSpec> = buckets
        .iter()
        .map(|&b| {
            ModelSpec::new(format!("pythia-decode-b{b}"), smartmem_models::pythia_decode(1, b))
        })
        .collect();
    let bucket_models: Vec<(usize, usize)> =
        buckets.iter().copied().zip(0..buckets.len()).collect();
    // One device: every request for a bucket shares a single batch
    // key, so the arms differ only in *how* the work is batched, not
    // in how the scheduler spread it across a pool.
    let devices = vec![DeviceConfig::snapdragon_8gen2()];
    let total_tokens: usize = gens.iter().sum();
    let config = ServeConfig {
        queue_capacity: total_tokens + prefill + 64,
        max_batch: 8,
        max_delay: Duration::from_millis(3),
        // The hostage effect only manifests when the device is
        // genuinely occupied while prefill arrives, so decode keeps a
        // realistic device-time scale even at smoke load.
        exec_time_scale: opts.exec_time_scale.max(0.15),
        cut_policy: opts.cut_policy,
        cache_dir: opts.cache_dir.clone(),
        ..ServeConfig::default()
    };
    let server = Server::start(models, devices, config);

    // Warmup: one pinned request per (bucket model, device), so the
    // A/B measures steady-state decode serving, not cold compiles. The
    // tentpole makes this cheap: after the first bucket, each further
    // bucket's compile replays the shared group decisions.
    let tickets: Vec<_> = (0..bucket_models.len())
        .flat_map(|m| (0..server.pool().len()).map(move |d| InferenceRequest::new(m).on_device(d)))
        .map(|req| server.submit(req).expect("decode warmup submit"))
        .collect();
    for t in tickets {
        let r = t.wait();
        assert!(r.error.is_none(), "decode warmup compile failed: {:?}", r.error);
    }

    let mut prefill_rng = StdRng::seed_from_u64(opts.seed ^ 0x9e3779b97f4a7c15);

    let replay_start = Instant::now();
    let mut step_wall_ms = Vec::new();
    let mut prefill_wall_ms = Vec::with_capacity(prefill);
    let mut device_ms = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = prompts
            .iter()
            .zip(gens)
            .map(|(&prompt, &gen)| {
                let server = &server;
                let bucket_models = &bucket_models;
                scope.spawn(move || {
                    if continuous {
                        let mut session = DecodeSession::new(server, bucket_models, prompt);
                        let mut dev_ms = 0.0;
                        for _ in 0..gen {
                            let r = session.step().expect("decode step");
                            dev_ms += r.exec_ms / r.batch_size as f64;
                        }
                        (session.step_wall_ms().to_vec(), dev_ms)
                    } else {
                        let target = prompt + gen;
                        let model = bucket_models
                            .iter()
                            .find(|&&(b, _)| b >= target)
                            .map(|&(_, m)| m)
                            .expect("prompt + generation fits the bucket ceiling");
                        let r = server
                            .submit(InferenceRequest::new(model).with_decode_steps(gen as u32))
                            .expect("whole-request submit")
                            .wait();
                        assert!(r.error.is_none(), "whole-request decode failed: {:?}", r.error);
                        (vec![r.wall_ms / gen as f64; gen], r.exec_ms / r.batch_size as f64)
                    }
                })
            })
            .collect();
        // Paced prefill arrivals ride along on the main thread — the
        // "mixed" in mixed prefill + decode. In the whole-request arm
        // any prefill cut into a decode batch is held hostage for all
        // `gen` iterations; continuous batching caps the hold at one.
        let mut arrival = Instant::now();
        let mut tickets = Vec::with_capacity(prefill);
        for _ in 0..prefill {
            let u = (prefill_rng.next_u64().max(1)) as f64 / u64::MAX as f64;
            arrival += Duration::from_secs_f64(-u.ln() / prefill_rate);
            if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            // Uniform over the buckets, so prefill traffic genuinely
            // shares batch keys with the decode sessions.
            let model = (prefill_rng.next_u64() as usize) % buckets.len();
            tickets.push(server.submit(InferenceRequest::new(model)).expect("prefill submit"));
        }
        for t in tickets {
            let r = t.wait();
            assert!(r.error.is_none(), "prefill failed: {:?}", r.error);
            device_ms += r.exec_ms / r.batch_size as f64;
            prefill_wall_ms.push(r.wall_ms);
        }
        for h in handles {
            let (walls, dev) = h.join().expect("decode session thread");
            step_wall_ms.extend(walls);
            device_ms += dev;
        }
    });
    let wall_s = replay_start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(
        stats.decode_tokens, total_tokens as u64,
        "every session's every step produced a token"
    );
    DecodeArm { tokens: stats.decode_tokens, wall_s, device_ms, step_wall_ms, prefill_wall_ms }
}

/// The decode A/B: continuous batching vs whole-request batching over
/// the same bucketed-Pythia workload, gated on tokens per simulated
/// device-second (wall-clock tokens/s is reported, but the gate uses
/// device time so it is not at the mercy of a noisy CI runner).
fn run_decode(opts: &BenchOpts) {
    assert!(opts.replicas == 1 && opts.fault_rate == 0.0, "--decode does not support fleet mode");
    assert!(opts.cancel_rate == 0.0, "--cancel-rate is not supported with --decode");
    let (sessions, max_gen, prefill) = if opts.smoke { (6, 12, 12) } else { (12, 48, 60) };
    let prefill_rate = if opts.smoke { 200.0 } else { 300.0 };
    // Deterministic workload shared by both arms: short prompts, long
    // mixed-length generations — the LLM chat shape. Mixed lengths are
    // the structural hostage: a whole-request batch holds the device
    // for its *longest* member's steps while shorter members stopped
    // producing tokens; continuous batching never pays that, because a
    // finished session simply stops stepping.
    let table = smartmem_models::decode_buckets();
    assert!(4 + 8 + max_gen <= table.ceiling(), "generation must fit the bucket ceiling");
    let mut workload_rng = StdRng::seed_from_u64(opts.seed ^ 0x00de_c0de);
    let prompts: Vec<usize> =
        (0..sessions).map(|_| 4 + (workload_rng.next_u64() as usize) % 8).collect();
    let gens: Vec<usize> = (0..sessions)
        .map(|_| max_gen / 2 + (workload_rng.next_u64() as usize) % (max_gen / 2 + 1))
        .collect();
    println!(
        "serve_bench (decode A/B): {sessions} sessions x {}..={max_gen} tokens + {prefill} \
         prefill over {} buckets (seed {})",
        max_gen / 2,
        table.buckets().len(),
        opts.seed,
    );
    let cont = run_decode_arm(opts, true, &prompts, &gens, prefill, prefill_rate);
    let whole = run_decode_arm(opts, false, &prompts, &gens, prefill, prefill_rate);
    assert_eq!(cont.tokens, whole.tokens, "the arms must serve equal offered load");

    let tps = |arm: &DecodeArm| arm.tokens as f64 / (arm.device_ms / 1e3);
    let wall_tps = |arm: &DecodeArm| arm.tokens as f64 / arm.wall_s;
    let sorted = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v
    };
    let cont_steps = sorted(cont.step_wall_ms.clone());
    let whole_steps = sorted(whole.step_wall_ms.clone());
    let cont_prefill = sorted(cont.prefill_wall_ms.clone());
    let whole_prefill = sorted(whole.prefill_wall_ms.clone());
    let cont_tps = tps(&cont);
    let whole_tps = tps(&whole);
    let rows = vec![
        vec!["tokens/s (device time)".into(), format!("{cont_tps:.0}"), format!("{whole_tps:.0}")],
        vec![
            "tokens/s (wall)".into(),
            format!("{:.0}", wall_tps(&cont)),
            format!("{:.0}", wall_tps(&whole)),
        ],
        vec![
            "p50 step (ms)".into(),
            format!("{:.2}", percentile(&cont_steps, 50.0)),
            format!("{:.2}", percentile(&whole_steps, 50.0)),
        ],
        vec![
            "p99 step (ms)".into(),
            format!("{:.2}", percentile(&cont_steps, 99.0)),
            format!("{:.2}", percentile(&whole_steps, 99.0)),
        ],
        vec![
            "p99 prefill (ms)".into(),
            format!("{:.2}", percentile(&cont_prefill, 99.0)),
            format!("{:.2}", percentile(&whole_prefill, 99.0)),
        ],
        vec![
            "device ms / token".into(),
            format!("{:.3}", cont.device_ms / cont.tokens as f64),
            format!("{:.3}", whole.device_ms / whole.tokens as f64),
        ],
        vec!["tokens".into(), format!("{}", cont.tokens), format!("{}", whole.tokens)],
    ];
    print!(
        "{}",
        render_table(
            "decode A/B (same workload)",
            &["metric", "continuous", "whole-request"],
            &rows
        )
    );

    if let Some(path) = &opts.json {
        use smartmem_bench::json::{write_json, BenchRecord};
        let rec =
            |metric: &str, value: f64| BenchRecord::new("serve_decode", "pool", metric, value);
        let mut records = vec![
            rec("decode.tokens_per_s", cont_tps),
            rec("decode.p99_step_ms", percentile(&cont_steps, 99.0)),
            rec("decode.wall_tokens_per_s", wall_tps(&cont)),
            rec("decode.whole_tokens_per_s", whole_tps),
            rec("decode.speedup_vs_whole", cont_tps / whole_tps),
            rec("decode.tokens", cont.tokens as f64),
            rec("decode.p99_prefill_ms", percentile(&cont_prefill, 99.0)),
        ];
        records.retain(|r| r.value.is_finite());
        write_json(path, &records).expect("write --json output");
        println!("\nwrote {} records to {}", records.len(), path.display());
    }

    // The A/B gate: at equal offered load, continuous batching must
    // out-serve whole-request batching — early steps run on the small
    // (cheap) buckets instead of paying the final bucket for every
    // iteration, and prefill batch-mates stop being held hostage.
    assert!(
        cont_tps > whole_tps,
        "continuous batching must beat whole-request tokens/s: {cont_tps:.0} vs {whole_tps:.0}"
    );
    println!(
        "\nserve_bench decode OK: continuous {cont_tps:.0} tokens/s vs whole-request \
         {whole_tps:.0} tokens/s ({:.2}x, {:.2}s + {:.2}s wall)",
        cont_tps / whole_tps,
        cont.wall_s,
        whole.wall_s,
    );
}

fn main() {
    let opts = parse_args();
    if opts.fresh_cache {
        let dir = opts.cache_dir.clone().unwrap_or_else(|| PathBuf::from("/tmp/smartmem-cache"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear --fresh-cache dir");
            println!("fresh cache: cleared {}", dir.display());
        }
    }
    if opts.decode {
        run_decode(&opts);
        return;
    }
    if opts.replicas > 1 || opts.fault_rate > 0.0 {
        run_fleet(&opts);
        return;
    }
    // The span recorder is on when a trace was asked for; metrics are
    // always on (single atomic ops).
    let trace_run = opts.trace_out.is_some();
    println!(
        "serve_bench: {} requests over {} devices \
         (open loop, {:.0} rps, seed {}, {:?} cuts, cancel rate {:.0}%, tracing {})",
        opts.requests,
        devices().len(),
        opts.rate_rps,
        opts.seed,
        opts.cut_policy,
        opts.cancel_rate * 100.0,
        if trace_run { "on" } else { "off" },
    );
    let run = run_replay(&opts, trace_run, false);
    let RunOutcome {
        responses,
        stats,
        warm_stats,
        warmup_requests,
        wall_s,
        cancels_attempted,
        cancels_won,
        device_names,
        device_slugs,
        deadlines,
        telemetry,
        ..
    } = &run;
    let wall_s = *wall_s;

    // --- Report -------------------------------------------------------
    let served: Vec<&InferenceResponse> = responses.iter().filter(|r| !r.cancelled).collect();
    let cancelled_responses = responses.len() - served.len();
    let mut e2e: Vec<f64> = served.iter().map(|r| r.e2e_ms()).collect();
    e2e.sort_by(f64::total_cmp);
    let mut queue: Vec<f64> = served.iter().map(|r| r.queue_ms).collect();
    queue.sort_by(f64::total_cmp);
    let failed = served.iter().filter(|r| r.error.is_some()).count();

    // Trace-only batching statistics (warmup batches subtracted).
    let trace_batches = stats.batches - warm_stats.batches;
    let hist: Vec<u64> =
        stats.batch_histogram.iter().zip(&warm_stats.batch_histogram).map(|(a, b)| a - b).collect();
    let mean_batch = histogram_mean(&hist);

    let summary = vec![
        vec!["served".into(), format!("{}", served.len())],
        vec!["cancelled".into(), format!("{cancelled_responses}")],
        vec!["failed".into(), format!("{failed}")],
        vec!["throughput (req/s)".into(), format!("{:.0}", served.len() as f64 / wall_s)],
        vec!["p50 e2e (sim ms)".into(), format!("{:.2}", percentile(&e2e, 50.0))],
        vec!["p99 e2e (sim ms)".into(), format!("{:.2}", percentile(&e2e, 99.0))],
        vec!["p50 queue (ms)".into(), format!("{:.2}", percentile(&queue, 50.0))],
        vec!["p99 queue (ms)".into(), format!("{:.2}", percentile(&queue, 99.0))],
        vec!["batches".into(), format!("{trace_batches}")],
        vec!["mean batch size".into(), format!("{mean_batch:.2}")],
        vec!["compiled artifacts".into(), format!("{}", stats.compiled)],
        vec![
            "cache hits / misses".into(),
            format!("{} / {}", stats.cache.hits, stats.cache.misses),
        ],
        vec!["disk hits".into(), format!("{}", stats.cache.disk_hits)],
        vec!["cache hit rate".into(), format!("{:.1}%", stats.cache_hit_rate() * 100.0)],
        vec![
            "steady-state hit rate".into(),
            format!("{:.1}%", steady_hit_rate(warm_stats, stats) * 100.0),
        ],
    ];
    print!("{}", render_table("serve_bench summary", &["metric", "value"], &summary));

    // Per-class latency, queue-wait, and SLO report over the traced
    // requests. Queue wait is submit → batch claim — the time the
    // scheduler, not the device, is responsible for.
    let class_queue = |class: Priority| -> Vec<f64> {
        let mut waits: Vec<f64> =
            served.iter().filter(|r| r.priority == class).map(|r| r.queue_ms).collect();
        waits.sort_by(f64::total_cmp);
        waits
    };
    let class_rows: Vec<Vec<String>> = Priority::ALL
        .iter()
        .map(|&class| {
            let mut class_e2e: Vec<f64> =
                served.iter().filter(|r| r.priority == class).map(|r| r.e2e_ms()).collect();
            class_e2e.sort_by(f64::total_cmp);
            let waits = class_queue(class);
            let cs = stats.class(class);
            let warm_cs = warm_stats.class(class);
            vec![
                class.name().into(),
                format!("{}", class_e2e.len()),
                format!("{}", cs.cancelled - warm_cs.cancelled),
                format!("{:.0}", deadlines.budget(class).as_secs_f64() * 1e3),
                format!("{:.2}", percentile(&class_e2e, 50.0)),
                format!("{:.2}", percentile(&class_e2e, 99.0)),
                format!("{:.2}", percentile(&waits, 50.0)),
                format!("{:.2}", percentile(&waits, 99.0)),
                format!("{}", cs.slo_violations - warm_cs.slo_violations),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "per-class latency (traced requests)",
            &[
                "class",
                "served",
                "cancelled",
                "deadline ms",
                "p50 e2e",
                "p99 e2e",
                "p50 queue",
                "p99 queue",
                "SLO viol",
            ],
            &class_rows,
        )
    );

    // Per-device batch histograms: pull-based growth shows up as big
    // batches on backlogged devices while idle ones keep cutting small.
    let device_rows: Vec<Vec<String>> = stats
        .per_device_batch_histogram
        .iter()
        .zip(&warm_stats.per_device_batch_histogram)
        .enumerate()
        .map(|(d, (all, warm))| {
            let hist: Vec<u64> = all.iter().zip(warm).map(|(a, b)| a - b).collect();
            let batches: u64 = hist.iter().sum();
            let mean = histogram_mean(&hist);
            let spark: Vec<String> = hist
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("{}:{c}", i + 1))
                .collect();
            vec![
                device_names[d].clone(),
                format!("{batches}"),
                format!("{mean:.2}"),
                spark.join(" "),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "batches per device (size:count)",
            &["device", "batches", "mean", "histogram"],
            &device_rows,
        )
    );

    // --- Chrome-trace export ------------------------------------------
    if let Some(path) = &opts.trace_out {
        let trace = telemetry.tracer.drain();
        let requests =
            trace.spans.iter().filter(|s| s.name == smartmem_telemetry::REQUEST_SPAN).count();
        std::fs::write(path, render_chrome(&trace)).expect("write --trace-out file");
        println!(
            "\nwrote {} spans ({requests} request spans, {} dropped) to {} — load it in \
             chrome://tracing or https://ui.perfetto.dev, or run `trace_view {}`",
            trace.spans.len(),
            trace.dropped,
            path.display(),
            path.display(),
        );
        assert!(requests > 0, "a traced run must export at least one complete request span");
    }

    // --- Telemetry overhead -------------------------------------------
    // With --json the schedule replays once more with the opposite
    // telemetry setting; comparing throughputs prices the span
    // recorder. Clamped at zero: open-loop throughput is
    // schedule-bound, so negative noise just means "unmeasurable".
    let overhead_pct = opts.json.as_ref().map(|_| {
        println!(
            "\nmeasuring telemetry overhead (second replay, tracing {})...",
            if trace_run { "off" } else { "on" }
        );
        let other = run_replay(&opts, !trace_run, true);
        let (on_rps, off_rps) = if trace_run {
            (run.throughput_rps(), other.throughput_rps())
        } else {
            (other.throughput_rps(), run.throughput_rps())
        };
        let overhead = ((off_rps - on_rps) / off_rps * 100.0).max(0.0);
        println!(
            "telemetry overhead: {on_rps:.0} rps traced vs {off_rps:.0} rps untraced \
             ({overhead:.2}% overhead)"
        );
        overhead
    });

    // Machine-readable records (written before the gates below, so CI
    // keeps the artifact even when a gate trips).
    if let Some(path) = &opts.json {
        use smartmem_bench::json::{write_json, BenchRecord};
        let rec = |metric: &str, value: f64| BenchRecord::new("serve_bench", "pool", metric, value);
        let mut records = vec![
            rec("served", served.len() as f64),
            rec("cancelled", cancelled_responses as f64),
            rec("failed", failed as f64),
            rec("throughput_rps", served.len() as f64 / wall_s),
            rec("p50_e2e_ms", percentile(&e2e, 50.0)),
            rec("p99_e2e_ms", percentile(&e2e, 99.0)),
            rec("p50_queue_ms", percentile(&queue, 50.0)),
            rec("p99_queue_ms", percentile(&queue, 99.0)),
            rec("batches", trace_batches as f64),
            rec("mean_batch", mean_batch),
            rec("cache_hit_rate", stats.cache_hit_rate()),
            rec("steady_hit_rate", steady_hit_rate(warm_stats, stats)),
        ];
        if let Some(overhead) = overhead_pct {
            records.push(rec("telemetry_overhead_pct", overhead));
        }
        for &class in Priority::ALL.iter() {
            let mut class_e2e: Vec<f64> =
                served.iter().filter(|r| r.priority == class).map(|r| r.e2e_ms()).collect();
            class_e2e.sort_by(f64::total_cmp);
            let waits = class_queue(class);
            let cs = stats.class(class);
            let warm_cs = warm_stats.class(class);
            let prefix = class.name().to_ascii_lowercase();
            records.push(rec(&format!("{prefix}.p50_e2e_ms"), percentile(&class_e2e, 50.0)));
            records.push(rec(&format!("{prefix}.p99_e2e_ms"), percentile(&class_e2e, 99.0)));
            records.push(rec(&format!("{prefix}.p50_queue_ms"), percentile(&waits, 50.0)));
            records.push(rec(&format!("{prefix}.p99_queue_ms"), percentile(&waits, 99.0)));
            records.push(rec(
                &format!("{prefix}.slo_violations"),
                (cs.slo_violations - warm_cs.slo_violations) as f64,
            ));
        }
        for (d, (all, warm)) in stats
            .per_device_batch_histogram
            .iter()
            .zip(&warm_stats.per_device_batch_histogram)
            .enumerate()
        {
            let hist: Vec<u64> = all.iter().zip(warm).map(|(a, b)| a - b).collect();
            let slug = device_slugs[d].clone();
            records.push(BenchRecord::new(
                "serve_bench",
                &slug,
                "batches",
                hist.iter().sum::<u64>() as f64,
            ));
            records.push(BenchRecord::new("serve_bench", &slug, "mean_batch", {
                let m = histogram_mean(&hist);
                if m.is_finite() {
                    m
                } else {
                    0.0
                }
            }));
        }
        // The server's telemetry registry rides along flattened
        // (histograms expand to .count/.mean/.p50/.p99), so any metric
        // the stack publishes is one baseline line away from being
        // gated by bench_diff.
        for (name, value) in smartmem_telemetry::flatten(&telemetry.registry.snapshot()) {
            records.push(rec(&name, value));
        }
        // A class with zero served requests has NaN percentiles; JSON
        // has no NaN, so drop the unavailable metrics rather than
        // poison the artifact for the bench_diff parser.
        records.retain(|r| r.value.is_finite());
        write_json(path, &records).expect("write --json output");
        println!("\nwrote {} records to {}", records.len(), path.display());
    }

    // Sanity gates so CI fails loudly if the serving path regresses.
    assert_eq!(
        stats.completed + stats.cancelled,
        opts.requests as u64 + warmup_requests,
        "every request must be answered (served or cancelled)"
    );
    assert_eq!(failed, 0, "no compilation failures expected on the served zoo");
    assert_eq!(
        stats.cancelled, *cancels_won,
        "server-side cancelled count must match the cancel() wins"
    );
    assert_eq!(
        cancelled_responses as u64, *cancels_won,
        "every cancel win resolves its ticket as cancelled — and nothing else does"
    );
    assert!(
        served.iter().all(|r| r.batch_size >= 1),
        "served responses must have ridden a real batch"
    );
    if opts.cancel_rate > 0.0 {
        println!(
            "\ncancellation: {cancels_won}/{cancels_attempted} cancel() calls won the race \
             (the rest were already cut or served)"
        );
    }
    // Under --cold the trace deliberately pays every cold compile, so
    // the steady-state gate only applies to warmed runs.
    if !opts.cold {
        let steady_floor = if opts.smoke { 0.8 } else { 0.9 };
        let steady = steady_hit_rate(warm_stats, stats);
        assert!(
            steady >= steady_floor,
            "steady-state cache hit rate {steady:.3} below {steady_floor}"
        );
    }
    // At smoke load the Interactive class must hold its SLO over the
    // traced requests: the slack-ordered scheduler has no excuse at
    // ~3000 rps over two warm models. (Warmup requests are excluded —
    // they deliberately pay the cold compiles.)
    if opts.smoke {
        let viol = stats.class(Priority::Interactive).slo_violations
            - warm_stats.class(Priority::Interactive).slo_violations;
        assert_eq!(viol, 0, "Interactive SLO violations at smoke load: {viol}");
        let mut interactive: Vec<f64> = served
            .iter()
            .filter(|r| r.priority == Priority::Interactive)
            .map(|r| r.wall_ms)
            .collect();
        interactive.sort_by(f64::total_cmp);
        let p99 = percentile(&interactive, 99.0);
        let budget_ms = deadlines.budget(Priority::Interactive).as_secs_f64() * 1e3;
        assert!(
            p99 <= budget_ms,
            "Interactive p99 wall {p99:.2} ms exceeds its {budget_ms:.0} ms budget at smoke load"
        );
    }
    // A warm start against a populated --cache-dir must never run a
    // pass sequence: every request — the very first included — decodes
    // a persisted artifact or hits the promoted in-memory entry.
    if opts.expect_warm {
        assert_eq!(
            stats.cache.misses, 0,
            "warm start performed {} cold compiles (disk artifacts missing or stale)",
            stats.cache.misses
        );
        assert!(stats.cache.disk_hits > 0, "warm start never touched the disk cache");
        assert!(
            (stats.cache_hit_rate() - 1.0).abs() < f64::EPSILON,
            "warm start must be a 100% hit rate from the first request, got {:.3}",
            stats.cache_hit_rate()
        );
        println!(
            "\nwarm start OK: zero cold compiles, {} disk hits over {} requests",
            stats.cache.disk_hits, stats.completed
        );
    }
    println!("\nserve_bench OK ({wall_s:.2}s wall)");
}

/// Hit rate over the traced (post-warmup) requests only.
fn steady_hit_rate(warm: &ServeStats, fin: &ServeStats) -> f64 {
    let hits = fin.cache.hits - warm.cache.hits;
    let misses = fin.cache.misses - warm.cache.misses;
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn rate_nonzero(rps: f64) -> f64 {
    assert!(rps > 0.0, "--rate must be positive");
    rps
}
