//! Regenerates the **§3.2.2 microbenchmark**: read-optimized layouts
//! (producer writes in the consumer's preferred layout) vs
//! write-optimized layouts (producer writes in its natural order and
//! the consumer reads sub-optimally). Paper: read-optimized wins by
//! 1.7x (Conv), 1.4x (MatMul), 1.1x (Activation) — the basis for
//! SmartMem's "force the producer to match the consumer" heuristic.

use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem_ir::{DType, Graph, GraphBuilder, UnaryKind};
use smartmem_sim::DeviceConfig;

/// producer (matmul) -> transpose (eliminated) -> consumer of choice.
fn chain(consumer: &str) -> Graph {
    let mut b = GraphBuilder::new(format!("rw-{consumer}"));
    let x = b.input("x", &[512, 256], DType::F16);
    let w = b.weight("w", &[256, 1024], DType::F16);
    let mm = b.matmul(x, w); // [512, 1024]
    let t = b.transpose(mm, &[1, 0]); // consumer sees [1024, 512]
    let out = match consumer {
        "Conv" => {
            let r = b.reshape(t, &[1, 1024, 32, 16]);
            let cw = b.weight("cw", &[256, 1024, 1, 1], DType::F16);
            b.conv2d(r, cw, (1, 1), (0, 0), 1)
        }
        "MatMul" => {
            let w2 = b.weight("w2", &[512, 64], DType::F16);
            b.matmul(t, w2)
        }
        _ => b.unary(t, UnaryKind::Gelu),
    };
    b.output(out);
    b.finish()
}

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let mut rows = Vec::new();
    for (consumer, paper) in [("Conv", 1.7), ("MatMul", 1.4), ("Activation", 1.1)] {
        let graph = chain(consumer);
        // Read-optimized: full reduction-dimension layout selection.
        let read_opt = SmartMemPipeline::new().run(&graph, &device).expect("read-opt").latency_ms;
        // Write-optimized: LTE still on, but producers keep framework
        // default layouts (consumers read sub-optimally through maps).
        let write_opt = SmartMemPipeline::with_config(SmartMemConfig {
            lte: true,
            index_comprehension: true,
            layout_selection: false,
            texture_and_tuning: false,
            streamline: true,
        })
        .run(&graph, &device)
        .expect("write-opt")
        .latency_ms;
        rows.push(vec![
            consumer.to_string(),
            format!("{write_opt:.3}"),
            format!("{read_opt:.3}"),
            format!("{:.2}x", write_opt / read_opt),
            format!("{paper:.1}x"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "§3.2.2 microbenchmark: read-optimized vs write-optimized layouts",
            &["Consumer", "Write-opt ms", "Read-opt ms", "Speedup", "Paper"],
            &rows,
        )
    );
}
