//! Regenerates the **§4.6 redundant-copy study**: size of redundant
//! layout copies kept for multi-consumer producers, and SmartMem's
//! operator-count / memory reduction vs DNNFusion on Swin and ViT.
//! Paper: max active copies 3.0 MB (Swin) / 2.3 MB (ViT); operator
//! count −24% / −33%; memory −14% / −15%.

use smartmem_baselines::DnnFusionFramework;
use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemPipeline};
use smartmem_models::{swin_tiny, vit};
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let dnnf = DnnFusionFramework::new();
    let ours = SmartMemPipeline::new();
    let mut rows = Vec::new();
    for (name, graph) in [("Swin", swin_tiny(1)), ("ViT", vit(1))] {
        let b = dnnf.optimize(&graph, &device).expect("dnnf");
        let o = ours.optimize(&graph, &device).expect("ours");
        let b_mem = b.peak_memory(&device);
        let o_mem = o.peak_memory(&device);
        rows.push(vec![
            name.to_string(),
            o.stats.redundant_tensors.to_string(),
            format!("{:.1} MB", o.stats.redundant_bytes_max as f64 / 1e6),
            format!("{} -> {}", b.stats.kernel_count, o.stats.kernel_count),
            format!(
                "{:+.0}%",
                100.0 * (o.stats.kernel_count as f64 / b.stats.kernel_count as f64 - 1.0)
            ),
            format!("{:+.0}%", 100.0 * (o_mem as f64 / b_mem as f64 - 1.0)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "§4.6: redundant copies and memory vs DNNFusion",
            &[
                "Model",
                "#Tensors w/ copies",
                "Max copy",
                "Kernels DNNF->Ours",
                "Op reduction",
                "Memory reduction"
            ],
            &rows,
        )
    );
    println!("\npaper: max copies 3.0/2.3 MB; op count -24%/-33%; memory -14%/-15% (Swin/ViT).");
}
