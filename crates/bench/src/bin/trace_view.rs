//! Digest a Chrome `trace_event` JSON file captured with
//! `serve_bench --trace-out` into a terminal report: per-phase time
//! breakdown, queue-wait vs execute attribution, the slowest spans,
//! and instant-event counts.
//!
//! ```text
//! cargo run -p smartmem-bench --release --bin serve_bench -- --smoke --trace-out trace.json
//! cargo run -p smartmem-bench --release --bin trace_view -- trace.json
//! ```
//!
//! Flags: `--expect-requests N` asserts the trace contains at least N
//! complete `request` spans and exits nonzero otherwise — CI uses it
//! to prove a captured trace is well-formed end to end (parseable
//! Chrome JSON *and* carrying whole request lifecycles), not just
//! nonempty.

use smartmem_telemetry::{parse_chrome, summarize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut expect_requests: Option<u64> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-requests" => {
                let v = args.next().expect("--expect-requests needs a value");
                expect_requests = Some(v.parse().expect("--expect-requests takes an integer"));
            }
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            file => {
                assert!(path.is_none(), "exactly one trace file expected, got a second: {file}");
                path = Some(file.to_string());
            }
        }
    }
    let path = path.expect("usage: trace_view TRACE.json [--expect-requests N]");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let trace = parse_chrome(&text).unwrap_or_else(|e| panic!("{path} is not a Chrome trace: {e}"));
    let summary = summarize(&trace);
    println!("trace_view: {path} ({} spans)", trace.spans.len());
    print!("{}", summary.render());
    if let Some(want) = expect_requests {
        let got = summary.complete_requests();
        assert!(got >= want, "expected at least {want} complete request spans, trace has {got}");
        println!("trace OK: {got} complete request spans (>= {want} required)");
    }
}
