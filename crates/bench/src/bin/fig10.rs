//! Regenerates **Fig. 10**: Swin speedups vs batch size (1–16). Paper:
//! SmartMem sustains 11.6–13.2x over MNN, 4.8–5.9x over TVM and
//! 4.1–4.7x over DNNFusion across batch sizes, with baselines dropping
//! out at large batches for lack of memory.

use smartmem_baselines::{DnnFusionFramework, MnnFramework, TvmFramework};
use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemPipeline};
use smartmem_models::swin_tiny;
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks: Vec<Box<dyn Framework>> = vec![
        Box::new(MnnFramework::new()),
        Box::new(TvmFramework::new()),
        Box::new(DnnFusionFramework::new()),
        Box::new(SmartMemPipeline::new()),
    ];
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let graph = swin_tiny(batch);
        let results: Vec<Option<f64>> = frameworks
            .iter()
            .map(|fw| fw.run(&graph, &device).ok().map(|r| r.latency_ms))
            .collect();
        let ours = results[3];
        let mut row = vec![batch.to_string()];
        for (i, r) in results.iter().enumerate() {
            match r {
                Some(ms) => {
                    if i < 3 {
                        match ours {
                            Some(o) => row.push(format!("{:.1}x ({ms:.0}ms)", ms / o)),
                            None => row.push(format!("{ms:.0}ms")),
                        }
                    } else {
                        row.push(format!("{ms:.0}ms"));
                    }
                }
                None => row.push("OOM".into()),
            }
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Fig. 10: Swin across batch sizes (speedup of Ours over each baseline)",
            &["Batch", "MNN", "TVM", "DNNF", "Ours"],
            &rows,
        )
    );
}
