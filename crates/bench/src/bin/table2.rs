//! Regenerates **Table 2**: characteristics of 1D buffer memory vs 2.5D
//! texture memory, plus the measured locality advantage that motivates
//! them (the paper cites a 3.5x conv latency reduction from texture
//! memory).

use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem_ir::{DType, GraphBuilder, UnaryKind};
use smartmem_sim::{CacheConfig, CacheSim, DeviceConfig};

fn main() {
    // Qualitative half of Table 2.
    let rows = vec![
        vec!["Computation acceleration engine".into(), "N".into(), "Y".into()],
        vec!["Automatic bounds checking".into(), "N".into(), "Y".into()],
        vec!["Hardware interpolation".into(), "N".into(), "Y".into()],
        vec!["Organization".into(), "Contiguous".into(), "Multidimensional".into()],
        vec!["Addressing".into(), "Pointer-based".into(), "Coordinates".into()],
        vec!["Dedicated cache".into(), "No".into(), "Yes".into()],
        vec!["Data locality".into(), "1D".into(), "2.5D".into()],
        vec!["Direct CPU access".into(), "Yes".into(), "No".into()],
    ];
    print!(
        "{}",
        render_table(
            "Table 2: memory comparison on mobile GPUs",
            &["Characteristic", "1D buffer", "2.5D texture"],
            &rows
        )
    );

    // Quantitative: column walks through a 2-D data set. 1-D lines only
    // help along rows; 2-D tiles help along both axes.
    let mut linear = CacheSim::new(CacheConfig { size_bytes: 32 << 10, line_bytes: 64, ways: 4 });
    let mut tiled = CacheSim::new(CacheConfig { size_bytes: 32 << 10, line_bytes: 64, ways: 4 });
    let width = 512u64;
    for x in 0..64u64 {
        for y in 0..64u64 {
            // Column-major walk. Linear lines: key from row-major offset.
            linear.access((y * width + x) * 2 / 64);
            // 2-D tiles of 4x2 texels.
            tiled.access((y / 2) << 20 | (x / 4));
        }
    }
    println!(
        "\ncolumn-walk miss ratio: 1D lines {:.2}, 2.5D tiles {:.2} ({:.1}x fewer misses)",
        linear.miss_ratio(),
        tiled.miss_ratio(),
        linear.miss_ratio() / tiled.miss_ratio()
    );

    // Conv latency from texture vs buffer (paper: ~3.5x).
    let device = DeviceConfig::snapdragon_8gen2();
    // A bandwidth-bound depthwise convolution exposes the memory-class
    // difference (compute-bound convolutions hide it).
    let mut b = GraphBuilder::new("conv-micro");
    let x = b.input("x", &[1, 64, 224, 224], DType::F16);
    let w = b.weight("w", &[64, 1, 3, 3], DType::F16);
    let c = b.conv2d(x, w, (1, 1), (1, 1), 64);
    let r = b.unary(c, UnaryKind::Relu);
    b.output(r);
    let g = b.finish();

    let with_texture = SmartMemPipeline::new().optimize(&g, &device).unwrap().estimate(&device);
    let mut no_texture_device = device.clone();
    no_texture_device.caps.texture_path = false;
    no_texture_device.caps.max_texture_extent = 0;
    let buffer_only = SmartMemPipeline::with_config(SmartMemConfig::full())
        .optimize(&g, &no_texture_device)
        .unwrap()
        .estimate(&no_texture_device);
    println!(
        "depthwise conv 3x3 64ch @224x224: buffer-only {:.2} ms vs texture {:.2} ms ({:.1}x; paper reports ~3.5x)",
        buffer_only.latency_ms,
        with_texture.latency_ms,
        buffer_only.latency_ms / with_texture.latency_ms
    );
}
