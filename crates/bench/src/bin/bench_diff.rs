//! The bench-JSON regression gate.
//!
//! Compares one or more `--json` outputs of the bench binaries against
//! the checked-in baseline, failing (exit code 1) when any baselined
//! metric regresses beyond the tolerance:
//!
//! ```text
//! bench_diff --baseline bench/baseline.json [--tolerance 0.15] current.json...
//! ```
//!
//! Rules:
//!
//! * Only metrics present in the **baseline** are gated. Bench runs
//!   emit more than the baseline pins (wall-clock timings, queueing
//!   percentiles — noisy on shared CI runners); those ride along as
//!   artifacts and show up here as ungated `new` rows. The baseline
//!   should pin the *deterministic* metrics: simulated latencies,
//!   speedups, request accounting.
//! * Direction comes from the metric name
//!   (`BenchRecord::higher_is_better`): throughput/rate/speedup-style
//!   metrics must not drop, everything else (latencies, bad-event
//!   counts) must not rise, each by more than `--tolerance` relative
//!   (absolute slack 1e-9 for zero-valued baselines).
//! * A baselined metric missing from the current runs fails the gate —
//!   silently dropping a bench is itself a regression.
//! * Improvements beyond the tolerance pass but are called out, with a
//!   hint to re-baseline so the gate keeps teeth.

use smartmem_bench::json::{parse_json, BenchRecord};
use smartmem_bench::render_table;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    baseline: PathBuf,
    tolerance: f64,
    current: Vec<PathBuf>,
}

fn parse_args() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = argv.iter();
    let mut baseline = None;
    let mut tolerance = 0.15;
    let mut current = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().expect("--baseline needs a value")));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance must be a number");
                assert!(tolerance >= 0.0, "--tolerance must be non-negative");
            }
            path => current.push(PathBuf::from(path)),
        }
    }
    Opts {
        baseline: baseline.expect("usage: bench_diff --baseline FILE [--tolerance T] CURRENT..."),
        tolerance,
        current,
    }
}

fn load(path: &PathBuf) -> Vec<BenchRecord> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_json(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let opts = parse_args();
    assert!(!opts.current.is_empty(), "give at least one current bench-JSON file");
    let baseline = load(&opts.baseline);
    let mut current: BTreeMap<String, f64> = BTreeMap::new();
    let mut current_count = 0usize;
    for path in &opts.current {
        for r in load(path) {
            if current.insert(r.key(), r.value).is_some() {
                panic!("duplicate record {} across current files", r.key());
            }
            current_count += 1;
        }
    }

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut improvements = 0usize;
    let mut gated_keys = std::collections::BTreeSet::new();
    for base in &baseline {
        let key = base.key();
        gated_keys.insert(key.clone());
        let (status, delta_pct) = match current.get(&key) {
            None => {
                regressions.push(format!("{key}: missing from the current run"));
                ("MISSING".to_string(), f64::NAN)
            }
            Some(&cur) => {
                let denom = base.value.abs().max(1e-9);
                let delta = (cur - base.value) / denom;
                let bad = if base.higher_is_better() { -delta } else { delta };
                if bad > opts.tolerance {
                    regressions.push(format!(
                        "{key}: {} -> {} ({:+.1}%, tolerance ±{:.0}%)",
                        base.value,
                        cur,
                        delta * 100.0,
                        opts.tolerance * 100.0
                    ));
                    ("REGRESSED".to_string(), delta * 100.0)
                } else if -bad > opts.tolerance {
                    improvements += 1;
                    ("improved".to_string(), delta * 100.0)
                } else {
                    ("ok".to_string(), delta * 100.0)
                }
            }
        };
        rows.push(vec![
            key,
            format!("{:.4}", base.value),
            current.get(&base.key()).map(|v| format!("{v:.4}")).unwrap_or_else(|| "–".to_string()),
            if delta_pct.is_nan() { "–".into() } else { format!("{delta_pct:+.1}%") },
            status,
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!(
                "bench_diff vs {} (±{:.0}% tolerance)",
                opts.baseline.display(),
                opts.tolerance * 100.0
            ),
            &["metric", "baseline", "current", "delta", "status"],
            &rows,
        )
    );
    let ungated = current_count - current.keys().filter(|k| gated_keys.contains(*k)).count();
    println!(
        "\n{} baselined metrics checked, {ungated} ungated records rode along as artifacts.",
        baseline.len()
    );
    if improvements > 0 {
        println!(
            "{improvements} metrics improved beyond the tolerance — consider re-baselining \
             bench/baseline.json so the gate keeps teeth."
        );
    }
    if regressions.is_empty() {
        println!("bench_diff OK: no regressions.");
        ExitCode::SUCCESS
    } else {
        println!("\nbench_diff FAILED: {} regression(s):", regressions.len());
        for r in &regressions {
            println!("  {r}");
        }
        ExitCode::FAILURE
    }
}
