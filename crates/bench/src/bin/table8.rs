//! Regenerates **Table 8**: end-to-end latency and speed (GMACS) of the
//! six frameworks on the Snapdragon 8 Gen 2 GPU across all 18 models,
//! plus geo-mean speedups of SmartMem over each baseline.
//!
//! Usage: `cargo run -p smartmem-bench --release --bin table8 [model-filter]`

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::{geo_mean, latency_cell, render_table, run_one, speed_cell, RunResult};
use smartmem_models::all_models;
use smartmem_sim::DeviceConfig;

fn main() {
    let filter = std::env::args().nth(1);
    let device = DeviceConfig::snapdragon_8gen2();
    let frameworks = all_mobile_frameworks();
    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); frameworks.len()];

    for m in all_models() {
        if let Some(f) = &filter {
            if !m.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let graph = m.graph();
        let results: Vec<RunResult> =
            frameworks.iter().map(|fw| run_one(fw.as_ref(), &graph, &device)).collect();
        let ours = results.last().expect("smartmem column").as_ref().ok().map(|r| r.latency_ms);
        let mut row = vec![m.name.to_string(), format!("{:.1}", graph.total_macs() as f64 / 1e9)];
        for r in &results {
            row.push(latency_cell(r));
        }
        for r in &results {
            row.push(speed_cell(r));
        }
        if let (Some(ours_ms), Ok(dnnf)) = (ours, results[4].as_ref()) {
            row.push(format!("{:.1}x", dnnf.latency_ms / ours_ms));
        } else {
            row.push("–".into());
        }
        if let Some(ours_ms) = ours {
            for (i, r) in results.iter().enumerate() {
                if let Ok(rep) = r {
                    speedups[i].push(rep.latency_ms / ours_ms);
                }
            }
        }
        rows.push(row);
    }

    let headers = [
        "Model",
        "GMACs",
        "MNN ms",
        "NCNN ms",
        "TFLite ms",
        "TVM ms",
        "DNNF ms",
        "Ours ms",
        "MNN G/s",
        "NCNN G/s",
        "TFLite G/s",
        "TVM G/s",
        "DNNF G/s",
        "Ours G/s",
        "vs DNNF",
    ];
    print!(
        "{}",
        render_table("Table 8: end-to-end latency on Snapdragon 8 Gen 2", &headers, &rows)
    );

    println!("\nGeo-mean speedup of SmartMem over:");
    for (i, fw) in frameworks.iter().enumerate().take(frameworks.len() - 1) {
        println!(
            "  {:>10}: {:.1}x   (paper: MNN 7.9x, NCNN 1.6x, TFLite 2.5x, TVM 6.9x, DNNF 2.8x)",
            fw.name(),
            geo_mean(&speedups[i])
        );
    }
}
