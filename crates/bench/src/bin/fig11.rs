//! Regenerates **Fig. 11**: portability — speedups over each baseline
//! across the whole device pool, from the 4 GB Dimensity 700 to a
//! server-class NPU. Paper shape: similar speedups despite very
//! different resources; some baselines fail on the 4 GB device (e.g.
//! ConvNext under MNN/TVM). The layout each device ends up with differs
//! (2.5D textures on Adreno/Mali, 1D buffers on Apple/NPU/desktop) but
//! the elimination machinery carries over — that is the portability
//! claim, and it falls out of the capability model: no device is
//! special-cased anywhere in layout selection.
//!
//! The run ends with an AFBC A/B on the Mali-G710 profile: the same
//! compiled models with framebuffer compression toggled off, asserting
//! that AFBC-on beats AFBC-off on at least one texture-bound model.
//!
//! Flags: `--smoke` (tiny model subset for CI), `--json PATH`
//! (machine-readable records for the `bench_diff` regression gate).

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::json::{write_json, BenchRecord};
use smartmem_bench::{parse_bench_args, render_table};
use smartmem_core::{Framework, SmartMemPipeline};
use smartmem_models::by_name;
use smartmem_sim::DeviceConfig;

/// The seven-device portability pool.
fn devices() -> Vec<DeviceConfig> {
    vec![
        DeviceConfig::dimensity_700(),
        DeviceConfig::snapdragon_835(),
        DeviceConfig::snapdragon_8gen2(),
        DeviceConfig::mali_g710(),
        DeviceConfig::apple_m1(),
        DeviceConfig::server_npu(),
        DeviceConfig::tesla_v100(),
    ]
}

fn main() {
    let args = parse_bench_args();
    assert!(args.cache_dir.is_none(), "fig11 takes --smoke and --json only");
    let models: &[&str] = if args.smoke {
        &["Swin", "ResNext"]
    } else {
        &["CSwin", "FlattenFormer", "SMTFormer", "Swin", "ViT", "ConvNext", "ResNext", "Yolo-V8"]
    };
    let mut records: Vec<BenchRecord> = Vec::new();

    for device in devices() {
        let frameworks = all_mobile_frameworks();
        let slug = device.slug();
        let mut rows = Vec::new();
        for name in models {
            let graph = by_name(name).expect("model").graph();
            let results: Vec<Option<f64>> = frameworks
                .iter()
                .map(|fw| fw.run(&graph, &device).ok().map(|r| r.latency_ms))
                .collect();
            let ours = results.last().copied().flatten();
            let mut row = vec![name.to_string()];
            for (fw, r) in frameworks.iter().zip(&results).take(frameworks.len() - 1) {
                match (r, ours) {
                    (Some(ms), Some(o)) => {
                        row.push(format!("{:.1}x", ms / o));
                        records.push(BenchRecord::new(
                            "fig11",
                            &slug,
                            format!("{name}.speedup_vs_{}", fw.name().to_ascii_lowercase()),
                            ms / o,
                        ));
                    }
                    _ => row.push("–".into()),
                }
            }
            row.push(match ours {
                Some(o) => {
                    records.push(BenchRecord::new("fig11", &slug, format!("{name}.latency_ms"), o));
                    format!("{o:.0}ms")
                }
                None => "–".into(),
            });
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                &format!("Fig. 11: speedups over baselines on {}", device.name),
                &["Model", "MNN", "NCNN", "TFLite", "TVM", "DNNF", "Ours"],
                &rows,
            )
        );
    }
    println!("\n'–' = unsupported (missing operators or insufficient device memory).");

    // --- AFBC A/B on the Mali profile --------------------------------
    // Same models, same compiled kernels; only the texture-path
    // bandwidth moves. Conv-heavy models with memory-bound kernels gain
    // the most; launch-/compute-bound ones are diluted toward 1.0x —
    // but compression must never lose.
    let mali_on = DeviceConfig::mali_g710();
    let mali_off = mali_on.clone().with_afbc(false);
    let ab_models: &[&str] = if args.smoke {
        &["RegNet", "EfficientVit"]
    } else {
        &["RegNet", "EfficientVit", "ResNext", "Yolo-V8", "Swin"]
    };
    let mut best = ("", 0.0f64);
    let mut rows = Vec::new();
    for name in ab_models {
        let graph = by_name(name).expect("model").graph();
        let on = SmartMemPipeline::new().run(&graph, &mali_on).expect("mali compile").latency_ms;
        let off = SmartMemPipeline::new().run(&graph, &mali_off).expect("mali compile").latency_ms;
        let speedup = off / on;
        if speedup > best.1 {
            best = (name, speedup);
        }
        records.push(BenchRecord::new(
            "fig11",
            mali_on.slug(),
            format!("{name}.afbc_speedup"),
            speedup,
        ));
        rows.push(vec![
            name.to_string(),
            format!("{on:.1}"),
            format!("{off:.1}"),
            format!("{speedup:.3}x"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "AFBC A/B on Mali-G710 (same kernels, compression toggled)",
            &["Model", "AFBC on (ms)", "AFBC off (ms)", "speedup"],
            &rows,
        )
    );
    assert!(
        best.1 > 1.01,
        "AFBC-on must beat AFBC-off on at least one texture-bound model (best: {} at {:.3}x)",
        best.0,
        best.1
    );
    println!("\nAFBC A/B OK: best gain {:.3}x on {}", best.1, best.0);

    if let Some(path) = &args.json {
        write_json(path, &records).expect("write --json output");
        println!("wrote {} records to {}", records.len(), path.display());
    }
}
