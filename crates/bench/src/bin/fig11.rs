//! Regenerates **Fig. 11**: portability — speedups over each baseline
//! on the MediaTek Dimensity 700 (Mali-G57) and Snapdragon 835
//! (Adreno 540). Paper shape: similar speedups despite fewer resources;
//! some baselines fail on the 4 GB device (e.g. ConvNext under MNN/TVM).

use smartmem_baselines::all_mobile_frameworks;
use smartmem_bench::render_table;
use smartmem_models::by_name;
use smartmem_sim::DeviceConfig;

fn main() {
    let models =
        ["CSwin", "FlattenFormer", "SMTFormer", "Swin", "ViT", "ConvNext", "ResNext", "Yolo-V8"];
    for device in [DeviceConfig::dimensity_700(), DeviceConfig::snapdragon_835()] {
        let frameworks = all_mobile_frameworks();
        let mut rows = Vec::new();
        for name in models {
            let graph = by_name(name).expect("model").graph();
            let results: Vec<Option<f64>> = frameworks
                .iter()
                .map(|fw| fw.run(&graph, &device).ok().map(|r| r.latency_ms))
                .collect();
            let ours = results.last().copied().flatten();
            let mut row = vec![name.to_string()];
            for r in results.iter().take(frameworks.len() - 1) {
                match (r, ours) {
                    (Some(ms), Some(o)) => row.push(format!("{:.1}x", ms / o)),
                    _ => row.push("–".into()),
                }
            }
            row.push(match ours {
                Some(o) => format!("{o:.0}ms"),
                None => "–".into(),
            });
            rows.push(row);
        }
        print!(
            "{}",
            render_table(
                &format!("Fig. 11: speedups over baselines on {}", device.name),
                &["Model", "MNN", "NCNN", "TFLite", "TVM", "DNNF", "Ours"],
                &rows,
            )
        );
    }
    println!("\n'–' = unsupported (missing operators or insufficient device memory).");
}
