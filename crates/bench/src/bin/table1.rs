//! Regenerates **Table 1**: latency and layout-transformation breakdown
//! of an MNN-style framework across CNN-era and Transformer-era models
//! (the paper's motivation study: transformers spend 43–70% of their
//! time in layout transformations).

use smartmem_baselines::MnnFramework;
use smartmem_bench::render_table;
use smartmem_core::Framework;
use smartmem_models::table1_models;
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    let mnn = MnnFramework::new();
    let mut rows = Vec::new();
    for m in table1_models() {
        let graph = m.graph();
        let transforms = graph.layout_transform_count();
        match mnn.optimize(&graph, &device) {
            Ok(opt) => {
                let r = opt.estimate(&device);
                rows.push(vec![
                    m.name.to_string(),
                    format!("{:.1}", graph.total_macs() as f64 / 1e9),
                    transforms.to_string(),
                    format!("{:.0}", r.latency_ms),
                    format!("{:.1}", 100.0 * r.implicit_ms / r.latency_ms),
                    format!("{:.1}", 100.0 * r.explicit_ms / r.latency_ms),
                    format!("{:.1}", 100.0 * r.compute_ms / r.latency_ms),
                    format!("{:.0}", r.gmacs),
                ]);
            }
            Err(e) => rows.push(vec![m.name.to_string(), "-".into(), "-".into(), e.reason.clone()]),
        }
    }
    print!(
        "{}",
        render_table(
            "Table 1: latency and transformation breakdown (MNN-style framework, Snapdragon 8 Gen 2)",
            &["Model", "#MACs(G)", "#Transforms", "Lat(ms)", "Imp.%", "Exp.%", "Comp.%", "GMACS"],
            &rows,
        )
    );
    println!("\npaper shape: ConvNets spend <20% in transforms; Transformers 43-70%;\ntransformer GMACS ~an order of magnitude below ConvNets'.");
}
