//! Regenerates **Fig. 9**: how each optimization level changes memory
//! accesses and cache misses on CSwin and ResNext. Paper shape: LTE
//! mostly reduces *memory accesses* (data reorganization disappears);
//! Layout Selecting mostly reduces *cache misses* (better access
//! patterns).

use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemConfig, SmartMemPipeline};
use smartmem_models::{cswin, resnext50};
use smartmem_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    for (name, graph) in [("CSwin", cswin(1)), ("ResNext", resnext50(1))] {
        let levels = [
            ("DNNF", SmartMemConfig::dnnfusion_level()),
            ("+LTE", SmartMemConfig::lte_level()),
            ("+Layout", SmartMemConfig::layout_level()),
            ("+Other", SmartMemConfig::full()),
        ];
        let reports: Vec<_> = levels
            .iter()
            .map(|(label, cfg)| {
                let r = SmartMemPipeline::with_config(*cfg)
                    .optimize(&graph, &device)
                    .expect("optimize")
                    .estimate(&device);
                (*label, r)
            })
            .collect();
        let last = &reports.last().unwrap().1.mem;
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|(label, r)| {
                vec![
                    label.to_string(),
                    format!("{:.2}", r.mem.accesses() as f64 / last.accesses() as f64),
                    format!("{:.2}", r.mem.misses() as f64 / last.misses() as f64),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("Fig. 9: optimization breakdown on {name} (normalized to +Other)"),
                &["Level", "#Mem access (x)", "#Cache miss (x)"],
                &rows,
            )
        );
    }
}
