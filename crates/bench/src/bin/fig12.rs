//! Regenerates **Fig. 12**: roofline analysis of SmartMem on the
//! Snapdragon 8 Gen 2 for Swin, ViT, ResNext and SD-VAEDecoder.
//! Paper: 149/204/271/360 GMACS, i.e. 24–35% of the texture-memory
//! roof at each model's intensity.

use smartmem_bench::render_table;
use smartmem_core::{Framework, SmartMemPipeline};
use smartmem_models::by_name;
use smartmem_sim::{roofline_gmacs, DeviceConfig};

fn main() {
    let device = DeviceConfig::snapdragon_8gen2();
    println!(
        "device: peak {:.1} TMACs/s, global BW {:.0} GB/s, texture BW {:.0} GB/s",
        device.peak_tmacs, device.global_bw_gbps, device.texture_bw_gbps
    );
    let mut rows = Vec::new();
    for name in ["Swin", "ViT", "ResNext", "SD-VAEDecoder"] {
        let graph = by_name(name).expect("model").graph();
        let r = SmartMemPipeline::new().run(&graph, &device).expect("runs");
        let intensity = r.intensity();
        let tex_roof = roofline_gmacs(&device, intensity, true);
        let glob_roof = roofline_gmacs(&device, intensity, false);
        rows.push(vec![
            name.to_string(),
            format!("{intensity:.1}"),
            format!("{:.0}", r.gmacs),
            format!("{glob_roof:.0}"),
            format!("{tex_roof:.0}"),
            format!("{:.0}%", 100.0 * r.gmacs / tex_roof),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Fig. 12: roofline on Snapdragon 8 Gen 2",
            &[
                "Model",
                "MACs/byte",
                "Achieved GMACS",
                "Global roof",
                "Texture roof",
                "% of texture roof"
            ],
            &rows,
        )
    );
    println!(
        "\npaper: 149/204/271/360 GMACS at 24-35% of the texture roof, increasing with intensity."
    );
}
