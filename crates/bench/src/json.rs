//! Machine-readable benchmark output and the regression-gate codec.
//!
//! Every bench binary can emit its numbers as a flat JSON array of
//! records — one `(bench, device, metric, value)` quadruple per line —
//! via `--json <path>`. CI uploads these as artifacts (the perf
//! trajectory of the repo) and the `bench_diff` binary compares them
//! against the checked-in `bench/baseline.json` with a relative
//! tolerance, failing the job on regression.
//!
//! The container is offline (no serde), so the writer and the parser
//! here are hand-rolled for exactly this schema:
//!
//! ```json
//! [
//!   {"bench": "fig11", "device": "mali_g710", "metric": "Swin.latency_ms", "value": 41.45}
//! ]
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One benchmark measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Which bench produced it (`fig11`, `serve_bench`, `pass_timing`).
    pub bench: String,
    /// Device slug (`DeviceConfig::slug`), or `pool` for aggregates
    /// spanning every device.
    pub device: String,
    /// Metric name, dot-scoped by model/framework where applicable
    /// (`Swin.latency_ms`, `throughput_rps`).
    pub metric: String,
    /// The measurement.
    pub value: f64,
}

impl BenchRecord {
    /// Convenience constructor.
    pub fn new(
        bench: impl Into<String>,
        device: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        BenchRecord { bench: bench.into(), device: device.into(), metric: metric.into(), value }
    }

    /// The comparison key `bench/device/metric`.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.bench, self.device, self.metric)
    }

    /// Whether a larger value of this metric is an improvement (`true`
    /// for throughput/rate/speedup-flavoured metrics, and for
    /// `mean_batch` — fuller batches are the pull-mode win) or a
    /// regression (`false`: latencies, counts of bad events). The
    /// convention is part of the schema: name metrics accordingly.
    pub fn higher_is_better(&self) -> bool {
        ["throughput", "gmacs", "hit_rate", "speedup", "served", "mean_batch", "tokens_per_s"]
            .iter()
            .any(|tag| self.metric.contains(tag))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders records as a stable, diff-friendly JSON array (one record
/// per line, input order preserved).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"bench\": \"{}\", \"device\": \"{}\", \"metric\": \"{}\", \"value\": {}}}",
            escape(&r.bench),
            escape(&r.device),
            escape(&r.metric),
            fmt_value(r.value),
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Formats a finite value so it round-trips through the parser exactly.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; emit null and let the parser reject it
        // loudly rather than produce invalid JSON silently — callers
        // should filter non-finite measurements before rendering.
        "null".to_string()
    }
}

/// Writes records to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &Path, records: &[BenchRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(records))
}

/// Minimal JSON parser for the bench-record schema: an array of flat
/// objects whose values are strings or numbers. Unknown keys are
/// ignored; anything structurally different is an error.
pub fn parse_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'[')?;
    let mut records = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.expect(b']')?;
    } else {
        loop {
            records.push(p.object()?);
            p.skip_ws();
            match p.next()? {
                b',' => p.skip_ws(),
                b']' => break,
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        p.pos, c as char
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after the array at byte {}", p.pos));
    }
    Ok(records)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next()? {
            b if b == want => Ok(()),
            b => Err(format!(
                "expected '{}' at byte {}, got '{}'",
                want as char, self.pos, b as char
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next()? as char;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad \\u escape digit '{d}'"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("unsupported escape '\\{}'", c as char)),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn object(&mut self) -> Result<BenchRecord, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let (mut bench, mut device, mut metric, mut value) = (None, None, None, None);
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match (key.as_str(), self.peek()) {
                ("value", Some(b'n')) => {
                    return Err("null value (non-finite measurement?) in record".into());
                }
                ("value", _) => value = Some(self.number()?),
                ("bench", _) => bench = Some(self.string()?),
                ("device", _) => device = Some(self.string()?),
                ("metric", _) => metric = Some(self.string()?),
                (_, Some(b'"')) => {
                    self.string()?;
                }
                _ => {
                    self.number()?;
                }
            }
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b'}' => break,
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
        Ok(BenchRecord {
            bench: bench.ok_or("record missing \"bench\"")?,
            device: device.ok_or("record missing \"device\"")?,
            metric: metric.ok_or("record missing \"metric\"")?,
            value: value.ok_or("record missing \"value\"")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let records = vec![
            BenchRecord::new("fig11", "mali_g710", "Swin.latency_ms", 41.45),
            BenchRecord::new("serve_bench", "pool", "throughput_rps", 1234.0),
            BenchRecord::new("fig11", "server_npu", "ViT.speedup_vs_mnn", 3.5e-2),
        ];
        let text = render_json(&records);
        assert_eq!(parse_json(&text).unwrap(), records);
    }

    #[test]
    fn empty_array_roundtrips() {
        assert_eq!(parse_json(&render_json(&[])).unwrap(), vec![]);
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let records = vec![BenchRecord::new("a\"b\\c", "d", "e\nf", -0.5)];
        assert_eq!(parse_json(&render_json(&records)).unwrap(), records);
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let text = r#"[{"bench": "b", "note": "extra", "device": "d", "metric": "m", "count": 3, "value": 1.5}]"#;
        assert_eq!(parse_json(text).unwrap(), vec![BenchRecord::new("b", "d", "m", 1.5)]);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[{]",
            "[] trailing",
            r#"[{"bench": "b"}]"#,
            r#"[{"bench": "b", "device": "d", "metric": "m", "value": null}]"#,
            r#"[{"bench": "b", "device": "d", "metric": "m", "value": 1}] trailing"#,
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn direction_convention() {
        assert!(BenchRecord::new("b", "d", "throughput_rps", 1.0).higher_is_better());
        assert!(BenchRecord::new("b", "d", "cache_hit_rate", 1.0).higher_is_better());
        assert!(BenchRecord::new("b", "d", "Swin.speedup_vs_mnn", 1.0).higher_is_better());
        assert!(BenchRecord::new("b", "d", "mean_batch", 1.0).higher_is_better());
        assert!(BenchRecord::new("b", "d", "decode.tokens_per_s", 1.0).higher_is_better());
        assert!(!BenchRecord::new("b", "d", "decode.p99_step_ms", 1.0).higher_is_better());
        assert!(!BenchRecord::new("b", "d", "Swin.latency_ms", 1.0).higher_is_better());
        assert!(!BenchRecord::new("b", "d", "p99_e2e_ms", 1.0).higher_is_better());
        assert!(!BenchRecord::new("b", "d", "batches", 1.0).higher_is_better());
    }
}
