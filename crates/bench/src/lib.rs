//! # smartmem-bench
//!
//! The harness that regenerates every table and figure of the SmartMem
//! paper's evaluation (see `DESIGN.md` for the experiment index). Each
//! table/figure has a dedicated binary (`cargo run -p smartmem-bench
//! --release --bin table8`), all built on the helpers here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use smartmem_core::{CompileOutput, Framework, ModelReport, OptStats, Unsupported};
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;

/// Renders an ASCII table with right-aligned columns.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Result of running one framework on one model.
pub type RunResult = Result<ModelReport, Unsupported>;

/// Runs `framework` on `graph`, returning the report or the
/// unsupported/OOM error.
pub fn run_one(framework: &dyn Framework, graph: &Graph, device: &DeviceConfig) -> RunResult {
    framework.run(graph, device)
}

/// Formats a latency cell ("–" for unsupported models, as in the
/// paper's tables).
pub fn latency_cell(r: &RunResult) -> String {
    match r {
        Ok(rep) => format!("{:.1}", rep.latency_ms),
        Err(_) => "–".to_string(),
    }
}

/// Formats a speed (GMACS) cell.
pub fn speed_cell(r: &RunResult) -> String {
    match r {
        Ok(rep) => format!("{:.0}", rep.gmacs),
        Err(_) => "–".to_string(),
    }
}

/// Geometric mean of a list of ratios.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Renders the per-pass wall-clock timing and [`OptStats`] deltas of a
/// pass-manager compilation as an ASCII table.
pub fn render_pass_timings(framework: &str, model: &str, output: &CompileOutput) -> String {
    let mut rows = Vec::new();
    let mut prev =
        OptStats { source_ops: output.optimized.stats.source_ops, ..OptStats::default() };
    for t in &output.timings {
        let d_kernels = t.stats.kernel_count as i64 - prev.kernel_count as i64;
        let d_elim = t.stats.eliminated_ops as i64 - prev.eliminated_ops as i64;
        let d_implicit = t.stats.implicit_inserted as i64 - prev.implicit_inserted as i64;
        let d_sl = t.stats.streamline_removed_ops as i64 - prev.streamline_removed_ops as i64;
        let d_sl_t = t.stats.streamline_transposes_removed as i64
            - prev.streamline_transposes_removed as i64;
        rows.push(vec![
            t.pass.clone(),
            format!("{:.1}", t.duration.as_secs_f64() * 1e6),
            format!("{:+}", d_kernels),
            format!("{:+}", d_elim),
            format!("{:+}", d_implicit),
            format!("{:+}", d_sl),
            format!("{:+}", d_sl_t),
        ]);
        prev = t.stats;
    }
    rows.push(vec![
        "total".into(),
        format!("{:.1}", output.total_duration().as_secs_f64() * 1e6),
        format!("{}", output.optimized.stats.kernel_count),
        format!("{}", output.optimized.stats.eliminated_ops),
        format!("{}", output.optimized.stats.implicit_inserted),
        format!("{}", output.optimized.stats.streamline_removed_ops),
        format!("{}", output.optimized.stats.streamline_transposes_removed),
    ]);
    render_table(
        &format!("{framework} on {model}: per-pass timing"),
        &["pass", "us", "Δkernels", "Δeliminated", "Δimplicit", "Δstreamlined", "Δtransposes"],
        &rows,
    )
}

/// Parses a command line that accepts only `--cache-dir DIR` (the
/// shared flag of the table/figure binaries; `serve_bench` has its own
/// richer parser), panicking on anything else.
///
/// # Panics
///
/// Panics on an unknown flag or a missing value — the right behaviour
/// for a bench binary, where a typo should fail loudly.
pub fn parse_cache_dir_arg() -> Option<std::path::PathBuf> {
    let args = parse_bench_args();
    assert!(
        args.json.is_none() && !args.smoke && args.import.is_none(),
        "this binary only takes --cache-dir DIR"
    );
    args.cache_dir
}

/// The shared command line of the table/figure binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// `--cache-dir DIR`: persistent compilation-artifact cache.
    pub cache_dir: Option<std::path::PathBuf>,
    /// `--json PATH`: write the bench's numbers as a flat JSON record
    /// array (see [`json`]) for CI artifacts and the `bench_diff` gate.
    pub json: Option<std::path::PathBuf>,
    /// `--smoke`: CI-sized subset.
    pub smoke: bool,
    /// `--import PATH`: run on a graph imported from a JSON file
    /// (`smartmem_ir::import`) instead of / in addition to the built-in
    /// zoo. Only `pass_timing` honours it today.
    pub import: Option<std::path::PathBuf>,
}

/// Parses `--cache-dir DIR`, `--json PATH`, `--import PATH` and `--smoke`.
///
/// # Panics
///
/// Panics on an unknown flag or a missing value.
pub fn parse_bench_args() -> BenchArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = argv.iter();
    let mut out = BenchArgs::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cache-dir" => {
                out.cache_dir = Some(args.next().expect("--cache-dir needs a value").into());
            }
            "--json" => {
                out.json = Some(args.next().expect("--json needs a value").into());
            }
            "--smoke" => out.smoke = true,
            "--import" => {
                out.import = Some(args.next().expect("--import needs a value").into());
            }
            other => {
                panic!(
                    "unknown flag {other} (takes --cache-dir DIR, --json PATH, --import PATH, --smoke)"
                )
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["model", "ms"],
            &[vec!["Swin".into(), "30.6".into()], vec!["ViT".into(), "103".into()]],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("Swin"));
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geo_mean(&[]).is_nan());
    }
}
