//! End-to-end tests of the serving runtime: compile-on-first-use with
//! cache-warm steady state, concurrent submission, FIFO completion
//! within a key, idle-deadline flushing of stragglers, scheduler
//! placement across the device pool, priority-class accounting,
//! request cancellation, and pull-based batch growth under backlog.

use smartmem_serve::{CutPolicy, InferenceRequest, ModelSpec, Priority, ServeConfig, Server};
use smartmem_sim::DeviceConfig;
use std::time::Duration;

fn models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::new("ConvNext", smartmem_models::convnext(1)),
        ModelSpec::new("RegNet", smartmem_models::regnet(1)),
    ]
}

fn devices() -> Vec<DeviceConfig> {
    vec![DeviceConfig::snapdragon_8gen2(), DeviceConfig::snapdragon_835(), DeviceConfig::apple_m1()]
}

#[test]
fn steady_state_is_cache_warm() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let n = 60;
    let tickets: Vec<_> =
        (0..n).map(|i| server.submit(InferenceRequest::new(i % 2)).expect("submit")).collect();
    for t in tickets {
        let r = t.wait();
        assert!(r.error.is_none(), "request failed: {:?}", r.error);
        assert!(r.batch_size >= 1);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, n as u64);
    assert_eq!(stats.failed, 0);
    // At most one compilation per touched (model, device) pair; with
    // 2 models x 3 devices that bounds misses at 6 of 60 requests.
    assert!(stats.cache.misses <= 6, "misses {}", stats.cache.misses);
    assert!(stats.cache_hit_rate() >= 0.9, "hit rate {}", stats.cache_hit_rate());
    let hist_total: u64 = stats.batch_histogram.iter().sum();
    assert_eq!(hist_total, stats.batches);
}

#[test]
fn concurrent_submitters_all_complete() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let per_thread = 25;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    let tickets: Vec<_> = (0..per_thread)
                        .map(|i| server.submit(InferenceRequest::new((t + i) % 2)).expect("submit"))
                        .collect();
                    tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for r in h.join().expect("submitter panicked") {
                assert!(r.error.is_none());
            }
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4 * per_thread as u64);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn fifo_completion_within_pinned_key() {
    // Pin one model to one device: completions must come back in
    // submission order regardless of how the batches were cut.
    let server = Server::start(models(), devices(), ServeConfig::default());
    let tickets: Vec<_> = (0..30)
        .map(|_| server.submit(InferenceRequest::new(0).on_device(1)).expect("submit"))
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    for pair in responses.windows(2) {
        assert!(pair[0].request_id < pair[1].request_id);
        assert!(
            pair[0].completion_seq < pair[1].completion_seq,
            "completions reordered within (model 0, device 1)"
        );
    }
    assert!(responses.iter().all(|r| r.device.contains("835")));
    server.shutdown();
}

#[test]
fn deadline_flushes_a_lone_request() {
    // A single request never reaches max_batch; only the deadline can
    // flush it.
    let config = ServeConfig { max_batch: 64, ..ServeConfig::default() };
    let server = Server::start(models(), devices(), config);
    let ticket = server.submit(InferenceRequest::new(0)).expect("submit");
    let r = ticket.wait();
    assert!(r.error.is_none());
    assert_eq!(r.batch_size, 1);
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.batches, 1);
}

#[test]
fn scheduler_spreads_load_across_devices() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let tickets: Vec<_> =
        (0..90).map(|_| server.submit(InferenceRequest::new(0)).expect("submit")).collect();
    for t in tickets {
        assert!(t.wait().error.is_none());
    }
    let stats = server.shutdown();
    let used = stats.per_device_batches.iter().filter(|&&b| b > 0).count();
    assert!(used >= 2, "expected load-aware placement to use several devices, got {used}");
}

#[test]
fn panicking_model_fails_its_requests_without_killing_the_server() {
    use smartmem_core::{CompileCtx, Framework, Pass, PassManager, Unsupported};

    // Panics while compiling the graph named "bad"; compiles everything
    // else into an (empty) optimized graph.
    struct PanicIfBad;
    impl Pass for PanicIfBad {
        fn name(&self) -> &'static str {
            "panic-if-bad"
        }
        fn run(&self, ctx: &mut CompileCtx) -> Result<(), Unsupported> {
            assert!(ctx.graph.name() != "bad", "injected compiler bug");
            Ok(())
        }
    }
    struct Panicky;
    impl Framework for Panicky {
        fn name(&self) -> &str {
            "Panicky"
        }
        fn passes(&self) -> PassManager {
            PassManager::new("Panicky").then(PanicIfBad)
        }
    }

    let mk = |name: &str| {
        let mut b = smartmem_ir::GraphBuilder::new(name.to_string());
        let x = b.input("x", &[1, 8, 16], smartmem_ir::DType::F16);
        let w = b.weight("w", &[16, 16], smartmem_ir::DType::F16);
        let mm = b.matmul(x, w);
        b.output(mm);
        ModelSpec::new(name, b.finish())
    };
    let server = Server::start_with_framework(
        vec![mk("good"), mk("bad")],
        devices(),
        ServeConfig::default(),
        Box::new(Panicky),
    );
    let bad: Vec<_> =
        (0..6).map(|_| server.submit(InferenceRequest::new(1)).expect("submit")).collect();
    for t in bad {
        let r = t.wait();
        assert!(r.error.is_some(), "panicked compile must surface as an error response");
    }
    // The workers survive: good-model requests still serve afterwards,
    // including on whatever device handled the panicking batches.
    let good: Vec<_> = (0..server.pool().len())
        .map(|d| server.submit(InferenceRequest::new(0).on_device(d)).expect("submit"))
        .collect();
    for t in good {
        assert!(t.wait().error.is_none());
    }
    let stats = server.shutdown();
    assert_eq!(stats.failed, 6);
    assert_eq!(stats.completed, server_pool_len() as u64, "failed requests are not completed");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.cancelled,
        "every accepted request resolves into exactly one terminal counter"
    );
}

fn server_pool_len() -> usize {
    devices().len()
}

#[test]
fn restarted_server_is_cache_hot_from_request_one() {
    // A unique scratch cache dir (no tempfile crate in the container).
    let dir = std::env::temp_dir().join(format!("smartmem-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() };

    // First server: every (model, device) pair compiles cold and is
    // written through to disk.
    let cold = Server::start(models(), devices(), config.clone());
    let tickets: Vec<_> = (0..models().len())
        .flat_map(|m| (0..cold.pool().len()).map(move |d| InferenceRequest::new(m).on_device(d)))
        .map(|req| cold.submit(req).expect("submit"))
        .collect();
    for t in tickets {
        assert!(t.wait().error.is_none());
    }
    let cold_stats = cold.shutdown();
    assert_eq!(cold_stats.cache.misses as usize, models().len() * devices().len());

    // "Restarted" server over the same directory: the very first
    // request of every pair decodes a persisted artifact — zero cold
    // compiles, 100% hit rate from request one.
    let warm = Server::start(models(), devices(), config);
    let tickets: Vec<_> = (0..models().len())
        .flat_map(|m| (0..warm.pool().len()).map(move |d| InferenceRequest::new(m).on_device(d)))
        .map(|req| warm.submit(req).expect("submit"))
        .collect();
    for t in tickets {
        let r = t.wait();
        assert!(r.error.is_none());
        assert!(r.compile_cache_hit, "warm-start request must be a cache hit");
    }
    let warm_stats = warm.shutdown();
    assert_eq!(warm_stats.cache.misses, 0, "warm start must not cold-compile");
    assert_eq!(warm_stats.cache.disk_hits as usize, models().len() * devices().len());
    assert!((warm_stats.cache_hit_rate() - 1.0).abs() < f64::EPSILON);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_requests_resolve_without_executing() {
    // A long idle delay keeps requests queued until we decide their
    // fate, so the eager-cancel path is deterministic.
    let config = ServeConfig { max_delay: Duration::from_millis(250), ..ServeConfig::default() };
    let server = Server::start(models(), vec![DeviceConfig::snapdragon_8gen2()], config);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            let class = if i % 2 == 0 { Priority::Interactive } else { Priority::BestEffort };
            server.submit(InferenceRequest::new(0).with_priority(class)).expect("submit")
        })
        .collect();
    // Cancel the two BestEffort requests while they are still queued.
    let handles: Vec<_> = tickets.iter().map(|t| t.cancel_handle()).collect();
    assert!(handles[1].cancel(), "queued request must be cancellable");
    assert!(handles[3].cancel());
    assert!(!handles[1].cancel(), "cancel is idempotent but only wins once");
    assert!(handles[1].is_cancelled());
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait();
        assert_eq!(r.cancelled, i % 2 == 1, "request {i}");
        if r.cancelled {
            assert_eq!(r.batch_size, 0, "cancelled requests never ride a batch");
            assert!(r.error.is_none());
        } else {
            assert!(r.error.is_none());
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.completed, 2, "completed excludes cancelled requests");
    assert_eq!(stats.class(Priority::BestEffort).cancelled, 2);
    assert_eq!(stats.class(Priority::Interactive).completed, 2);
    assert_eq!(stats.class(Priority::Interactive).cancelled, 0);
}

#[test]
fn cancel_after_completion_is_refused() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let ticket = server.submit(InferenceRequest::new(0)).expect("submit");
    let handle = ticket.cancel_handle();
    let r = ticket.wait();
    assert!(!r.cancelled);
    assert!(!handle.cancel(), "a served request can no longer be cancelled");
    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 0);
    assert_eq!(stats.completed, 1);
}

#[test]
fn priority_classes_are_accounted_separately() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let mix = [(Priority::Interactive, 12u64), (Priority::Batch, 7), (Priority::BestEffort, 3)];
    let tickets: Vec<_> = mix
        .iter()
        .flat_map(|&(class, n)| (0..n).map(move |_| InferenceRequest::new(0).with_priority(class)))
        .map(|req| server.submit(req).expect("submit"))
        .collect();
    for t in tickets {
        let r = t.wait();
        assert!(r.error.is_none());
    }
    let stats = server.shutdown();
    for (class, n) in mix {
        assert_eq!(stats.class(class).submitted, n, "{class} submitted");
        assert_eq!(stats.class(class).completed, n, "{class} completed");
    }
    assert_eq!(stats.completed, 22);
}

#[test]
fn slo_violations_are_counted_per_class() {
    // A zero Interactive budget makes every completed Interactive
    // request a violation; BestEffort keeps a generous budget.
    let mut config = ServeConfig::default();
    config.deadlines.interactive = Duration::ZERO;
    let server = Server::start(models(), devices(), config);
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let class = if i < 3 { Priority::Interactive } else { Priority::BestEffort };
            server.submit(InferenceRequest::new(0).with_priority(class)).expect("submit")
        })
        .collect();
    for t in tickets {
        assert!(t.wait().error.is_none());
    }
    let stats = server.shutdown();
    assert_eq!(stats.class(Priority::Interactive).slo_violations, 3);
    assert_eq!(stats.class(Priority::BestEffort).slo_violations, 0);
}

#[test]
fn try_submit_sheds_load_beyond_queue_capacity() {
    // Two queue slots, one idle-latency window long enough that nothing
    // is cut while we overfill.
    let config = ServeConfig {
        queue_capacity: 2,
        max_delay: Duration::from_millis(250),
        ..ServeConfig::default()
    };
    let server = Server::start(models(), vec![DeviceConfig::snapdragon_8gen2()], config);
    let t1 = server.try_submit(InferenceRequest::new(0)).expect("slot 1");
    let t2 = server.try_submit(InferenceRequest::new(0)).expect("slot 2");
    match server.try_submit(InferenceRequest::new(0)) {
        Err(err) => assert_eq!(err, smartmem_serve::SubmitError::QueueFull),
        Ok(_) => panic!("third submission must be shed"),
    }
    assert!(t1.wait().error.is_none());
    assert!(t2.wait().error.is_none());
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 2);
}

/// The tentpole behaviour: on a backlogged device, pull-based cutting
/// grows batches toward `max_batch`, while the fixed-deadline baseline
/// keeps cutting whatever arrived inside its window — at identical
/// offered load.
#[test]
fn pull_cutting_grows_batches_on_a_backlogged_device() {
    let mean_batch = |policy: CutPolicy| -> f64 {
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            // ConvNext is ~19 ms simulated on the 8 Gen 2; 0.15 makes a
            // full batch ~20 ms of wall time against ~0.5 ms arrivals,
            // so the device is deeply backlogged in both modes.
            exec_time_scale: 0.15,
            cut_policy: policy,
            ..ServeConfig::default()
        };
        let server = Server::start(
            vec![ModelSpec::new("ConvNext", smartmem_models::convnext(1))],
            vec![DeviceConfig::snapdragon_8gen2()],
            config,
        );
        // Warm the compile cache so the trace measures batching, not
        // the one-off cold compile.
        assert!(server.submit(InferenceRequest::new(0)).unwrap().wait().error.is_none());
        let tickets: Vec<_> = (0..120)
            .map(|_| {
                std::thread::sleep(Duration::from_micros(500));
                server.submit(InferenceRequest::new(0)).expect("submit")
            })
            .collect();
        for t in tickets {
            assert!(t.wait().error.is_none());
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 121);
        // Drop the warmup singleton from the mean.
        let mut hist = stats.batch_histogram.clone();
        hist[0] = hist[0].saturating_sub(1);
        smartmem_serve::histogram_mean(&hist)
    };
    let pull = mean_batch(CutPolicy::Pull);
    let fixed = mean_batch(CutPolicy::Deadline);
    assert!(
        pull > fixed + 0.75,
        "pull-based cutting must grow batches under backlog: pull {pull:.2} vs fixed {fixed:.2}"
    );
}

#[test]
fn unknown_ids_are_rejected_cleanly() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    assert!(server.submit(InferenceRequest::new(99)).is_err());
    assert!(server.submit(InferenceRequest::new(0).on_device(99)).is_err());
    assert!(server.model_id("ConvNext").is_some());
    assert!(server.model_id("nope").is_none());
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 0);
}

#[test]
fn broken_cache_dir_falls_back_and_is_observable() {
    // Point cache_dir at a regular *file*: the directory can't be
    // created, so the server must fall back to an in-memory session —
    // and say so through the fallback counter and a warning event.
    let path = std::env::temp_dir().join(format!("smartmem-serve-bad-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::write(&path, b"not a directory").expect("scratch file");
    let config = ServeConfig {
        cache_dir: Some(path.clone()),
        telemetry: smartmem_serve::TelemetryConfig::tracing(),
        ..ServeConfig::default()
    };
    let server = Server::start(models(), devices(), config);
    let telemetry = server.telemetry();
    let r = server.submit(InferenceRequest::new(0)).expect("submit").wait();
    assert!(r.error.is_none(), "the fallback session must still serve: {:?}", r.error);
    let stats = server.shutdown();
    assert_eq!(stats.cache_dir_fallbacks, 1, "the fallback must be counted");
    assert_eq!(stats.completed, 1);
    let trace = telemetry.tracer.drain();
    let warned =
        trace.spans.iter().any(|s| s.cat == "warn" && s.name.starts_with("cache_dir_fallback"));
    assert!(warned, "the fallback must record a warning event; got {:?}", trace.spans);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn healthy_server_reports_no_cache_dir_fallback() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    server.submit(InferenceRequest::new(0)).expect("submit").wait();
    assert_eq!(server.shutdown().cache_dir_fallbacks, 0);
}

#[test]
fn sampled_requests_record_end_to_end_spans() {
    use smartmem_telemetry::{parse_chrome, render_chrome, summarize, SpanKind, TraceId};

    let config = ServeConfig {
        telemetry: smartmem_serve::TelemetryConfig::tracing(),
        ..ServeConfig::default()
    };
    let server = Server::start(models(), devices(), config);
    let telemetry = server.telemetry();
    let n = 12;
    let tickets: Vec<_> =
        (0..n).map(|i| server.submit(InferenceRequest::new(i % 2)).expect("submit")).collect();
    for t in tickets {
        assert!(t.wait().error.is_none());
    }
    server.shutdown();

    let trace = telemetry.tracer.drain();
    assert_eq!(trace.dropped, 0);
    // Every request was sampled (1-in-1): each must tell its whole
    // story — queue, compile, execute, and the request envelope — under
    // one trace id, with consistent nesting.
    for id in 1..=n as u64 {
        let spans: Vec<_> = trace.spans.iter().filter(|s| s.trace == TraceId(id)).collect();
        for phase in ["queue", "compile", "execute", "request"] {
            assert!(
                spans.iter().any(|s| s.name == phase && s.kind == SpanKind::Complete),
                "trace {id} is missing its {phase} span: {spans:?}"
            );
        }
        let request = spans.iter().find(|s| s.name == "request").expect("request span");
        for s in &spans {
            assert!(s.start_ns >= request.start_ns, "span {} precedes its request", s.name);
            assert!(
                s.start_ns + s.dur_ns <= request.start_ns + request.dur_ns,
                "span {} outlives its request",
                s.name
            );
        }
    }
    // The queue-wait metrics were recorded per class alongside.
    let snapshot = telemetry.registry.snapshot();
    let total_waits: u64 = Priority::ALL
        .iter()
        .filter_map(|c| snapshot.get(&format!("serve.queue_wait_ns.{}", c.name())))
        .map(|v| match v {
            smartmem_telemetry::MetricValue::Histogram(h) => h.count,
            _ => 0,
        })
        .sum();
    assert_eq!(total_waits, n as u64);
    // And the trace round-trips through the Chrome exporter into the
    // same per-request summary the CI smoke check relies on.
    let back = parse_chrome(&render_chrome(&trace)).expect("rendered trace parses");
    let summary = summarize(&back);
    assert_eq!(summary.complete_requests(), n as u64);
    assert!(summary.queue_ns > 0 || summary.execute_ns > 0);
}

#[test]
fn disabled_telemetry_records_no_spans_but_counts_metrics() {
    let server = Server::start(models(), devices(), ServeConfig::default());
    let telemetry = server.telemetry();
    assert!(!telemetry.tracer.is_enabled());
    let tickets: Vec<_> =
        (0..6).map(|i| server.submit(InferenceRequest::new(i % 2)).expect("submit")).collect();
    for t in tickets {
        assert!(t.wait().error.is_none());
    }
    server.shutdown();
    assert!(telemetry.tracer.drain().spans.is_empty(), "disabled tracer must record nothing");
    let flat = smartmem_telemetry::flatten(&telemetry.registry.snapshot());
    let waits: f64 = flat
        .iter()
        .filter(|(n, _)| n.starts_with("serve.queue_wait_ns.") && n.ends_with(".count"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(waits, 6.0, "queue-wait metrics stay on with tracing off");
}
