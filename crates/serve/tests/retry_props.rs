//! Property tests of the retry state machine and admission control
//! (vendored proptest shim), at both the pure-policy level and through
//! a real faulted server:
//!
//! * the retry budget is never exceeded, whatever the failure pattern;
//! * backoff is monotone nondecreasing and capped;
//! * a re-placed request's scheduler charge is refunded exactly once —
//!   after every ticket resolves, every device account drains to zero
//!   even when each request bounced through the retry path;
//! * re-enqueued (backoff-dated) requests stay FIFO within their
//!   (model, device) key;
//! * admission shedding is monotone: it never sheds a class unless it
//!   would also shed every lower class at the same slack, and it never
//!   sheds `Interactive` at any slack.

use proptest::prelude::*;
use smartmem_ir::{DType, GraphBuilder};
use smartmem_serve::{
    AdmissionControl, BatchItem, BatchKey, Batcher, InferenceRequest, ModelSpec, Priority,
    RetryDecision, RetryPolicy, ServeConfig, Server,
};
use smartmem_sim::{DeviceConfig, FaultPlan, FaultRates};
use std::sync::Arc;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// However many failures arrive, at most `budget` of them turn
    /// into retries, and the first `Fail` is final: every later
    /// attempt count also fails.
    #[test]
    fn retry_budget_is_never_exceeded(budget in 0u32..6, failures in 1u32..40) {
        let policy = RetryPolicy { budget, ..RetryPolicy::default() };
        let mut retries = 0u32;
        let mut failed = false;
        for attempt in 1..=failures {
            match policy.decide(attempt) {
                RetryDecision::Retry { .. } => {
                    prop_assert!(!failed, "Retry after Fail: the decision must be final");
                    retries += 1;
                }
                RetryDecision::Fail => failed = true,
            }
        }
        prop_assert!(retries <= budget);
        prop_assert_eq!(retries, budget.min(failures));
    }

    /// Backoff never shrinks as attempts grow, and never exceeds the
    /// cap — even at attempt counts that would overflow a naive shift.
    #[test]
    fn backoff_is_monotone_and_capped(base_us in 1u64..2000, cap_ms in 1u64..20) {
        let policy = RetryPolicy {
            budget: u32::MAX,
            backoff_base: Duration::from_micros(base_us),
            max_backoff: Duration::from_millis(cap_ms),
        };
        let mut prev = Duration::ZERO;
        for attempt in [1, 2, 3, 5, 10, 31, 32, 33, 64, 1000] {
            let b = policy.backoff_for(attempt);
            prop_assert!(b >= prev, "backoff shrank at attempt {}", attempt);
            prop_assert!(b <= policy.max_backoff);
            prev = b;
        }
    }

    /// Shedding is monotone in class (BestEffort sheds whenever Batch
    /// does) and in slack (shedding at some slack implies shedding at
    /// any worse slack); Interactive is never shed while lower classes
    /// still queue — at no slack value whatsoever.
    #[test]
    fn admission_sheds_lower_classes_first(slack in -400_000_000i64..400_000_000,
                                           grace_ms in 0u64..100) {
        let ac = AdmissionControl {
            enabled: true,
            batch_grace: Duration::from_millis(grace_ms),
        };
        prop_assert!(!ac.should_shed(Priority::Interactive, slack));
        if ac.should_shed(Priority::Batch, slack) {
            prop_assert!(
                ac.should_shed(Priority::BestEffort, slack),
                "Batch shed while BestEffort admitted at slack {}", slack
            );
        }
        for class in Priority::ALL {
            if ac.should_shed(class, slack) {
                prop_assert!(ac.should_shed(class, slack - 1), "shedding is monotone in slack");
            }
        }
        let off = AdmissionControl::disabled();
        for class in Priority::ALL {
            prop_assert!(!off.should_shed(class, slack));
        }
    }

    /// Through a real server with every first attempt cursed: each
    /// request fails once, is re-placed, and completes on the retry.
    /// The scheduler accounts must drain to zero — each bounce
    /// refunds the stale charge exactly once — and `recovered` counts
    /// every cursed request exactly once.
    #[test]
    fn recharge_is_refunded_exactly_once(n in 1u64..12, seed in 0u64..64) {
        let rates = FaultRates { exec_error: 1.0, ..FaultRates::uniform(0.0) };
        let config = ServeConfig {
            fault_plan: Some(Arc::new(FaultPlan::new(seed, rates))),
            ..ServeConfig::default()
        };
        let server = Server::start(vec![toy_model()], devices(), config);
        let tickets: Vec<_> = (0..n)
            .map(|_| server.submit(InferenceRequest::new(0)).expect("submit"))
            .collect();
        for t in tickets {
            let r = t.wait();
            prop_assert!(r.error.is_none(), "cursed request must recover: {:?}", r.error);
            prop_assert_eq!(r.retries, 1, "exactly one failed attempt");
        }
        for d in 0..server.pool().len() {
            prop_assert_eq!(
                server.pool().load_ns(d), 0,
                "device {} account must drain to zero after all tickets resolve", d
            );
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.submitted, n);
        prop_assert_eq!(stats.completed, n);
        prop_assert_eq!(stats.recovered, n);
        prop_assert_eq!(stats.retried, n);
        prop_assert_eq!(stats.retry_exhausted, 0);
        prop_assert_eq!(stats.failed, 0);
    }

    /// With a zero retry budget the same curse goes terminal instead:
    /// taxonomy still conserves and the accounts still drain.
    #[test]
    fn exhausted_budget_is_terminal_and_conserves(n in 1u64..10, seed in 0u64..64) {
        let rates = FaultRates { exec_error: 1.0, ..FaultRates::uniform(0.0) };
        let config = ServeConfig {
            fault_plan: Some(Arc::new(FaultPlan::new(seed, rates))),
            retry: RetryPolicy { budget: 0, ..RetryPolicy::default() },
            ..ServeConfig::default()
        };
        let server = Server::start(vec![toy_model()], devices(), config);
        let tickets: Vec<_> = (0..n)
            .map(|_| server.submit(InferenceRequest::new(0)).expect("submit"))
            .collect();
        for t in tickets {
            let r = t.wait();
            prop_assert!(r.error.is_some(), "no budget: the curse is terminal");
        }
        for d in 0..server.pool().len() {
            prop_assert_eq!(server.pool().load_ns(d), 0);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.failed, n);
        prop_assert_eq!(stats.retry_exhausted, n);
        prop_assert_eq!(stats.completed, 0);
        prop_assert_eq!(stats.submitted, stats.completed + stats.failed + stats.cancelled);
    }

    /// Backoff-dated re-enqueues keep FIFO within their key: items
    /// pushed with future `enqueued` timestamps (the retry path) are
    /// still cut in push order once due.
    #[test]
    fn aged_reenqueue_stays_fifo_within_key(ids in prop::collection::vec(0u8..255, 2..24),
                                            backoff_us in 0u64..2000) {
        let mut b: Batcher<Item> = Batcher::new(4, Duration::from_micros(100));
        let t0 = Instant::now();
        let key = BatchKey { model: 0, device: 0 };
        let backoff = Duration::from_micros(backoff_us);
        for (i, &_raw) in ids.iter().enumerate() {
            // Interleave fresh pushes and retry-style future-dated
            // pushes; FIFO within the key must hold regardless.
            let when = if i % 2 == 0 { t0 } else { t0 + backoff };
            b.push(key, Item { id: i as u64, deadline: t0 + Duration::from_secs(1) }, when)
                .expect("push to a live device");
        }
        // Far enough in the future that every item is due.
        let later = t0 + backoff + Duration::from_millis(10);
        let mut seen = Vec::new();
        while let Some(cut) = b.pull(0, later) {
            seen.extend(cut.batch.items.iter().map(|i| i.id));
        }
        let expected: Vec<u64> = (0..ids.len() as u64).collect();
        prop_assert_eq!(seen, expected, "cut order must match push order within the key");
    }
}

#[derive(Clone, Debug)]
struct Item {
    id: u64,
    deadline: Instant,
}

impl BatchItem for Item {
    fn deadline(&self) -> Instant {
        self.deadline
    }
    fn est_ns(&self) -> f64 {
        0.0
    }
    fn claim(&self) -> bool {
        true
    }
}

fn toy_model() -> ModelSpec {
    let mut b = GraphBuilder::new("retry-toy");
    let x = b.input("x", &[1, 16, 32], DType::F16);
    let w = b.weight("w", &[32, 32], DType::F16);
    let mm = b.matmul(x, w);
    b.output(mm);
    ModelSpec::new("retry-toy", b.finish())
}

fn devices() -> Vec<DeviceConfig> {
    vec![DeviceConfig::snapdragon_8gen2(), DeviceConfig::apple_m1()]
}
