//! Property tests of the pull-mode batcher invariants (vendored
//! proptest shim): whatever interleaving of pushes, pulls, clock
//! advances and cancellations arrives, every request ends in exactly
//! one of {executed, cancelled}, no batch exceeds `max_batch` or mixes
//! keys, FIFO order holds within every (model, device) key, a request
//! whose cancellation won is never handed to a worker (including when
//! the cancel races a concurrent batch cut), and starvation aging
//! bounds how long a key can be passed over.

use proptest::prelude::*;
use smartmem_serve::{BatchItem, BatchKey, Batcher, CutPolicy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DELAY_MS: u64 = 4;

// The server's cancel-vs-cut adjudication states, reproduced at the
// pure level: exactly one of claim (0 → 1) and cancel (0 → 2) wins.
const QUEUED: u8 = 0;
const CLAIMED: u8 = 1;
const CANCELLED: u8 = 2;

#[derive(Clone, Debug)]
struct Item {
    id: u64,
    deadline: Instant,
    est_ns: f64,
    cell: Arc<AtomicU8>,
}

impl BatchItem for Item {
    fn deadline(&self) -> Instant {
        self.deadline
    }
    fn est_ns(&self) -> f64 {
        self.est_ns
    }
    fn claim(&self) -> bool {
        self.cell.compare_exchange(QUEUED, CLAIMED, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }
}

fn cancel(cell: &AtomicU8) -> bool {
    cell.compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire).is_ok()
}

/// One scripted event over a 3-model × 2-device key grid.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Enqueue a request for (model, device) with a class deadline.
    Push { model: usize, device: usize, class: usize },
    /// A device worker frees up and pulls.
    Pull { device: usize },
    /// The clock jumps past the idle-latency bound.
    Advance,
    /// Cancel the n-th oldest still-queued request (server protocol:
    /// CAS first, then eager removal under the lock).
    Cancel { nth: usize },
}

fn event(raw: u8) -> Event {
    match raw % 16 {
        r @ 0..=5 => Event::Push { model: r as usize % 3, device: r as usize / 3, class: 0 },
        r @ 6..=8 => Event::Push { model: r as usize % 3, device: (r as usize / 3) % 2, class: 2 },
        9..=12 => Event::Pull { device: (raw as usize / 16) % 2 },
        13 => Event::Advance,
        _ => Event::Cancel { nth: raw as usize / 16 },
    }
}

struct Run {
    pushed: u64,
    /// id → key, in push order.
    keys: HashMap<u64, BatchKey>,
    /// ids that reached a worker, in flush order per key concat.
    executed: Vec<(BatchKey, u64)>,
    /// ids dropped at cut time (claim refused).
    cut_cancelled: Vec<u64>,
    /// ids removed eagerly by the cancel path.
    eager_cancelled: Vec<u64>,
    /// ids whose cancel CAS won.
    cancel_wins: Vec<u64>,
    oversized: usize,
    mixed_key: usize,
}

fn run_script(raw_events: &[u8], max_batch: usize, policy: CutPolicy) -> Run {
    let mut batcher: Batcher<Item> =
        Batcher::new(max_batch, Duration::from_millis(DELAY_MS)).with_policy(policy);
    let t0 = Instant::now();
    let mut now = t0;
    let mut run = Run {
        pushed: 0,
        keys: HashMap::new(),
        executed: Vec::new(),
        cut_cancelled: Vec::new(),
        eager_cancelled: Vec::new(),
        cancel_wins: Vec::new(),
        oversized: 0,
        mixed_key: 0,
    };
    // Still-queued (as far as the script knows) cancel targets.
    let mut live: Vec<(u64, Arc<AtomicU8>, BatchKey)> = Vec::new();

    let take = |run: &mut Run, cut: smartmem_serve::Cut<Item>| {
        if cut.batch.items.len() > max_batch {
            run.oversized += 1;
        }
        for item in &cut.batch.items {
            if run.keys[&item.id] != cut.batch.key {
                run.mixed_key += 1;
            }
        }
        run.executed.extend(cut.batch.items.iter().map(|i| (cut.batch.key, i.id)));
        run.cut_cancelled.extend(cut.cancelled.iter().map(|i| i.id));
    };

    for &raw in raw_events {
        match event(raw) {
            Event::Push { model, device, class } => {
                let key = BatchKey { model, device };
                let deadline = now + Duration::from_millis([10, 100, 1000][class]);
                let cell = Arc::new(AtomicU8::new(QUEUED));
                let item = Item { id: run.pushed, deadline, est_ns: 0.0, cell: Arc::clone(&cell) };
                batcher.push(key, item, now).expect("push to a live device");
                run.keys.insert(run.pushed, key);
                live.push((run.pushed, cell, key));
                run.pushed += 1;
            }
            Event::Pull { device } => {
                if let Some(cut) = batcher.pull(device, now) {
                    take(&mut run, cut);
                }
            }
            Event::Advance => now += Duration::from_millis(DELAY_MS),
            Event::Cancel { nth } => {
                if live.is_empty() {
                    continue;
                }
                let (id, cell, key) = live.remove(nth % live.len());
                if cancel(&cell) {
                    run.cancel_wins.push(id);
                    // Eager unqueue — may already have been popped by a
                    // cut, in which case the cut handled it.
                    if batcher.remove_where(key, |i| i.id == id).is_some() {
                        run.eager_cancelled.push(id);
                    }
                }
            }
        }
    }
    // Shutdown drain.
    for device in 0..2 {
        while let Some(cut) = batcher.pull_any(device, now) {
            take(&mut run, cut);
        }
    }
    run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every pushed request ends in exactly one terminal set:
    /// executed, dropped-at-cut, or eagerly removed — none lost, none
    /// duplicated, under both cut policies.
    #[test]
    fn conservation(raw in prop::collection::vec(0u8..255, 0..160), max_batch in 1usize..7,
                    deadline_policy in 0u8..2) {
        let policy = if deadline_policy == 1 { CutPolicy::Deadline } else { CutPolicy::Pull };
        let run = run_script(&raw, max_batch, policy);
        let mut seen: Vec<u64> = run.executed.iter().map(|&(_, id)| id).collect();
        seen.extend(&run.cut_cancelled);
        seen.extend(&run.eager_cancelled);
        prop_assert_eq!(seen.len() as u64, run.pushed, "request lost or duplicated");
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as u64, run.pushed, "terminal sets overlap");
    }

    /// A cut never exceeds `max_batch` and never mixes keys.
    #[test]
    fn batch_bounds(raw in prop::collection::vec(0u8..255, 0..160), max_batch in 1usize..7) {
        let run = run_script(&raw, max_batch, CutPolicy::Pull);
        prop_assert_eq!(run.oversized, 0, "a cut exceeded max_batch");
        prop_assert_eq!(run.mixed_key, 0, "a batch mixed keys");
    }

    /// A request whose cancellation won the CAS is never executed —
    /// whether it was removed eagerly or dropped at batch-cut time.
    #[test]
    fn cancelled_never_executes(raw in prop::collection::vec(0u8..255, 0..160),
                                max_batch in 1usize..7) {
        let run = run_script(&raw, max_batch, CutPolicy::Pull);
        for &(_, id) in &run.executed {
            prop_assert!(!run.cancel_wins.contains(&id), "cancelled request {} executed", id);
        }
        // And conversely every cancel win is accounted for exactly once.
        for id in &run.cancel_wins {
            let dropped = run.cut_cancelled.contains(id) || run.eager_cancelled.contains(id);
            prop_assert!(dropped, "cancel win {} vanished", id);
        }
    }

    /// FIFO within a key: concatenating a key's executed batches in
    /// flush order yields strictly increasing submission ids.
    #[test]
    fn fifo_within_key(raw in prop::collection::vec(0u8..255, 0..160), max_batch in 1usize..7) {
        let run = run_script(&raw, max_batch, CutPolicy::Pull);
        let mut per_key: HashMap<BatchKey, Vec<u64>> = HashMap::new();
        for &(key, id) in &run.executed {
            per_key.entry(key).or_default().push(id);
        }
        for (key, ids) in per_key {
            for w in ids.windows(2) {
                prop_assert!(w[0] < w[1], "key {:?} reordered: {} after {}", key, w[1], w[0]);
            }
        }
    }

    /// Starvation aging: a long-deadline request on a flooded device is
    /// pulled within a bounded number of rounds, no matter how the hot
    /// key's fresh interactive traffic arrives.
    #[test]
    fn aging_bounds_starvation(flood in prop::collection::vec(1u8..4, 60..80)) {
        let mut b: Batcher<Item> =
            Batcher::new(2, Duration::from_millis(DELAY_MS)).with_aging_factor(4.0);
        let t0 = Instant::now();
        let victim_key = BatchKey { model: 9, device: 0 };
        let hot_key = BatchKey { model: 0, device: 0 };
        let victim = Item {
            id: u64::MAX,
            deadline: t0 + Duration::from_millis(100),
            est_ns: 0.0,
            cell: Arc::new(AtomicU8::new(QUEUED)),
        };
        b.push(victim_key, victim, t0).expect("push to a live device");
        let mut now = t0;
        let mut next_id = 0u64;
        for (round, &burst) in flood.iter().enumerate() {
            now += Duration::from_millis(1);
            // Keep the hot key due with fresh 10 ms-deadline traffic.
            for _ in 0..burst {
                let item = Item {
                    id: next_id,
                    deadline: now + Duration::from_millis(10),
                    est_ns: 0.0,
                    cell: Arc::new(AtomicU8::new(QUEUED)),
                };
                b.push(hot_key, item, now).expect("push to a live device");
                next_id += 1;
            }
            if let Some(cut) = b.pull(0, now) {
                if cut.batch.key == victim_key {
                    // Victim's effective slack decays at (1 + aging)
                    // per ms while fresh hot traffic holds ~10 ms of
                    // slack: it must win within ~(100 − 10)/5 ≈ 18
                    // rounds; 40 leaves margin.
                    prop_assert!(round < 40, "victim starved for {} rounds", round);
                    return Ok(());
                }
            }
        }
        prop_assert!(false, "victim was never pulled despite aging");
    }
}

/// The cancel-vs-cut race, with real threads: cancellers CAS requests
/// to CANCELLED while a worker thread concurrently cuts batches from
/// the same batcher under a mutex (the server's exact protocol). A
/// request must end in exactly one terminal set, and no cancel winner
/// may ever be executed.
#[test]
fn cancel_racing_batch_cut_is_exactly_once() {
    for trial in 0..24 {
        let n: u64 = 96;
        let key = BatchKey { model: 0, device: 0 };
        let t0 = Instant::now();
        let cells: Vec<Arc<AtomicU8>> = (0..n).map(|_| Arc::new(AtomicU8::new(QUEUED))).collect();
        let batcher = {
            // Zero idle delay: every key is always due, so the cutter
            // races the cancellers as hard as possible.
            let mut b: Batcher<Item> = Batcher::new(4, Duration::ZERO);
            for (i, cell) in cells.iter().enumerate() {
                let item = Item {
                    id: i as u64,
                    deadline: t0 + Duration::from_millis(10),
                    est_ns: 0.0,
                    cell: Arc::clone(cell),
                };
                b.push(key, item, t0).expect("push to a live device");
            }
            Arc::new(Mutex::new(b))
        };

        let mut executed: Vec<u64> = Vec::new();
        let mut dropped_at_cut: Vec<u64> = Vec::new();
        let mut eager: Vec<Vec<u64>> = Vec::new();
        let mut wins: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|scope| {
            let cancellers: Vec<_> = (0..3)
                .map(|c| {
                    let batcher = Arc::clone(&batcher);
                    let cells = &cells;
                    scope.spawn(move || {
                        let mut my_wins = Vec::new();
                        let mut my_eager = Vec::new();
                        // Each canceller goes after a stride of ids,
                        // offset so all three contend with the cutter.
                        for i in (c..n as usize).step_by(3 + trial % 2) {
                            if cancel(&cells[i]) {
                                my_wins.push(i as u64);
                                let removed = batcher
                                    .lock()
                                    .unwrap()
                                    .remove_where(key, |it: &Item| it.id == i as u64);
                                if removed.is_some() {
                                    my_eager.push(i as u64);
                                }
                            }
                        }
                        (my_wins, my_eager)
                    })
                })
                .collect();
            // The worker: pull until the queue is empty.
            loop {
                let cut = batcher.lock().unwrap().pull_any(0, Instant::now());
                match cut {
                    Some(cut) => {
                        executed.extend(cut.batch.items.iter().map(|i| i.id));
                        dropped_at_cut.extend(cut.cancelled.iter().map(|i| i.id));
                    }
                    None => {
                        if cancellers.iter().all(|h| h.is_finished()) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            for h in cancellers {
                let (w, e) = h.join().expect("canceller panicked");
                wins.push(w);
                eager.push(e);
            }
        });

        let wins: Vec<u64> = wins.into_iter().flatten().collect();
        let eager: Vec<u64> = eager.into_iter().flatten().collect();
        for id in &executed {
            assert!(!wins.contains(id), "trial {trial}: cancelled request {id} executed");
        }
        let mut all: Vec<u64> =
            executed.iter().chain(&dropped_at_cut).chain(&eager).copied().collect();
        all.sort_unstable();
        let len = all.len();
        all.dedup();
        assert_eq!(len, n as usize, "trial {trial}: a request was lost or duplicated");
        assert_eq!(all.len(), n as usize, "trial {trial}: terminal sets overlap");
        assert_eq!(
            wins.len(),
            dropped_at_cut.len() + eager.len(),
            "trial {trial}: cancel wins must equal dropped + eagerly removed"
        );
    }
}
