//! Property tests of the batcher invariants (vendored proptest shim):
//! whatever interleaving of pushes and time advances arrives, no
//! request is lost, no batch exceeds `max_batch` or mixes keys, and
//! FIFO order holds within every (model, device) key.

use proptest::prelude::*;
use smartmem_serve::{Batch, BatchKey, Batcher};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const DELAY_MS: u64 = 4;

/// One scripted event: a request for (model, device) or a clock jump
/// past the flush deadline.
#[derive(Clone, Copy, Debug)]
enum Event {
    Push { model: usize, device: usize },
    Advance,
}

fn event(raw: u8) -> Event {
    // 0..12 → push over a 3×4 key grid, 12.. → advance the clock.
    if raw < 12 {
        Event::Push { model: (raw % 3) as usize, device: (raw as usize / 3) % 4 }
    } else {
        Event::Advance
    }
}

fn run_script(raw_events: &[u8], max_batch: usize) -> (usize, Vec<Batch<u64>>) {
    let mut batcher: Batcher<u64> = Batcher::new(max_batch, Duration::from_millis(DELAY_MS));
    let t0 = Instant::now();
    let mut now = t0;
    let mut pushed = 0u64;
    let mut flushed = Vec::new();
    for &raw in raw_events {
        match event(raw) {
            Event::Push { model, device } => {
                let key = BatchKey { model, device };
                if let Some(b) = batcher.push(key, pushed, now) {
                    flushed.push(b);
                }
                pushed += 1;
            }
            Event::Advance => {
                now += Duration::from_millis(DELAY_MS);
                flushed.extend(batcher.due(now));
            }
        }
    }
    flushed.extend(batcher.drain());
    (pushed as usize, flushed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No request is lost or duplicated across size flushes, deadline
    /// flushes and the final drain.
    #[test]
    fn conservation(raw in prop::collection::vec(0u8..16, 0..120), max_batch in 1usize..7) {
        let (pushed, flushed) = run_script(&raw, max_batch);
        let total: usize = flushed.iter().map(|b| b.items.len()).sum();
        prop_assert_eq!(total, pushed);
        let mut seen: Vec<u64> = flushed.iter().flat_map(|b| b.items.iter().copied()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), pushed, "duplicate or missing request ids");
    }

    /// Batches never exceed the size threshold and never mix keys, and
    /// a size-`max_batch` flush only happens through push.
    #[test]
    fn batch_bounds(raw in prop::collection::vec(0u8..16, 0..120), max_batch in 1usize..7) {
        let (_, flushed) = run_script(&raw, max_batch);
        for b in &flushed {
            prop_assert!(!b.items.is_empty(), "empty batch flushed");
            prop_assert!(b.items.len() <= max_batch, "oversized batch {}", b.items.len());
        }
    }

    /// FIFO within a key: concatenating a key's batches in flush order
    /// yields strictly increasing submission ids.
    #[test]
    fn fifo_within_key(raw in prop::collection::vec(0u8..16, 0..120), max_batch in 1usize..7) {
        let (_, flushed) = run_script(&raw, max_batch);
        let mut per_key: HashMap<BatchKey, Vec<u64>> = HashMap::new();
        for b in &flushed {
            per_key.entry(b.key).or_default().extend(b.items.iter().copied());
        }
        for (key, ids) in per_key {
            for w in ids.windows(2) {
                prop_assert!(w[0] < w[1], "key {key:?} reordered: {} after {}", w[1], w[0]);
            }
        }
    }
}
