//! Retry/backoff policy and admission-control shedding — the two pure
//! decision rules behind the serve tier's graceful degradation.
//!
//! Both are plain functions of their inputs (no clocks, no threads), so
//! the proptests in `tests/retry_props.rs` can state their invariants
//! directly: a request is never retried more than `budget` times, and
//! admission never sheds a class before every lower class sheds.

use crate::request::Priority;
use std::time::Duration;

/// Retry budget and backoff schedule for transient request failures
/// (injected or real execute/compile errors, device death while queued
/// or claimed).
///
/// A request starts with `attempts = 0`. Each failed attempt increments
/// it and asks [`RetryPolicy::decide`]; the request is re-placed and
/// re-enqueued after the returned backoff, or answered with a terminal
/// `failed` once the budget is exhausted. Backoff is exponential,
/// `backoff_base × 2^(attempt−1)`, capped at `max_backoff` — enough to
/// keep a flapping device from being hammered, short enough that a
/// retried Interactive request can still meet a relaxed deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per request (0 = fail on first error).
    pub budget: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three retries, 500 µs initial backoff, capped at 8 ms.
    fn default() -> Self {
        RetryPolicy {
            budget: 3,
            backoff_base: Duration::from_micros(500),
            max_backoff: Duration::from_millis(8),
        }
    }
}

/// Outcome of one failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Re-place and re-enqueue after `backoff`.
    Retry {
        /// How long the re-enqueued request waits before becoming due.
        backoff: Duration,
    },
    /// Budget exhausted: answer the request with a terminal failure.
    Fail,
}

impl RetryPolicy {
    /// Decision after the `failed_attempts`-th failure (1-based: pass 1
    /// after the first failure). At most `budget` calls return
    /// [`RetryDecision::Retry`].
    pub fn decide(&self, failed_attempts: u32) -> RetryDecision {
        if failed_attempts <= self.budget {
            RetryDecision::Retry { backoff: self.backoff_for(failed_attempts) }
        } else {
            RetryDecision::Fail
        }
    }

    /// Backoff before retry number `attempt` (1-based):
    /// `backoff_base × 2^(attempt−1)`, capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        self.backoff_base.saturating_mul(factor).min(self.max_backoff)
    }
}

/// Queue-depth-aware admission control: when the pool is so loaded that
/// even the best-placed request would blow an Interactive deadline, new
/// low-class work is *shed* at submission (rejected with
/// `SubmitError::Shed`) instead of queued to fail.
///
/// The signal is **pool slack**: the Interactive deadline budget minus
/// the best estimated completion time across alive devices for the
/// incoming request (`DevicePool::best_completion_ns`). The shed order
/// is fixed:
///
/// 1. `BestEffort` sheds as soon as slack goes negative;
/// 2. `Batch` sheds only once slack is worse than `batch_grace` beyond
///    that — so BestEffort always sheds before Batch;
/// 3. `Interactive` is **never** shed — it is the class the shedding
///    protects.
///
/// Disabled by default ([`AdmissionControl::disabled`]): enabling it is
/// an explicit opt-in because shedding changes which requests are
/// admitted at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Master switch; when false nothing is ever shed.
    pub enabled: bool,
    /// Extra negative slack tolerated for `Batch` beyond the point
    /// where `BestEffort` sheds.
    pub batch_grace: Duration,
}

impl AdmissionControl {
    /// Admission control off (the default): nothing is shed.
    pub fn disabled() -> Self {
        AdmissionControl { enabled: false, batch_grace: Duration::from_millis(50) }
    }

    /// Admission control on with the default 50 ms batch grace.
    pub fn enabled() -> Self {
        AdmissionControl { enabled: true, ..AdmissionControl::disabled() }
    }

    /// Should a request of `class` be shed given `pool_slack_ns` (the
    /// Interactive budget minus the best alive-device completion
    /// estimate; negative = the pool is already missing Interactive
    /// deadlines)?
    pub fn should_shed(&self, class: Priority, pool_slack_ns: i64) -> bool {
        if !self.enabled {
            return false;
        }
        match class {
            Priority::Interactive => false,
            Priority::Batch => {
                pool_slack_ns < -i64::try_from(self.batch_grace.as_nanos()).unwrap_or(i64::MAX)
            }
            Priority::BestEffort => pool_slack_ns < 0,
        }
    }
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_decisions_respect_the_budget() {
        let policy = RetryPolicy::default();
        let mut retries = 0;
        for attempt in 1..20 {
            match policy.decide(attempt) {
                RetryDecision::Retry { .. } => retries += 1,
                RetryDecision::Fail => break,
            }
        }
        assert_eq!(retries, policy.budget);
        let none = RetryPolicy { budget: 0, ..RetryPolicy::default() };
        assert_eq!(none.decide(1), RetryDecision::Fail);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            budget: 10,
            backoff_base: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(1));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(2));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(4));
        assert_eq!(policy.backoff_for(4), Duration::from_millis(6), "capped");
        assert_eq!(policy.backoff_for(63), Duration::from_millis(6), "no overflow");
    }

    #[test]
    fn shed_order_is_besteffort_then_batch_never_interactive() {
        let ac = AdmissionControl::enabled();
        let grace = ac.batch_grace.as_nanos() as i64;
        // Positive slack: nobody sheds.
        for class in Priority::ALL {
            assert!(!ac.should_shed(class, 1));
        }
        // Slightly negative: only BestEffort.
        assert!(ac.should_shed(Priority::BestEffort, -1));
        assert!(!ac.should_shed(Priority::Batch, -1));
        assert!(!ac.should_shed(Priority::Interactive, -1));
        // Beyond the grace: Batch too, Interactive still never.
        assert!(ac.should_shed(Priority::BestEffort, -grace - 1));
        assert!(ac.should_shed(Priority::Batch, -grace - 1));
        assert!(!ac.should_shed(Priority::Interactive, i64::MIN));
        // Disabled: nothing sheds at any slack.
        let off = AdmissionControl::disabled();
        for class in Priority::ALL {
            assert!(!off.should_shed(class, i64::MIN));
        }
    }
}
