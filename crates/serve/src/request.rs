//! The request/response surface of the serving runtime.

use crate::server::CancelHandle;
use smartmem_core::graph_fingerprint;
use smartmem_ir::Graph;
use std::fmt;
use std::sync::mpsc;

/// Priority class of a request — which per-class latency budget it is
/// admitted under (see `ServeConfig::deadlines`) and therefore how the
/// slack-ordered scheduler ranks it at batch-cut time.
///
/// Classes only set *deadlines*; they never preempt running batches,
/// and starvation aging guarantees that even `BestEffort` traffic is
/// eventually served under sustained `Interactive` load.
///
/// ```
/// use smartmem_serve::Priority;
///
/// // Tight to loose latency budgets:
/// assert!(Priority::Interactive < Priority::Batch);
/// assert!(Priority::Batch < Priority::BestEffort);
/// // Stable per-class indices for metrics arrays:
/// assert_eq!(Priority::ALL.map(Priority::index), [0, 1, 2]);
/// assert_eq!(Priority::Interactive.name(), "Interactive");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Priority {
    /// User-facing traffic with a tight latency budget (the default).
    #[default]
    Interactive,
    /// Throughput-oriented traffic with a relaxed budget.
    Batch,
    /// Background traffic: served whenever there is slack, protected
    /// from starvation only by aging.
    BestEffort,
}

impl Priority {
    /// All classes, in `index` order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Stable index of this class in per-class metric arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display name of the class.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "Interactive",
            Priority::Batch => "Batch",
            Priority::BestEffort => "BestEffort",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A model registered with the server: the graph plus everything the
/// request path needs precomputed (content fingerprint for the
/// compilation cache, MAC/byte totals for the scheduler's roofline
/// estimate). Computing these once at registration keeps the per-request
/// cost to hash-map lookups and a few atomics.
pub struct ModelSpec {
    /// Display name (unique per server).
    pub name: String,
    /// The computational graph served for this model.
    pub graph: Graph,
    /// Content fingerprint of `graph` (compilation-cache key component).
    pub fingerprint: u64,
    /// Total multiply-accumulates of one inference.
    pub macs: u64,
    /// Total tensor bytes (weights + activations at F16) — the
    /// denominator of the scheduler's computational-intensity estimate.
    pub bytes: u64,
    /// Rough post-fusion kernel count used to estimate launch overhead.
    pub kernels_hint: usize,
}

impl ModelSpec {
    /// Registers `graph` under `name`, precomputing the fingerprint and
    /// the scheduler's work estimates.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        let fingerprint = graph_fingerprint(&graph);
        let macs = graph.total_macs();
        let bytes: u64 = graph.tensors().iter().map(|t| t.shape.numel() * 2).sum();
        // Fusion + elimination typically collapse ~3 source operators
        // into one kernel (Table 7's operator-count reductions).
        let kernels_hint = (graph.op_count() / 3).max(1);
        ModelSpec { name: name.into(), graph, fingerprint, macs, bytes, kernels_hint }
    }
}

/// One inference request: which model to run, optionally a pinned
/// device (index into the server's device pool), and the
/// [`Priority`] class whose deadline it is admitted under. Unpinned
/// requests are placed by the scheduler.
#[derive(Clone, Copy, Debug)]
pub struct InferenceRequest {
    /// Model id (index into the server's registered models).
    pub model: usize,
    /// Pinned device id, or `None` to let the scheduler place it.
    pub device: Option<usize>,
    /// Priority class (default [`Priority::Interactive`]).
    pub priority: Priority,
    /// Optional stable identity of the request across retries,
    /// re-placements, and resubmission to another replica; defaults to
    /// the server-assigned request id. A `FaultPlan` keys its
    /// request-level fault decisions on this tag, so chaos harnesses
    /// that assign globally unique tags get schedule-independent fault
    /// sets (the curse follows the request wherever it goes).
    pub tag: Option<u64>,
    /// Autoregressive decode iterations this request runs on the device
    /// (`0` = an ordinary single-shot inference, the default). A
    /// request with `decode_steps = n ≥ 1` is a *decode* request: its
    /// placement estimate is charged `n×`, its batch holds the device
    /// for `n` iterations, and each iteration produces one token
    /// (counted in `ServeStats::decode_tokens`). Continuous batching
    /// submits `decode_steps = 1` per step through a
    /// [`crate::DecodeSession`]; whole-request batching submits the
    /// entire generation as one `decode_steps = n` request — and holds
    /// every batch-mate hostage for all `n` iterations.
    pub decode_steps: u32,
}

impl InferenceRequest {
    /// Request for `model`, scheduler-placed, `Interactive` priority.
    pub fn new(model: usize) -> Self {
        InferenceRequest {
            model,
            device: None,
            priority: Priority::default(),
            tag: None,
            decode_steps: 0,
        }
    }

    /// Pins the request to a device.
    #[must_use]
    pub fn on_device(mut self, device: usize) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the stable fault-injection identity.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Marks this as a decode request of `steps` autoregressive
    /// iterations (see [`InferenceRequest::decode_steps`]).
    #[must_use]
    pub fn with_decode_steps(mut self, steps: u32) -> Self {
        self.decode_steps = steps;
        self
    }
}

/// The `error` string of responses answered because their replica was
/// killed mid-flight. A fleet router resubmits requests failing with
/// exactly this error to a surviving replica.
pub const REPLICA_KILLED: &str = "replica killed";

/// Completion record of one request.
#[derive(Clone, Debug)]
pub struct InferenceResponse {
    /// Id assigned at submission (monotone per server).
    pub request_id: u64,
    /// Global completion sequence number (monotone in the order the
    /// workers finished requests; FIFO within a (model, device) key).
    pub completion_seq: u64,
    /// Model name.
    pub model: String,
    /// Device the batch executed on (or would have, for cancelled
    /// requests).
    pub device: String,
    /// Priority class the request was admitted under.
    pub priority: Priority,
    /// Whether the request was cancelled before execution. A cancelled
    /// response carries no execution data (`batch_size == 0`,
    /// `exec_ms == 0`) and `error` stays `None`.
    pub cancelled: bool,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// Wall-clock milliseconds from submission to batch execution start
    /// (queueing + batching delay).
    pub queue_ms: f64,
    /// Simulated device-time milliseconds of the whole batch.
    pub exec_ms: f64,
    /// Wall-clock milliseconds from submission to response.
    pub wall_ms: f64,
    /// Whether the compiled artifact came from the session cache (or an
    /// in-flight compilation this request waited on).
    pub compile_cache_hit: bool,
    /// Failed execution attempts this request survived before this
    /// response (0 = first try). Bounded by the server's
    /// `RetryPolicy::budget`; a successful response with `retries > 0`
    /// is a *recovered* request.
    pub retries: u32,
    /// Terminal failure, if any (`None` = served). Possible values:
    /// a compilation error message, [`REPLICA_KILLED`], or a transient
    /// error that exhausted the retry budget.
    pub error: Option<String>,
}

impl InferenceResponse {
    /// Simulated end-to-end latency: queueing (wall) + device time.
    pub fn e2e_ms(&self) -> f64 {
        self.queue_ms + self.exec_ms
    }
}

/// Handle to a submitted request; redeem with [`Ticket::wait`], or
/// revoke with [`Ticket::cancel_handle`].
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<InferenceResponse>,
    pub(crate) cancel: CancelHandle,
}

impl Ticket {
    /// The request id this ticket redeems.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A clonable [`CancelHandle`] for this request, usable from any
    /// thread while the ticket is pending.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Blocks until the response arrives. Every accepted request is
    /// answered — executed, failed, or cancelled (check
    /// [`InferenceResponse::cancelled`]) — so this only fails if the
    /// server was torn down abnormally.
    pub fn wait(self) -> InferenceResponse {
        self.rx.recv().expect("server dropped the response channel")
    }
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full (shed load and retry).
    QueueFull,
    /// Unknown model id.
    UnknownModel(usize),
    /// Unknown device id.
    UnknownDevice(usize),
    /// The server is shutting down.
    ShuttingDown,
    /// Admission control shed this request: pool slack is already
    /// negative and the request's class is sheddable (never
    /// `Interactive` — see `AdmissionControl`).
    Shed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue full"),
            SubmitError::UnknownModel(m) => write!(f, "unknown model id {m}"),
            SubmitError::UnknownDevice(d) => write!(f, "unknown device id {d}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Shed => write!(f, "shed by admission control (pool slack negative)"),
        }
    }
}

impl std::error::Error for SubmitError {}
