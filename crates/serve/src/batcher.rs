//! The per-(model, device) request coalescer — pull-mode.
//!
//! [`Batcher`] is a pure data structure (no threads, no channels): the
//! server drives it with wall-clock `Instant`s under a mutex, and the
//! tests drive it with synthetic ones. Requests are *pushed* into
//! per-key FIFO queues and *pulled* out by device workers when a device
//! frees up — the batch is composed at pull time, so a backlogged
//! device grows its batches toward `max_batch` instead of flushing
//! whatever happened to arrive inside a fixed window. The old
//! size-or-deadline composition survives as [`CutPolicy::Deadline`],
//! the A/B baseline.
//!
//! Three rules govern a pull:
//!
//! 1. **Due check** — a key may be cut when it holds `max_batch`
//!    requests, or when its oldest request has waited `idle_delay`.
//!    The delay is purely an *idle-latency bound*: it is what flushes a
//!    lone request on an otherwise idle device; it never truncates a
//!    batch that backlog has grown.
//! 2. **Slack ordering** — among due keys of the device, the key whose
//!    head request has the least *effective slack* is cut first, where
//!    `slack = (deadline − now) − estimated execution time` and the
//!    effective value subtracts `aging_factor ×` the head's queueing
//!    age (starvation aging: every waiting request gains urgency at
//!    `1 + aging_factor` per unit of wall time, so a long-waiting
//!    best-effort key eventually outranks fresh interactive traffic).
//! 3. **Cancel adjudication** — each popped item is offered the cut via
//!    [`BatchItem::claim`]; items that refuse (already cancelled) are
//!    returned in [`Cut::cancelled`] and never enter the batch.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Coalescing key: one batch never mixes models or devices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BatchKey {
    /// Model id.
    pub model: usize,
    /// Device id.
    pub device: usize,
}

/// How a batch is composed at cut time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CutPolicy {
    /// Pull-based: a cut takes up to `max_batch` queued requests,
    /// however long the backlog has grown while the device was busy.
    #[default]
    Pull,
    /// Fixed-deadline baseline: a cut only takes requests that arrived
    /// within `idle_delay` of the batch head — the composition the old
    /// push-mode batcher produced by flushing on a timer. Kept so
    /// benchmarks can A/B the two policies at identical load.
    Deadline,
}

/// A queued request as the batcher sees it: enough metadata to order
/// keys by slack and to adjudicate cancellation at cut time.
pub trait BatchItem {
    /// Absolute SLO deadline of this request (admission time + its
    /// priority class's budget).
    fn deadline(&self) -> Instant;

    /// Estimated execution time in nanoseconds (the scheduler's
    /// roofline estimate) — subtracted from the time-to-deadline to get
    /// slack.
    fn est_ns(&self) -> f64;

    /// Called exactly once, at cut time, under the batcher's lock:
    /// return `true` to join the batch, `false` if the request was
    /// cancelled in the meantime (it then lands in [`Cut::cancelled`]
    /// and is never executed). Implementations adjudicate the
    /// cancel-vs-cut race here, e.g. with a compare-and-swap.
    fn claim(&self) -> bool {
        true
    }
}

/// One cut batch.
#[derive(Debug)]
pub struct Batch<T> {
    /// Coalescing key.
    pub key: BatchKey,
    /// Requests in arrival order.
    pub items: Vec<T>,
    /// When the head request of the cut arrived.
    pub opened_at: Instant,
}

/// Result of one pull: the executable batch plus any requests that
/// turned out to be cancelled when claimed. `batch.items` may be empty
/// when every popped request had been cancelled — callers answer the
/// cancelled ones and pull again.
#[derive(Debug)]
pub struct Cut<T> {
    /// The claimed, executable batch (FIFO within its key).
    pub batch: Batch<T>,
    /// Requests dropped at cut time because [`BatchItem::claim`]
    /// refused — cancelled while queued, never to reach a worker.
    pub cancelled: Vec<T>,
}

struct Queued<T> {
    item: T,
    enqueued: Instant,
}

/// Pull-mode batcher over (model, device) keys.
///
/// [`Batcher::push`] enqueues; a device worker asks
/// [`Batcher::next_due`] how long it may sleep and then
/// [`Batcher::pull`]s the most urgent due batch for its device.
/// [`Batcher::pull_any`] ignores the due check (shutdown drain), and
/// [`Batcher::remove_where`] supports eager cancellation of a queued
/// request. The struct holds no threads or channels, which is what
/// makes its invariants property-testable with synthetic clocks.
pub struct Batcher<T> {
    max_batch: usize,
    idle_delay: Duration,
    policy: CutPolicy,
    aging_factor: f64,
    queues: HashMap<BatchKey, VecDeque<Queued<T>>>,
    /// Devices declared dead by [`Batcher::mark_dead`]: their keys hold
    /// no queues and [`Batcher::push`] rejects new work for them so a
    /// request can never queue behind a device that will not pull.
    dead: HashSet<usize>,
}

impl<T> Batcher<T> {
    /// Batcher cutting at most `max_batch` requests (≥ 1) per batch,
    /// with `idle_delay` as the idle-latency bound, under the default
    /// [`CutPolicy::Pull`] and an aging factor of 4.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, idle_delay: Duration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Batcher {
            max_batch,
            idle_delay,
            policy: CutPolicy::Pull,
            aging_factor: 4.0,
            queues: HashMap::new(),
            dead: HashSet::new(),
        }
    }

    /// Replaces the cut policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: CutPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the starvation-aging factor (builder style): each
    /// nanosecond a head request has queued subtracts `aging_factor`
    /// nanoseconds from its effective slack. Zero disables aging
    /// (pure slack ordering).
    #[must_use]
    pub fn with_aging_factor(mut self, aging_factor: f64) -> Self {
        self.aging_factor = aging_factor;
        self
    }

    /// Batch-size cap of a single cut.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The idle-latency bound: how long a request may wait before its
    /// key becomes due even on an idle device.
    pub fn idle_delay(&self) -> Duration {
        self.idle_delay
    }

    /// The active cut policy.
    pub fn policy(&self) -> CutPolicy {
        self.policy
    }

    /// Requests currently queued across all keys.
    pub fn pending(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Requests currently queued for one device.
    pub fn pending_for(&self, device: usize) -> usize {
        self.queues.iter().filter(|(k, _)| k.device == device).map(|(_, q)| q.len()).sum()
    }

    /// Enqueues a request at the tail of its key's FIFO queue. Nothing
    /// is cut here — batches are composed when a worker pulls.
    ///
    /// Pushing for a device previously declared dead by
    /// [`Batcher::mark_dead`] is rejected, handing the item back as
    /// `Err` so the caller can re-place it on a live device. (Before
    /// this rejection path existed, such a push queued the request
    /// behind a worker that would never pull — it waited forever.)
    ///
    /// `now` may lie in the future: a retried request is re-enqueued
    /// with `now + backoff`, which delays its key's due time by the
    /// backoff without needing timer machinery — the due check measures
    /// age from `enqueued`.
    pub fn push(&mut self, key: BatchKey, item: T, now: Instant) -> Result<(), T> {
        if self.dead.contains(&key.device) {
            return Err(item);
        }
        self.queues.entry(key).or_default().push_back(Queued { item, enqueued: now });
        Ok(())
    }

    /// Declares a device dead: every request queued for it is drained
    /// and returned (grouped per key, FIFO within each key, keys in
    /// ascending model order so callers re-place deterministically), and
    /// future [`Batcher::push`]es for the device are rejected until
    /// [`Batcher::revive`].
    pub fn mark_dead(&mut self, device: usize) -> Vec<(BatchKey, Vec<T>)> {
        self.dead.insert(device);
        let mut keys: Vec<BatchKey> =
            self.queues.keys().filter(|k| k.device == device).copied().collect();
        keys.sort_by_key(|k| k.model);
        keys.into_iter()
            .map(|k| {
                let q = self.queues.remove(&k).expect("key just listed");
                (k, q.into_iter().map(|e| e.item).collect())
            })
            .collect()
    }

    /// Clears a device's dead mark (replica warm restart).
    pub fn revive(&mut self, device: usize) {
        self.dead.remove(&device);
    }

    /// Whether `device` is currently marked dead.
    pub fn is_dead(&self, device: usize) -> bool {
        self.dead.contains(&device)
    }

    /// Drains every queued request of every device (replica kill),
    /// grouped per key — FIFO within each key, keys sorted by
    /// (device, model) so the caller resolves them deterministically.
    pub fn drain_all(&mut self) -> Vec<(BatchKey, Vec<T>)> {
        let mut keys: Vec<BatchKey> = self.queues.keys().copied().collect();
        keys.sort_by_key(|k| (k.device, k.model));
        keys.into_iter()
            .map(|k| {
                let q = self.queues.remove(&k).expect("key just listed");
                (k, q.into_iter().map(|e| e.item).collect())
            })
            .collect()
    }

    /// Removes the first queued request of `key` matching `pred`
    /// (eager cancellation of a queued request). Returns `None` when no
    /// queued request matches — the request was already cut or served.
    pub fn remove_where(&mut self, key: BatchKey, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let q = self.queues.get_mut(&key)?;
        let pos = q.iter().position(|e| pred(&e.item))?;
        let removed = q.remove(pos).expect("position just found").item;
        if q.is_empty() {
            self.queues.remove(&key);
        }
        Some(removed)
    }

    /// Time until some key of `device` becomes due, or `None` when the
    /// device has nothing queued. Zero when a cut is owed right now.
    pub fn next_due(&self, device: usize, now: Instant) -> Option<Duration> {
        self.queues
            .iter()
            .filter(|(k, q)| k.device == device && !q.is_empty())
            .map(|(_, q)| {
                if q.len() >= self.max_batch {
                    Duration::ZERO
                } else {
                    let head = q.front().expect("non-empty queue");
                    (head.enqueued + self.idle_delay).saturating_duration_since(now)
                }
            })
            .min()
    }

    fn key_due(&self, q: &VecDeque<Queued<T>>, now: Instant) -> bool {
        q.len() >= self.max_batch
            || q.front()
                .is_some_and(|head| now.saturating_duration_since(head.enqueued) >= self.idle_delay)
    }
}

/// Signed `a − b` in nanoseconds.
fn signed_ns(a: Instant, b: Instant) -> f64 {
    if a >= b {
        a.duration_since(b).as_nanos() as f64
    } else {
        -(b.duration_since(a).as_nanos() as f64)
    }
}

impl<T: BatchItem> Batcher<T> {
    /// Effective slack of a key's head request: time-to-deadline minus
    /// the execution estimate, minus `aging_factor ×` queueing age.
    fn eff_slack_ns(&self, head: &Queued<T>, now: Instant) -> f64 {
        let slack = signed_ns(head.item.deadline(), now) - head.item.est_ns();
        slack - self.aging_factor * signed_ns(now, head.enqueued).max(0.0)
    }

    /// Cuts the most urgent due batch for `device`, or `None` when no
    /// key of the device is due yet (ask [`Batcher::next_due`] how long
    /// to wait). See the module docs for the due check, the slack
    /// ordering, and cancel adjudication.
    pub fn pull(&mut self, device: usize, now: Instant) -> Option<Cut<T>> {
        self.pull_inner(device, now, false)
    }

    /// Cuts the most urgent batch for `device` whether or not it is due
    /// — the shutdown drain, where waiting out the idle-latency bound
    /// would only delay the final responses.
    pub fn pull_any(&mut self, device: usize, now: Instant) -> Option<Cut<T>> {
        self.pull_inner(device, now, true)
    }

    fn pull_inner(&mut self, device: usize, now: Instant, force: bool) -> Option<Cut<T>> {
        let key = self
            .queues
            .iter()
            .filter(|(k, q)| k.device == device && !q.is_empty() && (force || self.key_due(q, now)))
            .min_by(|(_, a), (_, b)| {
                let (a, b) = (a.front().expect("non-empty"), b.front().expect("non-empty"));
                self.eff_slack_ns(a, now).total_cmp(&self.eff_slack_ns(b, now))
            })
            .map(|(&k, _)| k)?;
        let q = self.queues.get_mut(&key).expect("key just selected");
        let opened_at = q.front().expect("non-empty queue").enqueued;
        let window_end = opened_at + self.idle_delay;
        let mut items = Vec::new();
        let mut cancelled = Vec::new();
        while items.len() < self.max_batch {
            match q.front() {
                None => break,
                // The fixed-deadline baseline only batches what arrived
                // within the head's window — the composition a 3 ms
                // flush timer would have produced.
                Some(head)
                    if self.policy == CutPolicy::Deadline
                        && !force
                        && head.enqueued > window_end =>
                {
                    break
                }
                Some(_) => {}
            }
            let entry = q.pop_front().expect("front just checked");
            if entry.item.claim() {
                items.push(entry.item);
            } else {
                cancelled.push(entry.item);
            }
        }
        if q.is_empty() {
            self.queues.remove(&key);
        }
        Some(Cut { batch: Batch { key, items, opened_at }, cancelled })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const DELAY: Duration = Duration::from_millis(4);

    /// Test item: deadline offset + estimate + optional cancel flag.
    #[derive(Debug)]
    struct It {
        id: u64,
        deadline: Instant,
        est_ns: f64,
        cancelled: Option<Arc<AtomicBool>>,
    }

    impl BatchItem for It {
        fn deadline(&self) -> Instant {
            self.deadline
        }
        fn est_ns(&self) -> f64 {
            self.est_ns
        }
        fn claim(&self) -> bool {
            self.cancelled.as_ref().is_none_or(|c| !c.load(Ordering::SeqCst))
        }
    }

    fn it(id: u64, deadline: Instant) -> It {
        It { id, deadline, est_ns: 0.0, cancelled: None }
    }

    fn key(model: usize, device: usize) -> BatchKey {
        BatchKey { model, device }
    }

    fn ids(batch: &Batch<It>) -> Vec<u64> {
        batch.items.iter().map(|i| i.id).collect()
    }

    #[test]
    fn idle_device_waits_out_the_latency_bound() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), it(1, t0 + DELAY * 10), t0).unwrap();
        assert!(b.pull(0, t0).is_none(), "not due yet");
        assert_eq!(b.next_due(0, t0), Some(DELAY));
        let cut = b.pull(0, t0 + DELAY).expect("due at the idle-latency bound");
        assert_eq!(ids(&cut.batch), vec![1]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn full_key_is_due_immediately() {
        let mut b: Batcher<It> = Batcher::new(3, DELAY);
        let t0 = Instant::now();
        for i in 0..3 {
            b.push(key(0, 0), it(i, t0 + DELAY), t0).unwrap();
        }
        assert_eq!(b.next_due(0, t0), Some(Duration::ZERO));
        let cut = b.pull(0, t0).expect("size-due");
        assert_eq!(ids(&cut.batch), vec![0, 1, 2]);
    }

    #[test]
    fn backlog_grows_batches_up_to_max_batch() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        // 20 requests trickle in at 1 ms apart while the device is busy.
        for i in 0..20 {
            b.push(key(0, 0), it(i, t0 + DELAY * 100), t0 + Duration::from_millis(i)).unwrap();
        }
        let late = t0 + Duration::from_millis(40);
        let cut = b.pull(0, late).expect("long overdue");
        assert_eq!(cut.batch.items.len(), 8, "pull takes the grown backlog");
        assert_eq!(ids(&cut.batch), (0..8).collect::<Vec<_>>());
        // The fixed-deadline baseline only takes the head's window.
        let mut fixed: Batcher<It> = Batcher::new(8, DELAY).with_policy(CutPolicy::Deadline);
        for i in 0..20 {
            fixed.push(key(0, 0), it(i, t0 + DELAY * 100), t0 + Duration::from_millis(i)).unwrap();
        }
        let cut = fixed.pull(0, late).expect("due");
        assert_eq!(cut.batch.items.len(), 5, "only the 4 ms window of the head (ms 0..=4)");
    }

    #[test]
    fn due_keys_cut_in_slack_order() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY).with_aging_factor(0.0);
        let t0 = Instant::now();
        // Same device, two models: the long-deadline key arrived first,
        // the short-deadline key is more urgent.
        b.push(key(0, 0), it(1, t0 + Duration::from_millis(500)), t0).unwrap();
        b.push(key(1, 0), it(2, t0 + Duration::from_millis(20)), t0).unwrap();
        let now = t0 + DELAY;
        let first = b.pull(0, now).expect("both due");
        assert_eq!(first.batch.key, key(1, 0), "least slack cuts first");
        let second = b.pull(0, now).expect("other key still due");
        assert_eq!(second.batch.key, key(0, 0));
    }

    #[test]
    fn aging_lets_a_starving_key_outrank_fresh_traffic() {
        let mut b: Batcher<It> = Batcher::new(2, DELAY).with_aging_factor(4.0);
        let t0 = Instant::now();
        let victim_deadline = t0 + Duration::from_millis(100);
        b.push(key(9, 0), it(999, victim_deadline), t0).unwrap();
        let mut now = t0;
        let mut hot = 0u64;
        for round in 0..200 {
            now += Duration::from_millis(1);
            // Keep the hot key full (size-due) with fresh 10 ms-deadline
            // interactive traffic.
            for _ in 0..2 {
                b.push(key(0, 0), it(hot, now + Duration::from_millis(10)), now).unwrap();
                hot += 1;
            }
            let cut = b.pull(0, now).expect("hot key is always due");
            if cut.batch.key == key(9, 0) {
                assert!(round > 2, "victim should wait at least a little");
                return;
            }
        }
        panic!("starving key was never cut despite aging");
    }

    #[test]
    fn cancelled_items_are_dropped_at_cut_time() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        let flag = Arc::new(AtomicBool::new(false));
        b.push(key(0, 0), it(1, t0 + DELAY), t0).unwrap();
        b.push(
            key(0, 0),
            It { id: 2, deadline: t0 + DELAY, est_ns: 0.0, cancelled: Some(Arc::clone(&flag)) },
            t0,
        )
        .unwrap();
        b.push(key(0, 0), it(3, t0 + DELAY), t0).unwrap();
        flag.store(true, Ordering::SeqCst);
        let cut = b.pull(0, t0 + DELAY).expect("due");
        assert_eq!(ids(&cut.batch), vec![1, 3]);
        assert_eq!(cut.cancelled.len(), 1);
        assert_eq!(cut.cancelled[0].id, 2);
    }

    #[test]
    fn remove_where_supports_eager_cancellation() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), it(1, t0 + DELAY), t0).unwrap();
        b.push(key(0, 0), it(2, t0 + DELAY), t0).unwrap();
        let removed = b.remove_where(key(0, 0), |i| i.id == 1).expect("queued");
        assert_eq!(removed.id, 1);
        assert!(b.remove_where(key(0, 0), |i| i.id == 1).is_none(), "already removed");
        assert_eq!(b.pending(), 1);
        let cut = b.pull(0, t0 + DELAY).expect("due");
        assert_eq!(ids(&cut.batch), vec![2]);
    }

    #[test]
    fn pull_any_drains_without_waiting() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), it(1, t0 + DELAY * 10), t0).unwrap();
        b.push(key(1, 1), it(2, t0 + DELAY * 10), t0).unwrap();
        assert!(b.pull(0, t0).is_none(), "not due");
        let cut = b.pull_any(0, t0).expect("drain ignores the due check");
        assert_eq!(ids(&cut.batch), vec![1]);
        assert_eq!(b.pending_for(0), 0);
        assert_eq!(b.pending_for(1), 1, "other devices untouched");
    }

    #[test]
    fn push_to_a_dead_device_is_rejected_not_queued_forever() {
        // Regression: before the dead set existed, a push racing a
        // device death queued the request behind a worker that would
        // never pull again — it waited forever. The push must hand the
        // item back instead.
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), it(1, t0 + DELAY), t0).unwrap();
        b.push(key(1, 0), it(2, t0 + DELAY), t0).unwrap();
        b.push(key(0, 1), it(3, t0 + DELAY), t0).unwrap();
        let drained = b.mark_dead(0);
        assert!(b.is_dead(0));
        let drained_ids: Vec<(usize, Vec<u64>)> = drained
            .iter()
            .map(|(k, items)| (k.model, items.iter().map(|i| i.id).collect()))
            .collect();
        assert_eq!(drained_ids, vec![(0, vec![1]), (1, vec![2])], "drained per key, model order");
        assert_eq!(b.pending_for(0), 0);
        assert_eq!(b.pending_for(1), 1, "other devices keep their queues");
        let rejected = b.push(key(0, 0), it(4, t0 + DELAY), t0).unwrap_err();
        assert_eq!(rejected.id, 4, "the item comes back for re-placement");
        assert_eq!(b.pending_for(0), 0, "nothing queued behind the dead device");
        b.revive(0);
        assert!(!b.is_dead(0));
        b.push(key(0, 0), it(5, t0 + DELAY), t0).unwrap();
        assert_eq!(b.pending_for(0), 1);
    }

    #[test]
    fn future_enqueue_time_delays_the_due_check() {
        // Retry backoff re-enqueues with `now + backoff`: the key must
        // not become due until the backoff has elapsed.
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        let backoff = Duration::from_millis(10);
        b.push(key(0, 0), it(1, t0 + DELAY * 100), t0 + backoff).unwrap();
        assert!(b.pull(0, t0 + DELAY).is_none(), "backoff not elapsed");
        assert_eq!(b.next_due(0, t0), Some(backoff + DELAY));
        let cut = b.pull(0, t0 + backoff + DELAY).expect("due after backoff + idle delay");
        assert_eq!(ids(&cut.batch), vec![1]);
    }

    #[test]
    fn drain_all_empties_every_device_in_order() {
        let mut b: Batcher<It> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(1, 1), it(1, t0 + DELAY), t0).unwrap();
        b.push(key(0, 0), it(2, t0 + DELAY), t0).unwrap();
        b.push(key(0, 1), it(3, t0 + DELAY), t0).unwrap();
        b.push(key(0, 0), it(4, t0 + DELAY), t0).unwrap();
        let drained = b.drain_all();
        let drained_ids: Vec<((usize, usize), Vec<u64>)> = drained
            .iter()
            .map(|(k, items)| ((k.device, k.model), items.iter().map(|i| i.id).collect()))
            .collect();
        assert_eq!(
            drained_ids,
            vec![((0, 0), vec![2, 4]), ((1, 0), vec![3]), ((1, 1), vec![1])],
            "sorted by (device, model), FIFO within key"
        );
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn devices_pull_independently() {
        let mut b: Batcher<It> = Batcher::new(2, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), it(1, t0 + DELAY), t0).unwrap();
        b.push(key(0, 1), it(2, t0 + DELAY), t0).unwrap();
        b.push(key(0, 0), it(3, t0 + DELAY), t0).unwrap();
        let cut = b.pull(0, t0).expect("device 0 size-due");
        assert_eq!(ids(&cut.batch), vec![1, 3]);
        assert!(b.pull(1, t0).is_none(), "device 1 not due yet");
        assert_eq!(b.pending_for(1), 1);
    }
}
