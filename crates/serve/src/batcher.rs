//! The per-(model, device) request coalescer.
//!
//! [`Batcher`] is a pure data structure (no threads, no channels): the
//! server's batching thread drives it with wall-clock `Instant`s, and
//! the tests drive it with synthetic ones. A batch for a key flushes
//! when it reaches `max_batch` requests or when its oldest request has
//! waited `max_delay` — the classic size-or-deadline policy. Within a
//! key, requests stay in arrival (FIFO) order.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Coalescing key: one batch never mixes models or devices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BatchKey {
    /// Model id.
    pub model: usize,
    /// Device id.
    pub device: usize,
}

/// One flushed batch.
#[derive(Debug)]
pub struct Batch<T> {
    /// Coalescing key.
    pub key: BatchKey,
    /// Requests in arrival order.
    pub items: Vec<T>,
    /// When the first request of the batch arrived.
    pub opened_at: Instant,
}

struct PendingBatch<T> {
    items: Vec<T>,
    opened_at: Instant,
    seq: u64,
}

/// Size-or-deadline batcher over (model, device) keys.
///
/// Push requests with [`Batcher::push`] (which returns a batch the
/// moment a key reaches `max_batch`), flush deadline-expired batches
/// with [`Batcher::due`], and ask [`Batcher::next_deadline`] how long
/// the driving thread may sleep before the next flush is owed. The
/// struct holds no threads or channels, which is what makes its flush
/// behaviour property-testable with synthetic clocks.
pub struct Batcher<T> {
    max_batch: usize,
    max_delay: Duration,
    pending: HashMap<BatchKey, PendingBatch<T>>,
    next_seq: u64,
}

impl<T> Batcher<T> {
    /// Batcher flushing at `max_batch` requests (≥ 1) or after
    /// `max_delay` of waiting, whichever comes first.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Batcher { max_batch, max_delay, pending: HashMap::new(), next_seq: 0 }
    }

    /// Batch-size flush threshold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Deadline flush threshold.
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }

    /// Requests currently waiting across all keys.
    pub fn pending(&self) -> usize {
        self.pending.values().map(|b| b.items.len()).sum()
    }

    /// Adds a request to its key's open batch, returning the batch when
    /// it reached `max_batch` (size flush).
    pub fn push(&mut self, key: BatchKey, item: T, now: Instant) -> Option<Batch<T>> {
        let seq = self.next_seq;
        let entry = self.pending.entry(key).or_insert_with(|| {
            self.next_seq += 1;
            PendingBatch { items: Vec::new(), opened_at: now, seq }
        });
        entry.items.push(item);
        if entry.items.len() >= self.max_batch {
            let b = self.pending.remove(&key).expect("entry just inserted");
            Some(Batch { key, items: b.items, opened_at: b.opened_at })
        } else {
            None
        }
    }

    /// Flushes every batch whose oldest request has waited `max_delay`
    /// by `now` (deadline flush), oldest first.
    pub fn due(&mut self, now: Instant) -> Vec<Batch<T>> {
        let due_keys: Vec<BatchKey> = self
            .pending
            .iter()
            .filter(|(_, b)| now.saturating_duration_since(b.opened_at) >= self.max_delay)
            .map(|(&k, _)| k)
            .collect();
        self.take_sorted(due_keys)
    }

    /// Time until the next deadline flush, or `None` when nothing is
    /// pending. Zero when a batch is already overdue.
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        self.pending
            .values()
            .map(|b| (b.opened_at + self.max_delay).saturating_duration_since(now))
            .min()
    }

    /// Flushes everything (server shutdown), oldest batch first.
    pub fn drain(&mut self) -> Vec<Batch<T>> {
        let keys: Vec<BatchKey> = self.pending.keys().copied().collect();
        self.take_sorted(keys)
    }

    /// Removes the given keys, returning their batches ordered by batch
    /// open sequence (deterministic despite HashMap iteration order).
    fn take_sorted(&mut self, keys: Vec<BatchKey>) -> Vec<Batch<T>> {
        let mut taken: Vec<(u64, Batch<T>)> = keys
            .into_iter()
            .filter_map(|k| {
                self.pending
                    .remove(&k)
                    .map(|b| (b.seq, Batch { key: k, items: b.items, opened_at: b.opened_at }))
            })
            .collect();
        taken.sort_by_key(|(seq, _)| *seq);
        taken.into_iter().map(|(_, b)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELAY: Duration = Duration::from_millis(5);

    fn key(model: usize, device: usize) -> BatchKey {
        BatchKey { model, device }
    }

    #[test]
    fn size_flush_at_max_batch() {
        let mut b: Batcher<u32> = Batcher::new(3, DELAY);
        let t0 = Instant::now();
        assert!(b.push(key(0, 0), 1, t0).is_none());
        assert!(b.push(key(0, 0), 2, t0).is_none());
        let batch = b.push(key(0, 0), 3, t0).expect("third request flushes");
        assert_eq!(batch.items, vec![1, 2, 3]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_flush_after_max_delay() {
        let mut b: Batcher<u32> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(0, 0), 1, t0);
        b.push(key(0, 0), 2, t0);
        assert!(b.due(t0).is_empty(), "not due yet");
        assert!(b.due(t0 + DELAY / 2).is_empty(), "still inside the window");
        let flushed = b.due(t0 + DELAY);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].items, vec![1, 2]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn keys_batch_independently() {
        let mut b: Batcher<u32> = Batcher::new(2, DELAY);
        let t0 = Instant::now();
        assert!(b.push(key(0, 0), 1, t0).is_none());
        assert!(b.push(key(1, 0), 2, t0).is_none());
        assert!(b.push(key(0, 1), 3, t0).is_none());
        // Same model on a different device is a different batch.
        let batch = b.push(key(0, 0), 4, t0).expect("key (0,0) full");
        assert_eq!(batch.items, vec![1, 4]);
        assert_eq!(b.pending(), 2);
    }

    #[test]
    fn next_deadline_tracks_oldest_batch() {
        let mut b: Batcher<u32> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        assert_eq!(b.next_deadline(t0), None);
        b.push(key(0, 0), 1, t0);
        b.push(key(1, 0), 2, t0 + Duration::from_millis(2));
        assert_eq!(b.next_deadline(t0), Some(DELAY));
        // Past the first deadline the wait clamps to zero.
        assert_eq!(b.next_deadline(t0 + DELAY * 2), Some(Duration::ZERO));
    }

    #[test]
    fn drain_flushes_everything_oldest_first() {
        let mut b: Batcher<u32> = Batcher::new(8, DELAY);
        let t0 = Instant::now();
        b.push(key(1, 0), 1, t0);
        b.push(key(0, 1), 2, t0 + Duration::from_millis(1));
        b.push(key(1, 0), 3, t0 + Duration::from_millis(2));
        let all = b.drain();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key, key(1, 0));
        assert_eq!(all[0].items, vec![1, 3]);
        assert_eq!(all[1].items, vec![2]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn fifo_order_within_key_across_flushes() {
        let mut b: Batcher<u32> = Batcher::new(2, DELAY);
        let t0 = Instant::now();
        let mut seen = Vec::new();
        for i in 0..7 {
            if let Some(batch) = b.push(key(0, 0), i, t0) {
                seen.extend(batch.items);
            }
        }
        for batch in b.drain() {
            seen.extend(batch.items);
        }
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }
}
