//! # smartmem-serve
//!
//! A batched inference serving runtime on top of the SmartMem
//! compilation stack — the "heavy traffic" layer of the ROADMAP.
//! SmartMem's compile-time layout planning (LTE, layout selection,
//! tuning) only pays off in serving when compiled artifacts are reused
//! across many requests; this crate supplies exactly that reuse:
//! requests are admitted through a bounded queue, coalesced into
//! per-(model, device) batches, placed across a device pool by
//! estimated latency, and executed against artifacts compiled once
//! through a shared, single-flight [`CompileSession`].
//!
//! ```text
//!  clients ──► submit / try_submit           (bounded queue, admission control)
//!                   │
//!                   ▼
//!              ┌──────────┐   size-or-deadline coalescing,
//!              │ Batcher  │   FIFO within each (model, device) key
//!              └──────────┘
//!                   │ Batch<Pending>
//!                   ▼
//!              ┌───────────┐  roofline-estimate placement at admission,
//!              │ Scheduler │  outstanding-work accounting per device
//!              └───────────┘
//!               │    │    │        one worker thread per device
//!               ▼    ▼    ▼
//!            ┌────┐┌────┐┌────┐
//!            │ w0 ││ w1 ││ w2 │ …  (8 Gen 2, 835, Dimensity, Apple M1, …)
//!            └────┘└────┘└────┘
//!               │    │    │
//!               ▼    ▼    ▼
//!         ┌─────────────────────┐  compile-on-first-use, cache-warm
//!         │   CompileSession    │  steady state, in-flight dedup on
//!         └─────────────────────┘  cold bursts (misses == 1)
//! ```
//!
//! The runtime is std-only (`mpsc` channels + threads — the offline
//! container has no tokio/rayon): a batching thread drives the pure
//! [`Batcher`] state machine with `recv_timeout` deadlines, and one
//! worker thread per device executes batches, estimating device time
//! with the `smartmem-sim`-backed model reports.
//!
//! # Example
//!
//! ```
//! use smartmem_serve::{InferenceRequest, ModelSpec, ServeConfig, Server};
//! use smartmem_sim::DeviceConfig;
//! use smartmem_ir::{DType, GraphBuilder};
//!
//! let mut b = GraphBuilder::new("toy");
//! let x = b.input("x", &[1, 16, 32], DType::F16);
//! let w = b.weight("w", &[32, 32], DType::F16);
//! let mm = b.matmul(x, w);
//! b.output(mm);
//!
//! let server = Server::start(
//!     vec![ModelSpec::new("toy", b.finish())],
//!     vec![DeviceConfig::snapdragon_8gen2(), DeviceConfig::apple_m1()],
//!     ServeConfig::default(),
//! );
//! let tickets: Vec<_> =
//!     (0..16).map(|_| server.submit(InferenceRequest::new(0)).unwrap()).collect();
//! for t in tickets {
//!     let r = t.wait();
//!     assert!(r.error.is_none());
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 16);
//! assert!(stats.cache_hit_rate() > 0.8); // compile once, reuse 15 times
//! ```
//!
//! [`CompileSession`]: smartmem_core::CompileSession

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod request;
mod scheduler;
mod server;

pub use batcher::{Batch, BatchKey, Batcher};
pub use request::{InferenceRequest, InferenceResponse, ModelSpec, SubmitError, Ticket};
pub use scheduler::{quick_estimate_ns, DevicePool};
pub use server::{batch_exec_ms, ServeConfig, ServeStats, Server};
