//! # smartmem-serve
//!
//! An SLO-aware batched inference serving runtime on top of the
//! SmartMem compilation stack — the "heavy traffic" layer of the
//! ROADMAP. SmartMem's compile-time layout planning (LTE, layout
//! selection, tuning) only pays off in serving when compiled artifacts
//! are reused across many requests; this crate supplies exactly that
//! reuse: requests are admitted through a bounded queue under a
//! per-class latency budget ([`Priority`]), coalesced into
//! per-(model, device) batches that device workers *pull* when the
//! device frees up, ordered by slack with starvation aging, and
//! executed against artifacts compiled once through a shared,
//! single-flight [`CompileSession`]. Queued requests can be revoked at
//! any time through a [`CancelHandle`].
//!
//! ```text
//!  clients ──► submit / try_submit      (bounded queue, admission control,
//!                   │                    per-class deadline stamped)
//!                   ▼
//!              ┌──────────┐  pull-mode coalescing: a backlogged device
//!              │ Batcher  │  grows batches toward max_batch; max_delay
//!              └──────────┘  is only the idle-latency bound; cuts are
//!                ▲   CancelHandle        slack-ordered with aging;
//!                │   drops queued /      cancelled requests dropped
//!                │   cut requests        at cut time
//!              pull
//!               │ Batch<Pending>
//!               ▼
//!              ┌───────────┐  roofline-estimate placement at admission,
//!              │ Scheduler │  per-class outstanding-work accounting
//!              └───────────┘
//!               │    │    │        one worker thread per device
//!               ▼    ▼    ▼
//!            ┌────┐┌────┐┌────┐
//!            │ w0 ││ w1 ││ w2 │ …  (8 Gen 2, 835, Dimensity, Apple M1, …)
//!            └────┘└────┘└────┘
//!               │    │    │
//!               ▼    ▼    ▼
//!         ┌─────────────────────┐  compile-on-first-use, cache-warm
//!         │   CompileSession    │  steady state, in-flight dedup on
//!         └─────────────────────┘  cold bursts (misses == 1)
//! ```
//!
//! The runtime is std-only (mutex + condvars + threads — the offline
//! container has no tokio/rayon): submission pushes into one pure
//! [`Batcher`] state machine behind a mutex, and one worker thread per
//! device pulls batches from it, estimating device time with the
//! `smartmem-sim`-backed model reports. See the "Serving lifecycle"
//! section of `docs/ARCHITECTURE.md` for the request state diagram.
//!
//! # Example
//!
//! ```
//! use smartmem_serve::{InferenceRequest, ModelSpec, Priority, ServeConfig, Server};
//! use smartmem_sim::DeviceConfig;
//! use smartmem_ir::{DType, GraphBuilder};
//!
//! let mut b = GraphBuilder::new("toy");
//! let x = b.input("x", &[1, 16, 32], DType::F16);
//! let w = b.weight("w", &[32, 32], DType::F16);
//! let mm = b.matmul(x, w);
//! b.output(mm);
//!
//! let server = Server::start(
//!     vec![ModelSpec::new("toy", b.finish())],
//!     vec![DeviceConfig::snapdragon_8gen2(), DeviceConfig::apple_m1()],
//!     ServeConfig::default(),
//! );
//! let tickets: Vec<_> = (0..16)
//!     .map(|i| {
//!         let class = if i % 4 == 0 { Priority::BestEffort } else { Priority::Interactive };
//!         server.submit(InferenceRequest::new(0).with_priority(class)).unwrap()
//!     })
//!     .collect();
//! for t in tickets {
//!     let r = t.wait();
//!     assert!(r.error.is_none() && !r.cancelled);
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 16);
//! assert_eq!(stats.class(Priority::Interactive).completed, 12);
//! assert_eq!(stats.class(Priority::BestEffort).completed, 4);
//! assert!(stats.cache_hit_rate() > 0.8); // compile once, reuse 15 times
//! ```
//!
//! [`CompileSession`]: smartmem_core::CompileSession

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod decode;
mod request;
mod retry;
mod router;
mod scheduler;
mod server;

pub use batcher::{Batch, BatchItem, BatchKey, Batcher, Cut, CutPolicy};
pub use decode::{DecodeError, DecodeSession};
pub use request::{
    InferenceRequest, InferenceResponse, ModelSpec, Priority, SubmitError, Ticket, REPLICA_KILLED,
};
pub use retry::{AdmissionControl, RetryDecision, RetryPolicy};
pub use router::{Router, RouterStats, RouterTicket};
pub use scheduler::{quick_estimate_ns, DevicePool};
pub use server::{
    batch_exec_ms, histogram_mean, CancelHandle, ClassDeadlines, ClassStats, ServeConfig,
    ServeStats, Server, TelemetryConfig, FAULT_CATEGORY, RECOVERY_CATEGORY,
};
