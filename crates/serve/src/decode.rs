//! Continuous-batching decode sessions.
//!
//! An autoregressive generation is a loop: run the model at the
//! current sequence length, append one token, repeat. Whole-request
//! batching submits the loop as a single request
//! (`decode_steps = n`) and holds every batch-mate hostage for all
//! `n` device iterations. A [`DecodeSession`] instead re-enters the
//! batcher *between* iterations — each step is its own
//! `decode_steps = 1` request, so the batcher is free to mix it with
//! whatever prefill and decode traffic is pending at that moment.
//! Continuous batching is not a new scheduler; it emerges from many
//! sessions stepping concurrently against the same shared [`Server`].
//!
//! Sequence lengths are quantized by the bucket table the models were
//! compiled under: a session carries one registered model per bucket
//! and routes each step to the smallest bucket that fits the grown
//! sequence. Crossing a bucket boundary is cheap by construction —
//! the tentpole group-cache sharing makes the next bucket's artifact
//! a near-pure replay.

use crate::request::{InferenceRequest, InferenceResponse, Priority, SubmitError};
use crate::server::Server;
use std::fmt;

/// Why a decode step could not produce a token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The grown sequence no longer fits the largest bucket this
    /// session was given; the generation is over.
    ContextFull {
        /// Sequence length reached before the failed step.
        seq: usize,
        /// Largest bucket ceiling available to the session.
        ceiling: usize,
    },
    /// The server refused the step's submission.
    Submit(SubmitError),
    /// The step executed but failed (the response's `error` string).
    Failed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::ContextFull { seq, ceiling } => {
                write!(f, "context full: sequence {seq} at bucket ceiling {ceiling}")
            }
            DecodeError::Submit(e) => write!(f, "decode step rejected: {e}"),
            DecodeError::Failed(e) => write!(f, "decode step failed: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One autoregressive generation, stepped one token at a time through
/// a shared [`Server`] — the continuous-batching half of the decode
/// A/B (see [`InferenceRequest::decode_steps`] for the whole-request
/// half).
///
/// `buckets` maps each available bucket ceiling to the server model id
/// compiled for that bucket; each step routes to the smallest bucket
/// that fits the sequence *after* the new token. The session is
/// single-threaded by design — concurrency comes from running many
/// sessions on many threads, which is exactly the offered load the
/// batcher coalesces.
pub struct DecodeSession<'a> {
    server: &'a Server,
    /// `(bucket ceiling, model id)`, ascending by ceiling.
    buckets: Vec<(usize, usize)>,
    seq: usize,
    priority: Priority,
    tag: Option<u64>,
    tokens: u64,
    step_wall_ms: Vec<f64>,
}

impl<'a> DecodeSession<'a> {
    /// Starts a session at `prompt_len` tokens of context. `buckets`
    /// pairs each bucket ceiling with the model id registered for it;
    /// order does not matter (they are sorted here).
    pub fn new(server: &'a Server, buckets: &[(usize, usize)], prompt_len: usize) -> Self {
        let mut buckets = buckets.to_vec();
        buckets.sort_unstable();
        DecodeSession {
            server,
            buckets,
            seq: prompt_len,
            priority: Priority::default(),
            tag: None,
            tokens: 0,
            step_wall_ms: Vec::new(),
        }
    }

    /// Sets the priority class every step is admitted under.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the stable fault-injection tag carried by every step.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Current sequence length (prompt + generated tokens).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Tokens generated so far.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Wall-clock milliseconds of each completed step, in order —
    /// the per-step latency distribution a decode bench reports
    /// (`decode.p99_step_ms`).
    pub fn step_wall_ms(&self) -> &[f64] {
        &self.step_wall_ms
    }

    /// The `(bucket ceiling, model id)` the *next* step would route
    /// to, or `None` if the context is full.
    pub fn next_bucket(&self) -> Option<(usize, usize)> {
        let next = self.seq + 1;
        self.buckets.iter().copied().find(|&(b, _)| b >= next)
    }

    /// Runs one decode iteration: submits a `decode_steps = 1` request
    /// against the bucket fitting the grown sequence, waits for it,
    /// and on success appends the token. The batcher is free to
    /// coalesce this step with any concurrent prefill or decode
    /// traffic on the same (model, device) key — that interleaving is
    /// continuous batching.
    pub fn step(&mut self) -> Result<InferenceResponse, DecodeError> {
        let next = self.seq + 1;
        let (_, model) = self.next_bucket().ok_or(DecodeError::ContextFull {
            seq: self.seq,
            ceiling: self.buckets.last().map_or(0, |&(b, _)| b),
        })?;
        let mut req =
            InferenceRequest::new(model).with_decode_steps(1).with_priority(self.priority);
        if let Some(tag) = self.tag {
            req = req.with_tag(tag);
        }
        let response = self.server.submit(req).map_err(DecodeError::Submit)?.wait();
        if let Some(e) = &response.error {
            return Err(DecodeError::Failed(e.clone()));
        }
        if response.cancelled {
            return Err(DecodeError::Failed("cancelled".to_string()));
        }
        self.seq = next;
        self.tokens += 1;
        self.step_wall_ms.push(response.wall_ms);
        Ok(response)
    }

    /// Steps `n` times (or until the context fills or a step fails),
    /// returning how many tokens were generated.
    pub fn generate(&mut self, n: usize) -> Result<usize, DecodeError> {
        for i in 0..n {
            match self.step() {
                Ok(_) => {}
                Err(DecodeError::ContextFull { .. }) if i > 0 => return Ok(i),
                Err(e) => return Err(e),
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSpec;
    use crate::server::ServeConfig;
    use smartmem_ir::{BucketTable, DType, Graph, GraphBuilder};
    use smartmem_sim::DeviceConfig;

    /// A minimal attention block with a symbolic sequence axis: the
    /// `QKᵀ` matmul (`trans_b = true`) marks `k` as the KV tensor.
    fn attn_graph(seq: usize, table: &BucketTable) -> Graph {
        let mut b = GraphBuilder::new(format!("attn-s{seq}"));
        let q = b.input("q", &[4, seq, 48], DType::F16);
        let k = b.input("k", &[4, seq, 48], DType::F16);
        let v = b.input("v", &[4, seq, 48], DType::F16);
        let scores = b.matmul_t(q, k, false, true);
        let p = b.softmax(scores, 2);
        let o = b.matmul(p, v);
        b.output(o);
        b.finish().with_sym_dim("seq", table, seq).expect("seq binds")
    }

    fn bucketed_server() -> Server {
        let table = BucketTable::new(vec![4, 8]).expect("valid table");
        let models = vec![
            ModelSpec::new("attn-b4", attn_graph(4, &table)),
            ModelSpec::new("attn-b8", attn_graph(8, &table)),
        ];
        Server::start(models, vec![DeviceConfig::snapdragon_8gen2()], ServeConfig::default())
    }

    #[test]
    fn session_crosses_bucket_boundary_and_fills_context() {
        let server = bucketed_server();
        let mut session = DecodeSession::new(&server, &[(8, 1), (4, 0)], 2);
        assert_eq!(session.next_bucket(), Some((4, 0)), "prompt 2 fits the small bucket");
        assert_eq!(session.generate(5).expect("generate"), 5);
        assert_eq!(session.seq(), 7);
        assert_eq!(session.tokens(), 5);
        assert_eq!(session.step_wall_ms().len(), 5);
        // Steps 3 and 4 fit bucket 4; steps 5..=7 crossed into bucket 8.
        assert_eq!(session.next_bucket(), Some((8, 1)));
        session.step().expect("last slot of the large bucket");
        assert_eq!(session.seq(), 8);
        let err = session.step().expect_err("context is full");
        assert_eq!(err, DecodeError::ContextFull { seq: 8, ceiling: 8 });
        // A partial generate reports how far it got.
        let stats = server.shutdown();
        assert_eq!(stats.decode_tokens, 6, "one token per successful step");
        assert!(stats.decode_steps >= 6, "every decode batch ran at least one iteration");
    }

    #[test]
    fn whole_request_decode_holds_the_batch_hostage() {
        let server = bucketed_server();
        let single = server.submit(InferenceRequest::new(0)).expect("submit").wait();
        assert!(single.error.is_none());
        let hostage =
            server.submit(InferenceRequest::new(0).with_decode_steps(4)).expect("submit").wait();
        assert!(hostage.error.is_none());
        let ratio = hostage.exec_ms / single.exec_ms;
        assert!(
            (ratio - 4.0).abs() < 1e-6,
            "a 4-step decode request must cost 4 device iterations, got {ratio}x"
        );
        let stats = server.shutdown();
        assert_eq!(stats.decode_tokens, 4);
        assert_eq!(stats.decode_steps, 4);
    }

    #[test]
    fn kv_cache_layout_is_memoized_per_model_device() {
        let table = BucketTable::new(vec![4, 8]).expect("valid table");
        let models = vec![
            ModelSpec::new("attn-b8", attn_graph(8, &table)),
            // A static graph has no symbolic axis and therefore no KV
            // cache to lay out.
            ModelSpec::new("static", {
                let mut b = GraphBuilder::new("static");
                let x = b.input("x", &[1, 16, 32], DType::F16);
                let w = b.weight("w", &[32, 32], DType::F16);
                let mm = b.matmul(x, w);
                b.output(mm);
                b.finish()
            }),
        ];
        let server =
            Server::start(models, vec![DeviceConfig::snapdragon_8gen2()], ServeConfig::default());
        let first = server.kv_cache_layout(0, 0).expect("sym attention graph has a KV layout");
        let second = server.kv_cache_layout(0, 0).expect("memoized");
        assert_eq!(format!("{first:?}"), format!("{second:?}"), "the choice is stable");
        assert_eq!(server.stats().kv_layouts, 1, "two lookups, one memo entry");
        assert!(server.kv_cache_layout(1, 0).is_none(), "static graph has no KV cache");
        assert!(server.kv_cache_layout(7, 0).is_none(), "unknown model");
        assert!(server.kv_cache_layout(0, 9).is_none(), "unknown device");
        server.shutdown();
    }
}
