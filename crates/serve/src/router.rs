//! A least-loaded router over N server replicas — the fleet tier of
//! the chaos harness.
//!
//! Each replica is a full [`Server`] (own device pool, own workers)
//! built from the same model set and [`ServeConfig`]. When the config
//! carries a `cache_dir`, every replica shares the persistent artifact
//! cache, so a replica restarted after a kill warm-starts: its first
//! request hits the disk cache instead of recompiling.
//!
//! Routing is least-loaded: a submission goes to the alive replica
//! with the fewest outstanding router-submitted requests (ties to the
//! lowest index, keeping single-replica routing deterministic). A
//! killed replica answers its queued requests [`REPLICA_KILLED`];
//! [`RouterTicket::wait`] catches exactly that error and resubmits the
//! request to a surviving replica, up to a bounded reroute budget —
//! so client code just sees a slower success.

use crate::request::{InferenceRequest, InferenceResponse, SubmitError, REPLICA_KILLED};
use crate::server::{ServeConfig, ServeStats, Server};
use crate::ModelSpec;
use smartmem_ir::Graph;
use smartmem_sim::DeviceConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One replica slot: the live server (or `None` while down) plus the
/// router's view of its load.
struct Replica {
    server: Mutex<Option<Arc<Server>>>,
    /// Router-submitted requests not yet answered to a waiter. Not
    /// reset on restart: increments and decrements are balanced per
    /// ticket, so the counter stays meaningful across generations.
    outstanding: AtomicU64,
}

/// Least-loaded router over N [`Server`] replicas; see the module
/// docs. Shareable across threads by reference (`submit` and `wait`
/// take `&self`).
pub struct Router {
    replicas: Vec<Replica>,
    /// Blueprint for (re)building a replica: model name + graph pairs.
    models: Vec<(String, Graph)>,
    devices: Vec<DeviceConfig>,
    config: ServeConfig,
    /// Killed replica generations, retired at kill time. The handles
    /// are kept (not snapshotted) because a killed server may still be
    /// draining in-flight batches; fleet stats read them live so late
    /// completions are never lost.
    retired: Mutex<Vec<Arc<Server>>>,
    /// How many times a [`RouterTicket::wait`] resubmitted a
    /// [`REPLICA_KILLED`] request elsewhere.
    rerouted: AtomicU64,
    kills: AtomicU64,
    restarts: AtomicU64,
    /// Max resubmissions per ticket before a [`REPLICA_KILLED`] answer
    /// is returned to the caller as-is.
    reroute_budget: u32,
}

/// A ticket bound to the router: like [`crate::Ticket`], but
/// [`RouterTicket::wait`] transparently resubmits the request to a
/// surviving replica when its original replica was killed around it.
pub struct RouterTicket<'a> {
    router: &'a Router,
    ticket: crate::Ticket,
    replica: usize,
    req: InferenceRequest,
    reroutes: u32,
}

/// Fleet-wide statistics: scalar totals over every replica generation
/// (live and killed), plus the underlying per-generation snapshots.
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// Requests accepted, summed over all generations. A rerouted
    /// request counts once per replica that accepted it.
    pub submitted: u64,
    /// Successful answers (`error == None`) over all generations.
    pub completed: u64,
    /// Terminal failures over all generations — including the
    /// [`REPLICA_KILLED`] answers that were then rerouted to a success
    /// elsewhere.
    pub failed: u64,
    /// Cancelled requests over all generations.
    pub cancelled: u64,
    /// Requests shed by admission control over all generations.
    pub shed: u64,
    /// Retry events over all generations.
    pub retried: u64,
    /// Requests that completed after ≥ 1 failed attempt.
    pub recovered: u64,
    /// Requests answered [`REPLICA_KILLED`], over all generations.
    pub killed: u64,
    /// Tickets resubmitted to another replica after a kill.
    pub rerouted: u64,
    /// [`Router::kill`] calls that actually took a replica down.
    pub kills: u64,
    /// [`Router::restart`] calls that actually brought one back.
    pub restarts: u64,
    /// Snapshots of the live replicas, in slot order, followed by the
    /// final stats of every killed generation.
    pub per_replica: Vec<ServeStats>,
}

impl Router {
    /// Starts `replicas` identical servers. Panics when `replicas` is
    /// zero or when `models`/`devices` is empty (each [`Server::start`]
    /// already enforces the latter).
    pub fn start(
        replicas: usize,
        models: Vec<ModelSpec>,
        devices: Vec<DeviceConfig>,
        config: ServeConfig,
    ) -> Self {
        assert!(replicas > 0, "start at least one replica");
        let blueprint: Vec<(String, Graph)> =
            models.into_iter().map(|m| (m.name, m.graph)).collect();
        let router = Router {
            replicas: (0..replicas)
                .map(|_| Replica { server: Mutex::new(None), outstanding: AtomicU64::new(0) })
                .collect(),
            models: blueprint,
            devices,
            config,
            retired: Mutex::new(Vec::new()),
            rerouted: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            reroute_budget: 8,
        };
        for slot in &router.replicas {
            *slot.server.lock().expect("replica slot poisoned") = Some(router.build_server());
        }
        router
    }

    /// Caps how many times one ticket may be resubmitted after kills.
    #[must_use]
    pub fn with_reroute_budget(mut self, budget: u32) -> Self {
        self.reroute_budget = budget;
        self
    }

    fn build_server(&self) -> Arc<Server> {
        let models = self
            .models
            .iter()
            .map(|(name, graph)| ModelSpec::new(name.clone(), graph.clone()))
            .collect();
        Arc::new(Server::start(models, self.devices.clone(), self.config.clone()))
    }

    /// Number of replica slots (alive or down).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the router has no replica slots (never true: `start`
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The live server in slot `replica`, if any — for warmup pinning
    /// and per-replica inspection.
    pub fn server(&self, replica: usize) -> Option<Arc<Server>> {
        self.replicas[replica].server.lock().expect("replica slot poisoned").clone()
    }

    /// Alive replica indices, ascending.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.replicas.len()).filter(|&r| self.server(r).is_some()).collect()
    }

    /// Submits to the least-loaded alive replica (ties to the lowest
    /// index), with backpressure.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] when no replica is alive;
    /// otherwise whatever the chosen replica's [`Server::submit`]
    /// returns (a replica killed mid-submission is retried on the
    /// survivors automatically).
    pub fn submit(&self, req: InferenceRequest) -> Result<RouterTicket<'_>, SubmitError> {
        let (replica, ticket) = self.route(req)?;
        Ok(RouterTicket { router: self, ticket, replica, req, reroutes: 0 })
    }

    /// Picks the least-loaded alive replica and submits there; on a
    /// shutting-down replica (killed between pick and submit) moves to
    /// the next-best survivor.
    fn route(&self, req: InferenceRequest) -> Result<(usize, crate::Ticket), SubmitError> {
        let mut tried = vec![false; self.replicas.len()];
        loop {
            let mut best: Option<(u64, usize, Arc<Server>)> = None;
            for (r, slot) in self.replicas.iter().enumerate() {
                if tried[r] {
                    continue;
                }
                if let Some(server) = &*slot.server.lock().expect("replica slot poisoned") {
                    let load = slot.outstanding.load(Ordering::Relaxed);
                    if best.as_ref().map_or(true, |(b, _, _)| load < *b) {
                        best = Some((load, r, Arc::clone(server)));
                    }
                }
            }
            let Some((_, r, server)) = best else {
                return Err(SubmitError::ShuttingDown);
            };
            self.replicas[r].outstanding.fetch_add(1, Ordering::Relaxed);
            match server.submit(req) {
                Ok(ticket) => return Ok((r, ticket)),
                Err(err) => {
                    self.replicas[r].outstanding.fetch_sub(1, Ordering::Relaxed);
                    if err == SubmitError::ShuttingDown {
                        // Killed under us: try the survivors.
                        tried[r] = true;
                        continue;
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Kills replica `replica` hard (see [`Server::kill`]): its queued
    /// requests are answered [`REPLICA_KILLED`] — and their waiting
    /// [`RouterTicket`]s resubmit them to the survivors — while its
    /// in-flight batches finish. The generation is retired but its
    /// stats stay visible to [`Router::stats`]. Returns `false` when
    /// the slot is already down.
    pub fn kill(&self, replica: usize) -> bool {
        let Some(server) =
            self.replicas[replica].server.lock().expect("replica slot poisoned").take()
        else {
            return false;
        };
        server.kill();
        self.kills.fetch_add(1, Ordering::Relaxed);
        self.retired.lock().expect("retired generations poisoned").push(server);
        true
    }

    /// Brings a killed slot back with a fresh server generation. With
    /// a shared `cache_dir` the newcomer warm-starts from the
    /// artifacts its predecessors compiled. Returns `false` when the
    /// slot is still alive.
    pub fn restart(&self, replica: usize) -> bool {
        let mut slot = self.replicas[replica].server.lock().expect("replica slot poisoned");
        if slot.is_some() {
            return false;
        }
        *slot = Some(self.build_server());
        self.restarts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Fleet-wide statistics over every generation (see
    /// [`RouterStats`]).
    pub fn stats(&self) -> RouterStats {
        let mut per_replica: Vec<ServeStats> =
            (0..self.replicas.len()).filter_map(|r| self.server(r).map(|s| s.stats())).collect();
        per_replica.extend(
            self.retired.lock().expect("retired generations poisoned").iter().map(|s| s.stats()),
        );
        let sum = |f: fn(&ServeStats) -> u64| per_replica.iter().map(f).sum();
        RouterStats {
            submitted: sum(|s| s.submitted),
            completed: sum(|s| s.completed),
            failed: sum(|s| s.failed),
            cancelled: sum(|s| s.cancelled),
            shed: sum(|s| s.shed),
            retried: sum(|s| s.retried),
            recovered: sum(|s| s.recovered),
            killed: sum(|s| s.killed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            per_replica,
        }
    }

    /// Shuts every live replica down and returns the final fleet
    /// statistics (live generations drained, retired generations
    /// included).
    pub fn shutdown(self) -> RouterStats {
        // Drain the live slots into the graveyard, then resolve every
        // generation: sole ownership lets `Server::shutdown` join the
        // workers and give final stats; a raced Arc still drains (its
        // Drop joins) and its stats are read after the kill settled.
        for slot in &self.replicas {
            if let Some(server) = slot.server.lock().expect("replica slot poisoned").take() {
                self.retired.lock().expect("retired generations poisoned").push(server);
            }
        }
        let generations = self.retired.into_inner().expect("retired generations poisoned");
        let per_replica: Vec<ServeStats> = generations
            .into_iter()
            .map(|server| match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                Err(server) => server.stats(),
            })
            .collect();
        let sum = |f: fn(&ServeStats) -> u64| per_replica.iter().map(f).sum();
        RouterStats {
            submitted: sum(|s| s.submitted),
            completed: sum(|s| s.completed),
            failed: sum(|s| s.failed),
            cancelled: sum(|s| s.cancelled),
            shed: sum(|s| s.shed),
            retried: sum(|s| s.retried),
            recovered: sum(|s| s.recovered),
            killed: sum(|s| s.killed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            per_replica,
        }
    }
}

impl RouterTicket<'_> {
    /// The replica currently holding this request.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// Blocks until a response arrives, transparently resubmitting the
    /// request to a surviving replica when the answer is
    /// [`REPLICA_KILLED`] (bounded by the router's reroute budget).
    /// The final response's `retries` field still counts per-replica
    /// execution retries, not reroutes.
    pub fn wait(mut self) -> InferenceResponse {
        loop {
            let response = self.ticket.wait();
            self.router.replicas[self.replica].outstanding.fetch_sub(1, Ordering::Relaxed);
            let was_killed = response.error.as_deref() == Some(REPLICA_KILLED);
            if !was_killed || self.reroutes >= self.router.reroute_budget {
                return response;
            }
            match self.router.route(self.req) {
                Ok((replica, ticket)) => {
                    self.router.rerouted.fetch_add(1, Ordering::Relaxed);
                    self.reroutes += 1;
                    self.replica = replica;
                    self.ticket = ticket;
                }
                // No survivors to take it: the kill answer stands.
                Err(_) => return response,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use smartmem_ir::{DType, GraphBuilder};

    fn toy_model(name: &str) -> ModelSpec {
        let mut b = GraphBuilder::new(name);
        let x = b.input("x", &[1, 16, 32], DType::F16);
        let w = b.weight("w", &[32, 32], DType::F16);
        let mm = b.matmul(x, w);
        b.output(mm);
        ModelSpec::new(name, b.finish())
    }

    fn two_replica_router() -> Router {
        Router::start(
            2,
            vec![toy_model("toy")],
            vec![DeviceConfig::apple_m1()],
            ServeConfig::default(),
        )
    }

    #[test]
    fn routes_spread_by_load_and_complete() {
        let router = two_replica_router();
        let tickets: Vec<_> =
            (0..8).map(|_| router.submit(InferenceRequest::new(0)).expect("submit")).collect();
        for t in tickets {
            let r = t.wait();
            assert!(r.error.is_none() && !r.cancelled);
        }
        let stats = router.shutdown();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.per_replica.len(), 2);
    }

    #[test]
    fn killed_replicas_requests_complete_elsewhere() {
        use std::time::Duration;
        // A long idle delay keeps queued requests parked until we kill.
        let config = ServeConfig { max_delay: Duration::from_secs(5), ..ServeConfig::default() };
        let router =
            Router::start(2, vec![toy_model("toy")], vec![DeviceConfig::apple_m1()], config);
        // Saturate replica 0's routing preference, then kill it: every
        // ticket parked there must still come back as a success.
        let tickets: Vec<_> = (0..6)
            .map(|_| {
                router.submit(InferenceRequest::new(0).with_priority(Priority::Batch)).unwrap()
            })
            .collect();
        let parked_on_zero = tickets.iter().filter(|t| t.replica() == 0).count();
        assert!(parked_on_zero > 0, "least-loaded routing must use replica 0");
        assert!(router.kill(0));
        assert!(!router.kill(0), "second kill is a no-op");
        for t in tickets {
            let r = t.wait();
            assert!(r.error.is_none(), "rerouted to a survivor, got {:?}", r.error);
        }
        assert!(router.restart(0), "a killed slot restarts");
        assert!(!router.restart(0), "a live slot does not");
        let stats = router.shutdown();
        assert_eq!(stats.rerouted, stats.killed, "every killed request was rerouted");
        assert_eq!(stats.kills, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.completed, 6, "all client requests completed despite the kill");
    }
}
