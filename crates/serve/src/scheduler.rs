//! Latency-estimate-driven placement across the device pool.
//!
//! Placement must be cheap (it runs on the submission path, before the
//! model is ever compiled), so it uses the simulator's *roofline* bound
//! — `min(peak, bandwidth × intensity)` from `smartmem_sim` — rather
//! than a full compile + trace estimate: enough signal to route a
//! SD-UNet away from a Dimensity 700 while keeping the fast path to a
//! few atomic reads. Each device carries an outstanding-work account in
//! estimated nanoseconds, split by [`Priority`] class; a request is
//! placed on the device minimizing `outstanding + estimate(model,
//! device)` — i.e. earliest estimated completion, which is what
//! maximizes the slack left to meet the request's class deadline — and
//! the account is settled when the request completes or is cancelled.
//!
//! Placement picks the *device*; the *order* in which queued work is
//! cut for a device is the batcher's slack ordering (see
//! `crate::batcher`). Together they replace the old pure-FIFO dispatch.

use crate::request::{ModelSpec, Priority};
use smartmem_sim::{roofline_gmacs, DeviceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Conservative achieved fraction of the roofline bound (kernels do not
/// run at peak; the tuner typically lands around half).
const ACHIEVED_FRACTION: f64 = 0.5;

/// Host-link bandwidth (bytes/ns ≡ GB/s) for staging model data onto a
/// device *without* unified memory (PCIe 4.0 x16 class). Unified-memory
/// devices — every mobile SoC, Apple silicon, server NPUs with pooled
/// DRAM — share one address space and stage nothing.
const HOST_LINK_BYTES_PER_NS: f64 = 32.0;

/// Roofline-based latency estimate of one inference in nanoseconds —
/// no compilation required. Branches only on device *capabilities*:
/// the texture path raises the bandwidth roof where present, and
/// discrete (non-unified-memory) devices pay a host-link staging cost
/// on top of the kernel time.
pub fn quick_estimate_ns(spec: &ModelSpec, device: &DeviceConfig) -> f64 {
    let intensity = spec.macs as f64 / spec.bytes.max(1) as f64;
    // GMACs/s ≡ MACs/ns, so time = MACs / roofline.
    let roof = roofline_gmacs(device, intensity, device.caps.texture_path).max(1e-6);
    let work_ns = spec.macs as f64 / (roof * ACHIEVED_FRACTION);
    let launch_ns = spec.kernels_hint as f64 * device.kernel_launch_us * 1e3;
    let staging_ns =
        if device.caps.unified_memory { 0.0 } else { spec.bytes as f64 / HOST_LINK_BYTES_PER_NS };
    work_ns + launch_ns + staging_ns
}

struct DeviceEntry {
    config: DeviceConfig,
    load_ns: AtomicU64,
    class_load_ns: [AtomicU64; 3],
    /// Cleared when the device dies (injected fault or operator
    /// retirement): dead devices are skipped by placement until revived.
    alive: AtomicBool,
}

/// The scheduler's device pool: configurations plus an outstanding-work
/// account per device, broken down by priority class. Thread-safe.
///
/// Admission calls [`DevicePool::place`] with per-device latency
/// estimates and the request's class; the pool picks the device
/// minimizing *outstanding work + this request's estimate* and charges
/// it. Completion or cancellation pays the charge back via
/// [`DevicePool::discharge`], so the accounts track work that is
/// genuinely still queued — and [`DevicePool::class_load_ns`] shows
/// which class the backlog belongs to.
pub struct DevicePool {
    entries: Vec<DeviceEntry>,
}

impl DevicePool {
    /// Pool over the given device configurations.
    pub fn new(devices: Vec<DeviceConfig>) -> Self {
        DevicePool {
            entries: devices
                .into_iter()
                .map(|config| DeviceEntry {
                    config,
                    load_ns: AtomicU64::new(0),
                    class_load_ns: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                    alive: AtomicBool::new(true),
                })
                .collect(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Device configuration by id.
    pub fn device(&self, id: usize) -> &DeviceConfig {
        &self.entries[id].config
    }

    /// Outstanding estimated work on a device, in nanoseconds, over all
    /// classes.
    pub fn load_ns(&self, id: usize) -> u64 {
        self.entries[id].load_ns.load(Ordering::Relaxed)
    }

    /// Outstanding estimated work one priority class has queued on a
    /// device, in nanoseconds.
    pub fn class_load_ns(&self, id: usize, class: Priority) -> u64 {
        self.entries[id].class_load_ns[class.index()].load(Ordering::Relaxed)
    }

    /// Whether a device is alive (placeable).
    pub fn is_alive(&self, id: usize) -> bool {
        self.entries[id].alive.load(Ordering::Relaxed)
    }

    /// Marks a device dead so placement skips it. Returns whether the
    /// call transitioned it (false if already dead). The pool itself
    /// allows killing every device — the *server* enforces keeping at
    /// least one alive, because only it knows whether a kill is an
    /// injected fault (suppressible) or an operator order.
    pub fn mark_dead(&self, id: usize) -> bool {
        self.entries[id].alive.swap(false, Ordering::Relaxed)
    }

    /// Revives a dead device (replica warm restart).
    pub fn revive(&self, id: usize) {
        self.entries[id].alive.store(true, Ordering::Relaxed);
    }

    /// Number of alive devices.
    pub fn alive_count(&self) -> usize {
        self.entries.iter().filter(|e| e.alive.load(Ordering::Relaxed)).count()
    }

    /// Ids of the currently dead devices, ascending.
    pub fn dead_devices(&self) -> Vec<usize> {
        (0..self.entries.len()).filter(|&i| !self.is_alive(i)).collect()
    }

    /// Best (smallest) estimated completion time across *alive*
    /// devices: `min(outstanding + estimate)` — the admission-control
    /// slack probe. Falls back to all devices when none is alive.
    pub fn best_completion_ns(&self, estimates_ns: &[f64]) -> f64 {
        assert_eq!(estimates_ns.len(), self.entries.len(), "one estimate per device");
        let completion =
            |(e, &est): (&DeviceEntry, &f64)| e.load_ns.load(Ordering::Relaxed) as f64 + est;
        let best = self
            .entries
            .iter()
            .zip(estimates_ns)
            .filter(|(e, _)| e.alive.load(Ordering::Relaxed))
            .map(completion)
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            best
        } else {
            self.entries.iter().zip(estimates_ns).map(completion).fold(f64::INFINITY, f64::min)
        }
    }

    /// Places one inference: picks the device minimizing estimated
    /// completion time (outstanding work + this model's estimate) —
    /// maximizing the slack left under the request's class deadline —
    /// and charges the estimate to its account under `class`. Returns
    /// `(device id, charged estimate in ns)`; settle with
    /// [`DevicePool::discharge`] when the request completes or is
    /// cancelled.
    ///
    /// # Panics
    ///
    /// Panics on an empty pool.
    pub fn place(&self, estimates_ns: &[f64], class: Priority) -> (usize, u64) {
        assert_eq!(estimates_ns.len(), self.entries.len(), "one estimate per device");
        // Dead devices are skipped; with every device dead (the server
        // never lets injected faults get there, but an operator might)
        // fall back to ignoring the alive flags rather than stranding
        // the request.
        let candidate = |alive_only: bool| {
            self.entries
                .iter()
                .zip(estimates_ns)
                .enumerate()
                .filter(|(_, (e, _))| !alive_only || e.alive.load(Ordering::Relaxed))
                .map(|(i, (e, &est))| (i, est, e.load_ns.load(Ordering::Relaxed) as f64 + est))
                .min_by(|a, b| a.2.total_cmp(&b.2))
                .map(|(i, est, _)| (i, est))
        };
        let (best, est) =
            candidate(true).or_else(|| candidate(false)).expect("device pool must not be empty");
        let charged = est.max(0.0) as u64;
        self.charge(best, charged, class);
        (best, charged)
    }

    /// Charges estimated work to a pinned device under `class`.
    pub fn charge(&self, id: usize, est_ns: u64, class: Priority) {
        self.entries[id].load_ns.fetch_add(est_ns, Ordering::Relaxed);
        self.entries[id].class_load_ns[class.index()].fetch_add(est_ns, Ordering::Relaxed);
    }

    /// Settles a completed (or cancelled) request's charge.
    pub fn discharge(&self, id: usize, est_ns: u64, class: Priority) {
        let saturating_sub = |counter: &AtomicU64| {
            let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(est_ns))
            });
        };
        saturating_sub(&self.entries[id].load_ns);
        saturating_sub(&self.entries[id].class_load_ns[class.index()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartmem_ir::{DType, GraphBuilder};

    fn spec() -> ModelSpec {
        let mut b = GraphBuilder::new("sched-toy");
        let x = b.input("x", &[1, 64, 256], DType::F16);
        let w = b.weight("w", &[256, 256], DType::F16);
        let mm = b.matmul(x, w);
        b.output(mm);
        ModelSpec::new("toy", b.finish())
    }

    fn pool() -> DevicePool {
        DevicePool::new(vec![
            DeviceConfig::snapdragon_8gen2(),
            DeviceConfig::snapdragon_835(),
            DeviceConfig::apple_m1(),
        ])
    }

    #[test]
    fn faster_devices_get_lower_estimates() {
        let s = spec();
        let fast = quick_estimate_ns(&s, &DeviceConfig::snapdragon_8gen2());
        let slow = quick_estimate_ns(&s, &DeviceConfig::snapdragon_835());
        assert!(fast < slow, "8gen2 {fast} vs 835 {slow}");
        let npu = quick_estimate_ns(&s, &DeviceConfig::server_npu());
        assert!(npu < fast, "the server NPU beats every mobile GPU");
    }

    #[test]
    fn discrete_devices_pay_host_staging() {
        let s = spec();
        let discrete = DeviceConfig::tesla_v100();
        let mut unified = discrete.clone();
        unified.caps.unified_memory = true;
        let with_staging = quick_estimate_ns(&s, &discrete);
        let without = quick_estimate_ns(&s, &unified);
        let expected = s.bytes as f64 / 32.0;
        assert!((with_staging - without - expected).abs() < 1e-6);
    }

    #[test]
    fn afbc_lowers_the_estimate_on_memory_bound_models() {
        let s = spec();
        let on = quick_estimate_ns(&s, &DeviceConfig::mali_g710());
        let off = quick_estimate_ns(&s, &DeviceConfig::mali_g710().with_afbc(false));
        assert!(on <= off, "AFBC never slows a placement estimate: {on} vs {off}");
    }

    #[test]
    fn placement_prefers_idle_fast_device_then_balances() {
        let p = pool();
        let s = spec();
        let ests: Vec<f64> = (0..p.len()).map(|d| quick_estimate_ns(&s, p.device(d))).collect();
        let (first, charged) = p.place(&ests, Priority::Interactive);
        assert!(charged > 0);
        assert_eq!(p.load_ns(first), charged);
        assert_eq!(p.class_load_ns(first, Priority::Interactive), charged);
        assert_eq!(p.class_load_ns(first, Priority::Batch), 0);
        // Pile enough work on the first choice and the scheduler must
        // move on to another device.
        p.charge(first, 10_000_000_000, Priority::Batch);
        let (second, _) = p.place(&ests, Priority::Interactive);
        assert_ne!(first, second, "loaded device must be avoided");
    }

    #[test]
    fn placement_skips_dead_devices_until_revived() {
        let p = pool();
        let s = spec();
        let ests: Vec<f64> = (0..p.len()).map(|d| quick_estimate_ns(&s, p.device(d))).collect();
        let (preferred, charged) = p.place(&ests, Priority::Batch);
        p.discharge(preferred, charged, Priority::Batch);
        assert!(p.mark_dead(preferred), "first kill transitions");
        assert!(!p.mark_dead(preferred), "second kill is a no-op");
        assert!(!p.is_alive(preferred));
        assert_eq!(p.alive_count(), p.len() - 1);
        assert_eq!(p.dead_devices(), vec![preferred]);
        for _ in 0..8 {
            let (d, _) = p.place(&ests, Priority::Batch);
            assert_ne!(d, preferred, "dead device must not be placed on");
        }
        // The slack probe ignores the dead device too: its best
        // completion only considers survivors.
        let alive_best = p.best_completion_ns(&ests);
        assert!(alive_best >= ests[preferred], "dead fastest device is excluded");
        p.revive(preferred);
        assert!(p.is_alive(preferred));
        assert_eq!(p.alive_count(), p.len());
        let (d, _) = p.place(&ests, Priority::Batch);
        assert_eq!(d, preferred, "revived idle fast device is preferred again");
    }

    #[test]
    fn discharge_settles_per_class_and_saturates() {
        let p = pool();
        p.charge(0, 100, Priority::BestEffort);
        p.discharge(0, 40, Priority::BestEffort);
        assert_eq!(p.load_ns(0), 60);
        assert_eq!(p.class_load_ns(0, Priority::BestEffort), 60);
        p.discharge(0, 1_000, Priority::BestEffort);
        assert_eq!(p.load_ns(0), 0, "accounts never underflow");
        assert_eq!(p.class_load_ns(0, Priority::BestEffort), 0);
    }
}
