//! The serving runtime: bounded admission queue → shared pull-mode
//! batcher → per-device workers over one shared [`CompileSession`].
//!
//! Unlike the original push pipeline (a batching thread flushing on a
//! timer into per-worker channels), the batcher here is a single
//! [`Batcher`] state machine behind a mutex: submission pushes into it,
//! and each device worker *pulls* its next batch the moment the device
//! frees up. A backlogged device therefore grows its batches toward
//! `max_batch`; the old `max_delay` survives only as the idle-latency
//! bound that flushes a lone request on an otherwise idle device.

use crate::batcher::{Batch, BatchItem, BatchKey, Batcher, CutPolicy};
use crate::request::{
    InferenceRequest, InferenceResponse, ModelSpec, Priority, SubmitError, Ticket, REPLICA_KILLED,
};
use crate::retry::{AdmissionControl, RetryDecision, RetryPolicy};
use crate::scheduler::{quick_estimate_ns, DevicePool};
use smartmem_core::{
    CacheStats, CompileSession, Framework, ModelReport, SmartMemPipeline, Unsupported,
};
use smartmem_ir::{Graph, Layout, Op, TensorId};
use smartmem_sim::{DeviceConfig, FaultKind, FaultPlan};
use smartmem_telemetry::{now_ns, Counter, Histogram, Telemetry, TraceId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Telemetry category of injected-fault instant events
/// (`fault.<kind>`, see [`FaultKind::name`]).
pub const FAULT_CATEGORY: &str = "fault";
/// Telemetry category of recovery-action instant events (`retry`,
/// `retry_exhausted`, `shed`, `replica_killed`, `device_dead`).
pub const RECOVERY_CATEGORY: &str = "recovery";

/// Marginal device-time cost of each request after the first in a
/// batch: batched execution amortizes kernel launches and re-uses the
/// warmed caches, so a batch of `n` costs
/// `latency × (1 + MARGINAL × (n − 1))` rather than `latency × n`.
const BATCH_MARGINAL: f64 = 0.85;

/// Simulated device time of a batch of `n` identical inferences, given
/// the single-inference latency.
pub fn batch_exec_ms(single_ms: f64, n: usize) -> f64 {
    single_ms * (1.0 + BATCH_MARGINAL * n.saturating_sub(1) as f64)
}

/// Places a request whose estimate row is scaled by `scale` (the decode
/// step count) without mutating the shared row. `scale == 1.0` is the
/// common single-shot path and skips the allocation.
fn place_scaled(
    pool: &DevicePool,
    estimates_ns: &[f64],
    scale: f64,
    class: Priority,
) -> (usize, u64) {
    if scale <= 1.0 {
        return pool.place(estimates_ns, class);
    }
    let scaled: Vec<f64> = estimates_ns.iter().map(|e| e * scale).collect();
    pool.place(&scaled, class)
}

/// The KV-cache tensor of a decode graph: the `K` operand of the first
/// `QKᵀ` attention matmul (`MatMul { trans_b: true }`) whose operand
/// carries a symbolic sequence axis. `None` when the graph is static
/// or has no such matmul.
fn kv_tensor(graph: &Graph) -> Option<TensorId> {
    let sym: Vec<TensorId> = graph.sym_axes().iter().map(|a| a.tensor).collect();
    graph.nodes().iter().find_map(|node| match node.op {
        Op::MatMul { trans_b: true, .. } => {
            let k = *node.inputs.get(1)?;
            sym.contains(&k).then_some(k)
        }
        _ => None,
    })
}

/// Per-class latency budgets: a request admitted at `t` under class `c`
/// carries the absolute deadline `t + budget(c)`, which feeds the
/// batcher's slack ordering and the per-class SLO-violation counters.
///
/// ```
/// use smartmem_serve::{ClassDeadlines, Priority, ServeConfig};
/// use std::time::Duration;
///
/// let mut config = ServeConfig::default();
/// config.deadlines.interactive = Duration::from_millis(10);
/// assert_eq!(config.deadlines.budget(Priority::Interactive), Duration::from_millis(10));
/// // Defaults keep the classes strictly ordered, tight to loose.
/// let d = ClassDeadlines::default();
/// assert!(d.budget(Priority::Interactive) < d.budget(Priority::Batch));
/// assert!(d.budget(Priority::Batch) < d.budget(Priority::BestEffort));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ClassDeadlines {
    /// Budget of [`Priority::Interactive`] requests.
    pub interactive: Duration,
    /// Budget of [`Priority::Batch`] requests.
    pub batch: Duration,
    /// Budget of [`Priority::BestEffort`] requests.
    pub best_effort: Duration,
}

impl ClassDeadlines {
    /// The latency budget of `class`.
    pub fn budget(&self, class: Priority) -> Duration {
        match class {
            Priority::Interactive => self.interactive,
            Priority::Batch => self.batch,
            Priority::BestEffort => self.best_effort,
        }
    }
}

impl Default for ClassDeadlines {
    fn default() -> Self {
        ClassDeadlines {
            interactive: Duration::from_millis(25),
            batch: Duration::from_millis(250),
            best_effort: Duration::from_secs(2),
        }
    }
}

/// Telemetry knobs of the serving runtime.
///
/// Disabled by default: the tracer's record path then costs one
/// relaxed atomic load, so production-shaped benchmarks can leave the
/// plumbing in place. Metrics (queue-wait histograms, fallback
/// counters) are always collected — they are single atomic ops and
/// some must count even when nobody is watching.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Whether the span recorder is on.
    pub enabled: bool,
    /// Record the full span set of one request in every `sample_every`
    /// submitted (1 = trace every request).
    pub sample_every: u64,
    /// Capacity of each recording thread's span ring buffer; overflow
    /// drops the oldest spans, counted in the exported trace.
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: false, sample_every: 1, span_capacity: 8192 }
    }
}

impl TelemetryConfig {
    /// Tracing on, every request sampled — the right mode for capturing
    /// a Chrome trace.
    pub fn tracing() -> Self {
        TelemetryConfig { enabled: true, ..TelemetryConfig::default() }
    }
}

/// Tunables of the serving runtime.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Capacity of the bounded submission queue (admission control:
    /// `try_submit` sheds load beyond it, `submit` applies
    /// backpressure).
    pub queue_capacity: usize,
    /// Batch-size cap of a single cut.
    pub max_batch: usize,
    /// Idle-latency bound of the pull-mode batcher: how long a request
    /// may queue before its key becomes due even when the device is
    /// idle. It never truncates a batch that backlog has grown.
    pub max_delay: Duration,
    /// Wall-clock throttle: workers sleep `exec_ms × scale` per batch,
    /// making queueing dynamics (and therefore batching) realistic.
    /// `0.0` disables sleeping — batches drain as fast as the host can
    /// estimate them (the right mode for tests).
    pub exec_time_scale: f64,
    /// Persistent artifact-cache directory for the compilation session.
    /// When set, cold compiles are written through to disk and a
    /// restarted server warm-starts from the artifacts — 100 % cache
    /// hit rate from the very first request (see
    /// [`CompileSession::with_cache_dir`]). `None` keeps the session
    /// purely in-memory.
    pub cache_dir: Option<PathBuf>,
    /// Per-class latency budgets (see [`ClassDeadlines`]).
    pub deadlines: ClassDeadlines,
    /// Starvation-aging factor of the batch-cut ordering: every
    /// nanosecond a request has queued subtracts this many nanoseconds
    /// from its effective slack, so long-waiting low-priority work
    /// eventually outranks fresh interactive traffic. Zero disables
    /// aging.
    pub aging_factor: f64,
    /// How batches are composed at cut time ([`CutPolicy::Pull`] by
    /// default; [`CutPolicy::Deadline`] reproduces the old fixed-window
    /// batches for A/B comparison).
    pub cut_policy: CutPolicy,
    /// Tracing/metrics knobs (see [`TelemetryConfig`]).
    pub telemetry: TelemetryConfig,
    /// Deterministic fault injection (chaos testing). `None` — the
    /// default — and an inert plan are byte-identical to a server built
    /// before fault injection existed: no probe ever fires and no
    /// extra work runs on the request path.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry budget/backoff for transiently failed requests (injected
    /// or real execute errors, device death while queued or claimed).
    pub retry: RetryPolicy,
    /// Slack-based admission shedding (disabled by default; see
    /// [`AdmissionControl`]).
    pub admission: AdmissionControl,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            exec_time_scale: 0.0,
            cache_dir: None,
            deadlines: ClassDeadlines::default(),
            aging_factor: 4.0,
            cut_policy: CutPolicy::Pull,
            telemetry: TelemetryConfig::default(),
            fault_plan: None,
            retry: RetryPolicy::default(),
            admission: AdmissionControl::disabled(),
        }
    }
}

/// Per-priority-class serving counters (one entry per [`Priority`],
/// indexed by [`Priority::index`] in [`ServeStats::per_class`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassStats {
    /// Requests of this class accepted into the queue.
    pub submitted: u64,
    /// Requests of this class executed successfully (`error == None`).
    pub completed: u64,
    /// Requests of this class answered with a terminal error.
    pub failed: u64,
    /// Requests of this class cancelled before execution.
    pub cancelled: u64,
    /// Answered requests of this class past their deadline (wall clock
    /// at response time past `submission + class budget`).
    pub slo_violations: u64,
}

/// Aggregate serving statistics (snapshot or final, from
/// [`Server::stats`] / [`Server::shutdown`]).
///
/// # Request accounting taxonomy
///
/// Every *accepted* request resolves into exactly one of three
/// disjoint terminal counters, so in every final snapshot
/// `submitted == completed + failed + cancelled` — no ticket is ever
/// lost or double-counted, even under fault injection. `rejected` and
/// `shed` count requests that were never accepted (their tickets were
/// never created) and live outside that sum.
///
/// | counter     | exact trigger                                      |
/// |-------------|----------------------------------------------------|
/// | `submitted` | request accepted into the bounded queue            |
/// | `completed` | answered with `error == None` (success only)       |
/// | `failed`    | answered with `error == Some(..)`: compile error or panic, replica killed mid-flight, or retry budget exhausted |
/// | `cancelled` | cancel won the CAS before any worker claimed it    |
/// | `rejected`  | `try_submit` refused: bounded queue full           |
/// | `shed`      | admission control refused: pool slack negative     |
///
/// `recovered`, `retried`, `retry_exhausted`, and `killed` are
/// *attributions*, not extra terminals: `retried` counts re-enqueue
/// events (a request can retry several times), `recovered` counts
/// requests that landed in `completed` after ≥ 1 failed attempt,
/// `retry_exhausted` and `killed` count the sub-causes of `failed`.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests executed and answered successfully (`error == None`).
    /// Disjoint from `failed` and `cancelled`.
    pub completed: u64,
    /// Requests rejected by admission control (`try_submit` on a full
    /// queue).
    pub rejected: u64,
    /// Requests answered with a terminal error (`error == Some(..)`):
    /// a compilation error/panic, [`REPLICA_KILLED`], or a transient
    /// failure that exhausted the retry budget. Disjoint from
    /// `completed`.
    pub failed: u64,
    /// Requests cancelled before execution (answered with
    /// `cancelled == true`, never run on a device).
    pub cancelled: u64,
    /// Requests shed at submission by [`AdmissionControl`] (answered
    /// with `SubmitError::Shed`; no ticket was created). Always 0 with
    /// admission control disabled (the default).
    pub shed: u64,
    /// Retry events: how many times a transiently failed request was
    /// re-placed and re-enqueued. One request can contribute up to
    /// `RetryPolicy::budget` here.
    pub retried: u64,
    /// Requests that completed successfully after at least one failed
    /// attempt (a subset of `completed`).
    pub recovered: u64,
    /// Requests that became terminal `failed` because their retry
    /// budget ran out (a subset of `failed`).
    pub retry_exhausted: u64,
    /// Requests answered [`REPLICA_KILLED`] because [`Server::kill`]
    /// tore the replica down around them (a subset of `failed`).
    pub killed: u64,
    /// Injected faults that actually fired on this server, indexed by
    /// [`FaultKind::index`]. All zero when `ServeConfig::fault_plan`
    /// is `None` or inert.
    pub faults: [u64; FaultKind::ALL.len()],
    /// Devices currently marked dead (by injected death or
    /// [`Server::retire_device`]), ascending pool ids.
    pub dead_devices: Vec<usize>,
    /// Batches executed.
    pub batches: u64,
    /// Decode iterations executed at device granularity: per batch
    /// containing at least one decode request, the largest
    /// `decode_steps` among its members (whole-request batching holds
    /// the device — and every batch-mate — for that many iterations;
    /// continuous batching contributes 1 per step batch).
    pub decode_steps: u64,
    /// Tokens generated by successfully completed decode requests (one
    /// token per request per decode step). Divide by wall time for the
    /// serving-level tokens-per-second figure.
    pub decode_tokens: u64,
    /// KV-cache layouts chosen so far — one per (model, device) pair
    /// that asked ([`Server::kv_cache_layout`]); per-bucket decode
    /// models register separately, so this counts (model, device,
    /// bucket) selections.
    pub kv_layouts: usize,
    /// `histogram[n-1]` = number of batches of size `n`, over all
    /// devices.
    pub batch_histogram: Vec<u64>,
    /// Per-device batch-size histograms, by pool id:
    /// `per_device_batch_histogram[d][n-1]` = batches of size `n` on
    /// device `d` — this is where pull-based growth on a backlogged
    /// device is visible while idle devices keep cutting small.
    pub per_device_batch_histogram: Vec<Vec<u64>>,
    /// Batches executed per device, by pool id.
    pub per_device_batches: Vec<u64>,
    /// Per-priority-class counters, indexed by [`Priority::index`].
    pub per_class: [ClassStats; 3],
    /// Compilation-session counters (per-request granularity: steady
    /// state is all hits).
    pub cache: CacheStats,
    /// Distinct compiled artifacts in the session cache.
    pub compiled: usize,
    /// Times the configured persistent cache directory was unusable and
    /// the server fell back to a purely in-memory session (0 or 1 per
    /// server; also recorded as a telemetry warning event).
    pub cache_dir_fallbacks: u64,
}

impl ServeStats {
    /// Session cache hit rate in `[0, 1]` (0 when nothing compiled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }

    /// Counters of one priority class.
    pub fn class(&self, class: Priority) -> ClassStats {
        self.per_class[class.index()]
    }

    /// Mean executed batch size over all devices.
    pub fn mean_batch_size(&self) -> f64 {
        histogram_mean(&self.batch_histogram)
    }

    /// Mean executed batch size on one device.
    pub fn mean_batch_size_on(&self, device: usize) -> f64 {
        histogram_mean(&self.per_device_batch_histogram[device])
    }
}

/// Mean batch size of a `histogram[n-1] = batches of size n` histogram
/// (0 when empty) — the layout of [`ServeStats::batch_histogram`], and
/// of any difference of two such snapshots.
pub fn histogram_mean(hist: &[u64]) -> f64 {
    let batches: u64 = hist.iter().sum();
    if batches == 0 {
        0.0
    } else {
        let total: u64 = hist.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        total as f64 / batches as f64
    }
}

// Cancel adjudication states (see `CancelCell`).
const QUEUED: u8 = 0;
const CLAIMED: u8 = 1;
const CANCELLED: u8 = 2;

/// The cancel-vs-cut arbiter of one request: exactly one of
/// `cancel()` (QUEUED → CANCELLED) and the batcher's claim at cut time
/// (QUEUED → CLAIMED) wins the compare-and-swap.
pub(crate) struct CancelCell {
    state: AtomicU8,
}

/// Clonable handle that revokes a queued request (from
/// [`Ticket::cancel_handle`]).
///
/// [`CancelHandle::cancel`] adjudicates the race against batch cutting
/// with a compare-and-swap: when it returns `true`, the request is
/// guaranteed never to execute — it is removed from the queue (or, if a
/// worker pops it first, dropped at batch-cut time), its scheduler
/// charge is refunded, its ticket resolves with
/// [`InferenceResponse::cancelled`] set, and it counts in
/// [`ServeStats::cancelled`]. When it returns `false`, the request was
/// already claimed for a batch (or already answered) and will run.
///
/// ```
/// use smartmem_serve::{InferenceRequest, ModelSpec, ServeConfig, Server};
/// use smartmem_sim::DeviceConfig;
/// use smartmem_ir::{DType, GraphBuilder};
/// use std::time::Duration;
///
/// let mut b = GraphBuilder::new("toy");
/// let x = b.input("x", &[1, 16, 32], DType::F16);
/// let w = b.weight("w", &[32, 32], DType::F16);
/// let mm = b.matmul(x, w);
/// b.output(mm);
/// // A long idle delay keeps the lone request queued until we cancel.
/// let config = ServeConfig { max_delay: Duration::from_secs(5), ..ServeConfig::default() };
/// let server = Server::start(
///     vec![ModelSpec::new("toy", b.finish())],
///     vec![DeviceConfig::apple_m1()],
///     config,
/// );
/// let ticket = server.submit(InferenceRequest::new(0)).unwrap();
/// let handle = ticket.cancel_handle();
/// assert!(handle.cancel(), "still queued: cancellation wins");
/// assert!(!handle.cancel(), "second cancel is a no-op");
/// let response = ticket.wait();
/// assert!(response.cancelled);
/// let stats = server.shutdown();
/// assert_eq!((stats.cancelled, stats.completed), (1, 0));
/// ```
#[derive(Clone)]
pub struct CancelHandle {
    cell: Arc<CancelCell>,
    id: u64,
    key: BatchKey,
    inner: Weak<Inner>,
}

impl CancelHandle {
    /// Attempts to cancel the request; returns `true` iff cancellation
    /// won (the request will never execute). Safe to call from any
    /// thread, any number of times.
    pub fn cancel(&self) -> bool {
        if self
            .cell
            .state
            .compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        // The CAS settled it: no worker will ever claim this request.
        // Eagerly unqueue and answer it; if a cutter popped it in the
        // meantime, the failed claim routes it through the cutter's
        // cancelled path instead (exactly one of us finds it queued).
        if let Some(inner) = self.inner.upgrade() {
            let removed = {
                let mut st = inner.state.lock().expect("batch state poisoned");
                st.batcher.remove_where(self.key, |p: &Pending| p.id == self.id)
            };
            if let Some(p) = removed {
                inner.space_cv.notify_all();
                respond_cancelled(&inner, p);
            }
        }
        true
    }

    /// Whether a `cancel` call already won for this request.
    pub fn is_cancelled(&self) -> bool {
        self.cell.state.load(Ordering::Acquire) == CANCELLED
    }
}

/// One queued request riding through batcher and worker.
struct Pending {
    id: u64,
    model: usize,
    device: usize,
    class: Priority,
    deadline: Instant,
    est_ns: u64,
    submitted: Instant,
    /// Span-recorder identity: [`TraceId::NONE`] unless this request
    /// was sampled at admission.
    trace: TraceId,
    /// Admission timestamp on the telemetry clock (0 when unsampled).
    submit_ns: u64,
    /// Failed execution attempts so far (0 = never tried). Incremented
    /// on every transient failure; bounded by `RetryPolicy::budget`.
    attempts: u32,
    /// Stable fault-injection identity: `InferenceRequest::tag` or the
    /// server-assigned id. Survives retries and re-placements, so a
    /// `FaultPlan` curse follows the request wherever it goes.
    tag: u64,
    /// Decode iterations ([`InferenceRequest::decode_steps`]; `0` = an
    /// ordinary inference). `est_ns` already includes the `×steps`
    /// charge; the batch executor multiplies device time by the largest
    /// step count in the batch.
    steps: u32,
    cell: Arc<CancelCell>,
    tx: Sender<InferenceResponse>,
}

impl BatchItem for Pending {
    fn deadline(&self) -> Instant {
        self.deadline
    }

    fn est_ns(&self) -> f64 {
        self.est_ns as f64
    }

    fn claim(&self) -> bool {
        self.cell
            .state
            .compare_exchange(QUEUED, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

#[derive(Default)]
struct ClassCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    slo_violations: AtomicU64,
}

impl ClassCounters {
    fn snapshot(&self) -> ClassStats {
        ClassStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            slo_violations: self.slo_violations.load(Ordering::Relaxed),
        }
    }
}

struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    recovered: AtomicU64,
    retry_exhausted: AtomicU64,
    killed: AtomicU64,
    /// Injected faults that fired, by [`FaultKind::index`]. The
    /// cache-I/O slot is filled from the session at snapshot time.
    faults: [AtomicU64; FaultKind::ALL.len()],
    batches: AtomicU64,
    /// Device-level decode iterations executed (per batch, the largest
    /// step count among its members — the time the device actually
    /// spent iterating).
    decode_steps: AtomicU64,
    /// Tokens generated by successful decode requests (one per request
    /// per step).
    decode_tokens: AtomicU64,
    /// `[device][size-1]` — per-device batch-size histograms.
    per_device_hist: Vec<Vec<AtomicU64>>,
    per_device_batches: Vec<AtomicU64>,
    per_class: [ClassCounters; 3],
    completion_seq: AtomicU64,
}

/// The server's observability handles: the [`Telemetry`] pair plus
/// hot-path metrics resolved once at startup (updating a resolved
/// metric is a single atomic op; only startup takes the registry lock).
struct ServeTelemetry {
    telemetry: Telemetry,
    /// Per-class queue-wait (submit → batch cut) histograms, indexed by
    /// [`Priority::index`].
    queue_wait: [Arc<Histogram>; 3],
    /// Unusable-cache-dir fallbacks (see
    /// [`ServeStats::cache_dir_fallbacks`]).
    cache_dir_fallbacks: Arc<Counter>,
}

impl ServeTelemetry {
    fn new(config: &TelemetryConfig) -> Self {
        let telemetry = if config.enabled {
            Telemetry::enabled(config.span_capacity, config.sample_every)
        } else {
            Telemetry::disabled()
        };
        let registry = &telemetry.registry;
        ServeTelemetry {
            queue_wait: Priority::ALL
                .map(|c| registry.histogram(&format!("serve.queue_wait_ns.{}", c.name()))),
            cache_dir_fallbacks: registry.counter("serve.cache_dir_fallbacks"),
            telemetry,
        }
    }
}

/// The batcher plus the shutdown flag, guarded by `Inner::state`.
struct BatchState {
    batcher: Batcher<Pending>,
    shutdown: bool,
    /// Set by [`Server::kill`]: the replica went down hard. Implies
    /// `shutdown`; queued requests were answered [`REPLICA_KILLED`]
    /// instead of drained.
    killed: bool,
}

/// State shared by the public handle, the device workers, and every
/// outstanding [`CancelHandle`].
struct Inner {
    models: Vec<ModelSpec>,
    pool: DevicePool,
    session: CompileSession,
    framework: Box<dyn Framework>,
    /// Roofline placement estimates, `estimates[model][device]` in ns.
    estimates: Vec<Vec<f64>>,
    config: ServeConfig,
    metrics: Metrics,
    telemetry: ServeTelemetry,
    /// KV-cache layouts, chosen once per (model, device) through the
    /// capability-aware layout-select machinery and memoized (each
    /// shape bucket of a decode model is its own registered model, so
    /// the memo is per (model, device, bucket)).
    kv_layouts: Mutex<HashMap<(usize, usize), Layout>>,
    state: Mutex<BatchState>,
    /// Wakes one device's worker (indexed by device id): new work
    /// pushed for it, or shutdown. Per-device condvars keep a
    /// submission from waking workers that cannot act on it.
    work_cvs: Vec<Condvar>,
    /// Wakes blocked submitters: queue capacity freed, or shutdown.
    space_cv: Condvar,
}

/// The serving runtime handle.
///
/// `start` spins up one worker thread per device; `submit`/`try_submit`
/// enqueue requests and return [`Ticket`]s (cancellable via
/// [`Ticket::cancel_handle`]); `shutdown` drains everything and returns
/// the final statistics. The handle is `Sync`: submit from as many
/// threads as you like.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Server {
    /// Starts a server over the default SmartMem pipeline.
    pub fn start(models: Vec<ModelSpec>, devices: Vec<DeviceConfig>, config: ServeConfig) -> Self {
        Self::start_with_framework(models, devices, config, Box::new(SmartMemPipeline::new()))
    }

    /// Starts a server compiling through an explicit framework
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics when `models` or `devices` is empty.
    pub fn start_with_framework(
        models: Vec<ModelSpec>,
        devices: Vec<DeviceConfig>,
        config: ServeConfig,
        framework: Box<dyn Framework>,
    ) -> Self {
        assert!(!models.is_empty(), "register at least one model");
        assert!(!devices.is_empty(), "provide at least one device");
        let pool = DevicePool::new(devices);
        let estimates = models
            .iter()
            .map(|m| (0..pool.len()).map(|d| quick_estimate_ns(m, pool.device(d))).collect())
            .collect();
        let metrics = Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            retry_exhausted: AtomicU64::new(0),
            killed: AtomicU64::new(0),
            faults: Default::default(),
            batches: AtomicU64::new(0),
            decode_steps: AtomicU64::new(0),
            decode_tokens: AtomicU64::new(0),
            per_device_hist: (0..pool.len())
                .map(|_| (0..config.max_batch).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            per_device_batches: (0..pool.len()).map(|_| AtomicU64::new(0)).collect(),
            per_class: Default::default(),
            completion_seq: AtomicU64::new(0),
        };
        let telemetry = ServeTelemetry::new(&config.telemetry);
        // A broken cache directory must not take the server down with
        // it — fall back to a purely in-memory session and keep
        // serving (every compile just goes cold). The fallback is
        // observable: a counter in [`ServeStats`] plus a warning event
        // in the trace, carrying the I/O error as its message.
        let session = match &config.cache_dir {
            Some(dir) => CompileSession::with_cache_dir(dir).unwrap_or_else(|e| {
                telemetry.cache_dir_fallbacks.incr();
                telemetry.telemetry.tracer.record_instant(
                    format!("cache_dir_fallback: {} unusable ({e})", dir.display()),
                    "warn",
                    TraceId::NONE,
                    0,
                    vec![],
                );
                CompileSession::new()
            }),
            None => CompileSession::new(),
        };
        // Wire the fault plan into the persistent cache so cache-dir
        // I/O faults fire inside the real read/write seams.
        if let Some(plan) = &config.fault_plan {
            if !plan.is_inert() {
                session.inject_disk_faults(Arc::clone(plan));
            }
        }
        let batcher = Batcher::new(config.max_batch, config.max_delay)
            .with_policy(config.cut_policy)
            .with_aging_factor(config.aging_factor);
        let pool_len = pool.len();
        let inner = Arc::new(Inner {
            models,
            pool,
            session,
            framework,
            estimates,
            config,
            metrics,
            telemetry,
            kv_layouts: Mutex::new(HashMap::new()),
            state: Mutex::new(BatchState { batcher, shutdown: false, killed: false }),
            work_cvs: (0..pool_len).map(|_| Condvar::new()).collect(),
            space_cv: Condvar::new(),
        });
        let workers = (0..inner.pool.len())
            .map(|device| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, device))
            })
            .collect();
        Server { inner, workers, next_id: AtomicU64::new(0) }
    }

    /// Model id registered under `name`, if any.
    pub fn model_id(&self, name: &str) -> Option<usize> {
        self.inner.models.iter().position(|m| m.name == name)
    }

    /// Registered models.
    pub fn models(&self) -> &[ModelSpec] {
        &self.inner.models
    }

    /// Device pool.
    pub fn pool(&self) -> &DevicePool {
        &self.inner.pool
    }

    /// The server's telemetry handle (span tracer + metrics registry).
    /// The clone shares the underlying buffers, so it stays valid — and
    /// drainable — after [`Server::shutdown`]: grab it up front, shut
    /// down, then export the trace.
    pub fn telemetry(&self) -> Telemetry {
        self.inner.telemetry.telemetry.clone()
    }

    /// Submits with backpressure: blocks while the bounded queue is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] for unknown model/device ids or a
    /// shutting-down server.
    pub fn submit(&self, req: InferenceRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(req, true)
    }

    /// Submits without blocking, shedding load when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when admission control
    /// rejects the request, or the same errors as [`Server::submit`].
    pub fn try_submit(&self, req: InferenceRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(req, false)
    }

    fn submit_inner(&self, req: InferenceRequest, block: bool) -> Result<Ticket, SubmitError> {
        let inner = &self.inner;
        let (mut pending, ticket) = self.admit(req)?;
        let class = pending.class;
        let mut device;
        {
            let mut st = inner.state.lock().expect("batch state poisoned");
            loop {
                if st.shutdown {
                    inner.pool.discharge(pending.device, pending.est_ns, class);
                    return Err(SubmitError::ShuttingDown);
                }
                if st.batcher.pending() >= inner.config.queue_capacity {
                    if !block {
                        inner.pool.discharge(pending.device, pending.est_ns, class);
                        inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(SubmitError::QueueFull);
                    }
                    st = inner.space_cv.wait(st).expect("batch state poisoned");
                    continue;
                }
                device = pending.device;
                let key = BatchKey { model: pending.model, device };
                match st.batcher.push(key, pending, Instant::now()) {
                    Ok(()) => break,
                    // The placed device died between admit and push:
                    // refund the charge and re-place among the living
                    // (the pool always keeps at least one device
                    // alive).
                    Err(p) => {
                        inner.pool.discharge(p.device, p.est_ns, class);
                        pending = p;
                        let scale = f64::from(pending.steps.max(1));
                        let (d, est) = place_scaled(
                            &inner.pool,
                            &inner.estimates[pending.model],
                            scale,
                            class,
                        );
                        pending.device = d;
                        pending.est_ns = est;
                    }
                }
            }
            // Counted before the lock drops: a size-due request can be
            // cut and completed the instant the lock is released, and
            // `submitted >= completed + failed + cancelled` must hold
            // in every stats() snapshot.
            inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
            inner.metrics.per_class[class.index()].submitted.fetch_add(1, Ordering::Relaxed);
        }
        inner.work_cvs[device].notify_all();
        Ok(ticket)
    }

    /// Validates, places, and charges a request; builds its ticket.
    fn admit(&self, req: InferenceRequest) -> Result<(Pending, Ticket), SubmitError> {
        let inner = &self.inner;
        if req.model >= inner.models.len() {
            return Err(SubmitError::UnknownModel(req.model));
        }
        if let Some(d) = req.device {
            if d >= inner.pool.len() {
                return Err(SubmitError::UnknownDevice(d));
            }
        }
        // Admission shedding happens before any charge: a shed request
        // must leave zero trace in the scheduler's accounts.
        if inner.config.admission.enabled {
            let best = inner.pool.best_completion_ns(&inner.estimates[req.model]);
            let budget_ns = inner.config.deadlines.interactive.as_nanos() as f64;
            let slack = (budget_ns - best).clamp(i64::MIN as f64, i64::MAX as f64) as i64;
            if inner.config.admission.should_shed(req.priority, slack) {
                inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                let tracer = &inner.telemetry.telemetry.tracer;
                if tracer.is_enabled() {
                    tracer.record_instant(
                        "shed",
                        RECOVERY_CATEGORY,
                        TraceId::NONE,
                        0,
                        vec![
                            ("class".to_string(), req.priority.index() as f64),
                            ("slack_ns".to_string(), slack as f64),
                        ],
                    );
                }
                return Err(SubmitError::Shed);
            }
        }
        // A decode request occupies the device for `steps` iterations,
        // so its placement charge — and therefore the batcher's slack —
        // scales with the step count.
        let steps_charge = f64::from(req.decode_steps.max(1));
        let (device, est_ns) = match req.device {
            // A device pinned dead falls back to scheduler placement —
            // pinning is an affinity hint, not a suicide pact.
            Some(d) if inner.pool.is_alive(d) => {
                let est = (inner.estimates[req.model][d] * steps_charge).max(0.0) as u64;
                inner.pool.charge(d, est, req.priority);
                (d, est)
            }
            _ => place_scaled(&inner.pool, &inner.estimates[req.model], steps_charge, req.priority),
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tag = req.tag.unwrap_or(id);
        let (tx, rx) = mpsc::channel();
        let submitted = Instant::now();
        // The request's trace identity is minted here, at admission —
        // everything downstream (queue, batch cut, compile, execute)
        // tags its spans with it. Unsampled (and telemetry-off)
        // requests carry NONE and never touch the recorder again.
        let tracer = &inner.telemetry.telemetry.tracer;
        let (trace, submit_ns) = match tracer.mint() {
            Some(trace) => (trace, now_ns()),
            None => (TraceId::NONE, 0),
        };
        // A clock-skew fault tightens the deadline by the configured
        // skew: downstream (slack ordering, SLO accounting) sees a
        // request whose clock disagrees with the server's.
        let mut budget = inner.config.deadlines.budget(req.priority);
        if let Some(plan) = &inner.config.fault_plan {
            if plan.fault_for(FaultKind::ClockSkew, tag) {
                budget = budget.saturating_sub(plan.skew());
                record_fault(inner, FaultKind::ClockSkew, TraceId::NONE, 0);
            }
        }
        let cell = Arc::new(CancelCell { state: AtomicU8::new(QUEUED) });
        let pending = Pending {
            id,
            model: req.model,
            device,
            class: req.priority,
            deadline: submitted + budget,
            est_ns,
            submitted,
            trace,
            submit_ns,
            attempts: 0,
            tag,
            steps: req.decode_steps,
            cell: Arc::clone(&cell),
            tx,
        };
        let cancel = CancelHandle {
            cell,
            id,
            key: BatchKey { model: req.model, device },
            inner: Arc::downgrade(inner),
        };
        Ok((pending, Ticket { id, rx, cancel }))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        let m = &self.inner.metrics;
        let per_device_batch_histogram: Vec<Vec<u64>> = m
            .per_device_hist
            .iter()
            .map(|h| h.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .collect();
        let mut batch_histogram = vec![0u64; self.inner.config.max_batch];
        for hist in &per_device_batch_histogram {
            for (slot, &count) in batch_histogram.iter_mut().zip(hist) {
                *slot += count;
            }
        }
        let cache = self.inner.session.stats();
        let mut faults = [0u64; FaultKind::ALL.len()];
        for (slot, counter) in faults.iter_mut().zip(&m.faults) {
            *slot = counter.load(Ordering::Relaxed);
        }
        // Cache-I/O faults fire inside the persist layer; surface them
        // in the same per-kind array.
        faults[FaultKind::CacheDirIo.index()] = cache.disk_faults as u64;
        ServeStats {
            submitted: m.submitted.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            shed: m.shed.load(Ordering::Relaxed),
            retried: m.retried.load(Ordering::Relaxed),
            recovered: m.recovered.load(Ordering::Relaxed),
            retry_exhausted: m.retry_exhausted.load(Ordering::Relaxed),
            killed: m.killed.load(Ordering::Relaxed),
            faults,
            dead_devices: self.inner.pool.dead_devices(),
            batches: m.batches.load(Ordering::Relaxed),
            decode_steps: m.decode_steps.load(Ordering::Relaxed),
            decode_tokens: m.decode_tokens.load(Ordering::Relaxed),
            kv_layouts: self.inner.kv_layouts.lock().expect("kv layout lock").len(),
            batch_histogram,
            per_device_batch_histogram,
            per_device_batches: m
                .per_device_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            per_class: [
                m.per_class[0].snapshot(),
                m.per_class[1].snapshot(),
                m.per_class[2].snapshot(),
            ],
            cache,
            compiled: self.inner.session.len(),
            cache_dir_fallbacks: self.inner.telemetry.cache_dir_fallbacks.get(),
        }
    }

    /// The layout the serving tier uses for `model`'s KV cache on
    /// `device`, chosen once per (model, device) by the
    /// `DeviceCaps`-aware reduction-layout machinery and memoized —
    /// every decode step of every session then reads the cache through
    /// the same layout, which is the whole point: the bucket padding
    /// makes the choice stable across sequence lengths. Returns `None`
    /// for out-of-range ids and for static graphs (no symbolic
    /// sequence axis means no KV cache to lay out). Registering each
    /// bucket of a model as its own server model makes the memo
    /// effectively per (model, device, bucket).
    pub fn kv_cache_layout(&self, model: usize, device: usize) -> Option<Layout> {
        let inner = &self.inner;
        if model >= inner.models.len() || device >= inner.pool.len() {
            return None;
        }
        if let Some(layout) = inner.kv_layouts.lock().expect("kv layout lock").get(&(model, device))
        {
            return Some(layout.clone());
        }
        let graph = &inner.models[model].graph;
        let kv = kv_tensor(graph)?;
        let layout =
            smartmem_core::kv_cache_layout(&graph.padded_dims(kv), inner.pool.device(device));
        inner.kv_layouts.lock().expect("kv layout lock").insert((model, device), layout.clone());
        Some(layout)
    }

    /// Kills the replica hard: stops admission, answers every queued
    /// request with a [`REPLICA_KILLED`] failure (counted in both
    /// `failed` and `killed`), and lets in-flight batches finish.
    /// Returns how many queued requests were killed. Idempotent; a
    /// fleet router resubmits the killed requests elsewhere and can
    /// later warm-restart a fresh replica from the shared cache dir.
    pub fn kill(&self) -> u64 {
        let inner = &self.inner;
        let drained = {
            let mut st = match inner.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if st.killed {
                return 0;
            }
            st.killed = true;
            st.shutdown = true;
            st.batcher.drain_all()
        };
        for cv in &inner.work_cvs {
            cv.notify_all();
        }
        inner.space_cv.notify_all();
        let mut n = 0;
        for (_key, items) in drained {
            for p in items {
                // Adjudicate against concurrent cancels exactly like a
                // batch cut would: claim or concede.
                if p.claim() {
                    respond_failed(inner, p, REPLICA_KILLED);
                    inner.metrics.killed.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                } else {
                    respond_cancelled(inner, p);
                }
            }
        }
        let tracer = &inner.telemetry.telemetry.tracer;
        if tracer.is_enabled() {
            tracer.record_instant(
                "replica_killed",
                RECOVERY_CATEGORY,
                TraceId::NONE,
                0,
                vec![("killed".to_string(), n as f64)],
            );
        }
        n
    }

    /// Whether [`Server::kill`] already ran.
    pub fn is_killed(&self) -> bool {
        match self.inner.state.lock() {
            Ok(st) => st.killed,
            Err(poisoned) => poisoned.into_inner().killed,
        }
    }

    /// Marks a device dead and re-routes its queued requests to the
    /// survivors — the same machinery an injected
    /// [`FaultKind::DeviceDeath`] uses, exposed for operational
    /// drains. Each stranded request consumes one retry attempt (it
    /// may go terminal if its budget is already spent). Returns
    /// `false` without side effects when `device` is out of range,
    /// already dead, or the last one alive.
    pub fn retire_device(&self, device: usize) -> bool {
        let inner = &self.inner;
        if device >= inner.pool.len() {
            return false;
        }
        let Some(drained) = mark_device_dead(inner, device) else {
            return false;
        };
        for (_key, items) in drained {
            for p in items {
                retry_or_fail(inner, p, "device retired");
            }
        }
        inner.space_cv.notify_all();
        true
    }

    /// Stops accepting requests, drains every queued batch, joins all
    /// threads and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join(true);
        self.stats()
    }

    /// Flags shutdown, wakes everything, joins the workers. A panicked
    /// worker (or the poisoned lock it leaves behind) only propagates
    /// when `propagate` is set — the `Drop` path must stay panic-free,
    /// or an abort-during-unwind would mask the original failure.
    fn stop_and_join(&mut self, propagate: bool) {
        match self.inner.state.lock() {
            Ok(mut st) => st.shutdown = true,
            Err(poisoned) => poisoned.into_inner().shutdown = true,
        }
        // Workers drain their device's remaining queue and exit;
        // blocked submitters observe the flag and error out.
        for cv in &self.inner.work_cvs {
            cv.notify_all();
        }
        self.inner.space_cv.notify_all();
        for w in self.workers.drain(..) {
            let joined = w.join();
            if propagate {
                joined.expect("worker thread panicked");
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_and_join(false);
        }
    }
}

/// Refunds the scheduler charge of a cancelled request, counts it, and
/// resolves its ticket with a cancelled response.
fn respond_cancelled(inner: &Inner, p: Pending) {
    inner.pool.discharge(p.device, p.est_ns, p.class);
    let m = &inner.metrics;
    m.cancelled.fetch_add(1, Ordering::Relaxed);
    m.per_class[p.class.index()].cancelled.fetch_add(1, Ordering::Relaxed);
    if p.trace != TraceId::NONE {
        let tracer = &inner.telemetry.telemetry.tracer;
        tracer.record_complete(
            "queue",
            "serve",
            p.trace,
            p.submit_ns,
            now_ns().saturating_sub(p.submit_ns),
            p.device as u64,
            vec![],
        );
        tracer.record_instant("cancelled", "serve", p.trace, p.device as u64, vec![]);
    }
    let wall_ms = p.submitted.elapsed().as_secs_f64() * 1e3;
    let response = InferenceResponse {
        request_id: p.id,
        completion_seq: m.completion_seq.fetch_add(1, Ordering::Relaxed),
        model: inner.models[p.model].name.clone(),
        device: inner.pool.device(p.device).name.clone(),
        priority: p.class,
        cancelled: true,
        batch_size: 0,
        queue_ms: wall_ms,
        exec_ms: 0.0,
        wall_ms,
        compile_cache_hit: false,
        retries: p.attempts,
        error: None,
    };
    // A dropped ticket just means nobody is listening.
    let _ = p.tx.send(response);
}

/// Counts one fired injected fault and records its instant event.
fn record_fault(inner: &Inner, kind: FaultKind, trace: TraceId, lane: u64) {
    inner.metrics.faults[kind.index()].fetch_add(1, Ordering::Relaxed);
    let tracer = &inner.telemetry.telemetry.tracer;
    if tracer.is_enabled() {
        tracer.record_instant(
            format!("fault.{}", kind.name()),
            FAULT_CATEGORY,
            trace,
            lane,
            vec![],
        );
    }
}

/// Refunds the scheduler charge of a terminally failed request, counts
/// it, and resolves its ticket with an error response. The caller has
/// already adjudicated against cancellation (the cell is CLAIMED).
fn respond_failed(inner: &Inner, p: Pending, error: &str) {
    inner.pool.discharge(p.device, p.est_ns, p.class);
    let m = &inner.metrics;
    m.failed.fetch_add(1, Ordering::Relaxed);
    let class = &m.per_class[p.class.index()];
    class.failed.fetch_add(1, Ordering::Relaxed);
    if Instant::now() > p.deadline {
        class.slo_violations.fetch_add(1, Ordering::Relaxed);
    }
    if p.trace != TraceId::NONE {
        let tracer = &inner.telemetry.telemetry.tracer;
        tracer.record_complete(
            "queue",
            "serve",
            p.trace,
            p.submit_ns,
            now_ns().saturating_sub(p.submit_ns),
            p.device as u64,
            vec![],
        );
        tracer.record_instant("failed", "serve", p.trace, p.device as u64, vec![]);
    }
    let wall_ms = p.submitted.elapsed().as_secs_f64() * 1e3;
    let response = InferenceResponse {
        request_id: p.id,
        completion_seq: m.completion_seq.fetch_add(1, Ordering::Relaxed),
        model: inner.models[p.model].name.clone(),
        device: inner.pool.device(p.device).name.clone(),
        priority: p.class,
        cancelled: false,
        batch_size: 0,
        queue_ms: wall_ms,
        exec_ms: 0.0,
        wall_ms,
        compile_cache_hit: false,
        retries: p.attempts,
        error: Some(error.to_string()),
    };
    // A dropped ticket just means nobody is listening.
    let _ = p.tx.send(response);
}

/// Routes one stranded or transiently failed request: consume a retry
/// attempt and either re-place + re-enqueue it with backoff, or answer
/// it terminally once the budget is spent. Works for both claimed
/// batch members and queued items drained off a dead device; concedes
/// to a concurrent cancel at every step (exactly one responder).
fn retry_or_fail(inner: &Inner, mut p: Pending, error: &str) {
    // Return a claimed request to the queued state so the next cut can
    // claim it again (and a cancel can win again while it waits).
    let _ = p.cell.state.compare_exchange(CLAIMED, QUEUED, Ordering::AcqRel, Ordering::Acquire);
    if p.cell.state.load(Ordering::Acquire) == CANCELLED {
        // Cancel won while the item was off-queue in our hands: we are
        // the only holder, so we answer it.
        respond_cancelled(inner, p);
        return;
    }
    p.attempts += 1;
    match inner.config.retry.decide(p.attempts) {
        RetryDecision::Retry { backoff } => {
            inner.metrics.retried.fetch_add(1, Ordering::Relaxed);
            let tracer = &inner.telemetry.telemetry.tracer;
            if tracer.is_enabled() {
                tracer.record_instant(
                    "retry",
                    RECOVERY_CATEGORY,
                    p.trace,
                    p.device as u64,
                    vec![
                        ("attempt".to_string(), f64::from(p.attempts)),
                        ("backoff_us".to_string(), backoff.as_micros() as f64),
                    ],
                );
            }
            requeue(inner, p, backoff);
        }
        RetryDecision::Fail => {
            inner.metrics.retry_exhausted.fetch_add(1, Ordering::Relaxed);
            let tracer = &inner.telemetry.telemetry.tracer;
            if tracer.is_enabled() {
                tracer.record_instant(
                    "retry_exhausted",
                    RECOVERY_CATEGORY,
                    p.trace,
                    p.device as u64,
                    vec![],
                );
            }
            // Final claim adjudicates against a cancel racing the
            // QUEUED window above.
            if p.claim() {
                respond_failed(inner, p, error);
            } else {
                respond_cancelled(inner, p);
            }
        }
    }
}

/// Refunds the failed placement, re-places the request among the alive
/// devices, and re-enqueues it dated `backoff` into the future — the
/// batcher's due check then naturally delays the next attempt. The
/// aged `enqueued` baseline is NOT reset: starvation aging keeps
/// counting from the original submission, so a retried request
/// outranks fresh traffic of its class.
fn requeue(inner: &Inner, mut p: Pending, backoff: Duration) {
    // Refund the failed placement; `place` below charges the new one.
    inner.pool.discharge(p.device, p.est_ns, p.class);
    let scale = f64::from(p.steps.max(1));
    loop {
        let (device, est) = place_scaled(&inner.pool, &inner.estimates[p.model], scale, p.class);
        p.device = device;
        p.est_ns = est;
        let key = BatchKey { model: p.model, device };
        let pushed = {
            let mut st = inner.state.lock().expect("batch state poisoned");
            if st.shutdown {
                // Too late to requeue: a worker for the new device may
                // already have drained and exited, which would strand
                // the ticket forever. Answer it now instead (the
                // respond path refunds the fresh charge).
                let killed = st.killed;
                drop(st);
                let error = if killed { REPLICA_KILLED } else { "server shut down during retry" };
                if p.claim() {
                    if killed {
                        inner.metrics.killed.fetch_add(1, Ordering::Relaxed);
                    }
                    respond_failed(inner, p, error);
                } else {
                    respond_cancelled(inner, p);
                }
                return;
            }
            st.batcher.push(key, p, Instant::now() + backoff)
        };
        match pushed {
            Ok(()) => {
                inner.work_cvs[device].notify_all();
                return;
            }
            // Lost a race with another death: refund and place again.
            Err(item) => {
                p = item;
                inner.pool.discharge(p.device, p.est_ns, p.class);
            }
        }
    }
}

fn worker_loop(inner: &Inner, device_id: usize) {
    let device = inner.pool.device(device_id).clone();
    // Latency reports per model on this device. Only this worker ever
    // touches (·, device_id) pairs, so the memo is thread-local.
    let mut reports: HashMap<usize, ModelReport> = HashMap::new();
    let mut st: MutexGuard<'_, BatchState> = inner.state.lock().expect("batch state poisoned");
    loop {
        let now = Instant::now();
        // Shutdown drains without waiting out the idle-latency bound.
        let cut = if st.shutdown {
            st.batcher.pull_any(device_id, now)
        } else {
            st.batcher.pull(device_id, now)
        };
        match cut {
            Some(cut) => {
                drop(st);
                // The cut freed queue capacity for blocked submitters.
                inner.space_cv.notify_all();
                for p in cut.cancelled {
                    respond_cancelled(inner, p);
                }
                if !cut.batch.items.is_empty() {
                    execute_batch(inner, device_id, &device, &mut reports, cut.batch);
                }
                st = inner.state.lock().expect("batch state poisoned");
            }
            None if st.shutdown => return,
            None => {
                let cv = &inner.work_cvs[device_id];
                st = match st.batcher.next_due(device_id, now) {
                    // Nothing queued for this device: sleep until work
                    // arrives (an idle server costs zero wakeups).
                    None => cv.wait(st).expect("batch state poisoned"),
                    // Something is queued but not due: sleep out the
                    // remainder of the idle-latency bound.
                    Some(wait) => {
                        let wait = wait.max(Duration::from_micros(50));
                        cv.wait_timeout(st, wait).expect("batch state poisoned").0
                    }
                };
            }
        }
    }
}

/// Marks `device_id` dead in both the pool and the batcher, returning
/// the drained queued requests — or `None` when the device is already
/// dead or the last one alive (the pool must keep serving). The
/// alive-count check and the marking happen under the batch-state
/// lock, so two concurrent deaths cannot race past each other and
/// leave the pool empty.
fn mark_device_dead(inner: &Inner, device_id: usize) -> Option<Vec<(BatchKey, Vec<Pending>)>> {
    let drained = {
        let mut st = inner.state.lock().expect("batch state poisoned");
        if inner.pool.alive_count() <= 1 || !inner.pool.mark_dead(device_id) {
            return None;
        }
        st.batcher.mark_dead(device_id)
    };
    let tracer = &inner.telemetry.telemetry.tracer;
    if tracer.is_enabled() {
        tracer.record_instant(
            "device_dead",
            RECOVERY_CATEGORY,
            TraceId::NONE,
            device_id as u64,
            vec![],
        );
    }
    Some(drained)
}

fn execute_batch(
    inner: &Inner,
    device_id: usize,
    device: &DeviceConfig,
    reports: &mut HashMap<usize, ModelReport>,
    batch: Batch<Pending>,
) {
    let exec_start = Instant::now();
    let size = batch.items.len();
    let model_id = batch.key.model;
    let spec = &inner.models[model_id];
    let tracer = &inner.telemetry.telemetry.tracer;
    // One timestamp for the whole batch: every member's queue span ends
    // — and its execute span starts — at the cut.
    let cut_ns = if tracer.is_enabled() { now_ns() } else { 0 };
    let lane = device_id as u64;

    let plan = inner.config.fault_plan.as_ref().filter(|p| !p.is_inert());
    // Device-level probes, one roll per batch. Death routes the whole
    // batch (and everything queued behind it) through retry and skips
    // execution entirely; a stall just holds the device.
    if let Some(plan) = plan {
        if plan.roll(FaultKind::DeviceDeath, device_id) {
            if let Some(drained) = mark_device_dead(inner, device_id) {
                record_fault(inner, FaultKind::DeviceDeath, TraceId::NONE, lane);
                for p in batch.items {
                    retry_or_fail(inner, p, "device died");
                }
                for (_key, items) in drained {
                    for p in items {
                        retry_or_fail(inner, p, "device died");
                    }
                }
                inner.space_cv.notify_all();
                return;
            }
            // Last device standing: the death is suppressed (the pool
            // must keep serving) and the batch executes normally.
        }
        if plan.roll(FaultKind::DeviceStall, device_id) {
            record_fault(inner, FaultKind::DeviceStall, TraceId::NONE, lane);
            std::thread::sleep(plan.stall_duration());
        }
    }

    // Per-item injected transient faults, decided up front against the
    // request's stable tag — and only on its first attempt, so a
    // cursed request fails exactly once and recovers on retry
    // (`recovered` then counts exactly the cursed tags, independent of
    // scheduling). A compile curse preempts compilation; an exec curse
    // fails the item after the batch runs.
    let cursed: Vec<Option<FaultKind>> = batch
        .items
        .iter()
        .map(|item| {
            let plan = plan?;
            if item.attempts > 0 {
                return None;
            }
            if plan.fault_for(FaultKind::CompileFault, item.tag) {
                record_fault(inner, FaultKind::CompileFault, item.trace, lane);
                Some(FaultKind::CompileFault)
            } else if plan.fault_for(FaultKind::ExecError, item.tag) {
                record_fault(inner, FaultKind::ExecError, item.trace, lane);
                Some(FaultKind::ExecError)
            } else {
                None
            }
        })
        .collect();

    // Compile every request through the shared session:
    // compile-on-first-use, cache-warm (and in-flight-deduplicated)
    // thereafter. The fingerprint was precomputed at registration,
    // so a warm call is a hash-map lookup. Accounting is deliberately
    // per *request* — the hit rate answers "what fraction of traffic
    // was served from a warm artifact", so the follow-up requests of
    // a batch count as hits too.
    // A panicking pass must fail this model's requests, not kill
    // the device worker (which would strand every later batch
    // routed here): the session's FlightGuard already unwedges
    // concurrent waiters, and catching the unwind turns the panic
    // into a per-request error response.
    let compiled: Vec<_> = batch
        .items
        .iter()
        .zip(&cursed)
        .map(|(item, curse)| {
            // A cursed item never reaches the compiler — the injected
            // fault preempts it.
            if curse.is_some() {
                return None;
            }
            let compile_start = if item.trace != TraceId::NONE { now_ns() } else { 0 };
            let (result, cache_hit) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.session.compile_keyed(
                        inner.framework.as_ref(),
                        &spec.graph,
                        spec.fingerprint,
                        device,
                    )
                }))
                .unwrap_or_else(|_| {
                    (Err(Unsupported::new(inner.framework.name(), "compilation panicked")), false)
                });
            if item.trace != TraceId::NONE {
                tracer.record_complete(
                    "compile",
                    "serve",
                    item.trace,
                    compile_start,
                    now_ns().saturating_sub(compile_start),
                    lane,
                    vec![("cache_hit".to_string(), f64::from(cache_hit))],
                );
            }
            Some((result, cache_hit))
        })
        .collect();

    // The sampled-trace latency estimate is much cheaper than
    // compilation but still worth paying once per model, not per
    // batch.
    //
    // The batch runs one device iteration per decode step of its
    // *longest* decode member — every batch-mate is held hostage for
    // all of them. This is exactly the cost continuous batching avoids
    // by re-submitting one step at a time.
    let iters = batch.items.iter().map(|i| i.steps.max(1)).max().unwrap_or(1);
    let exec_ms = compiled
        .iter()
        .flatten()
        .find_map(|(res, _)| res.as_ref().ok())
        .map(|output| reports.entry(model_id).or_insert_with(|| output.optimized.estimate(device)))
        .map_or(0.0, |r| batch_exec_ms(r.latency_ms, size) * f64::from(iters));
    if inner.config.exec_time_scale > 0.0 && exec_ms > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(exec_ms * inner.config.exec_time_scale / 1e3));
    }

    let m = &inner.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.per_device_batches[device_id].fetch_add(1, Ordering::Relaxed);
    if let Some(slot) = m.per_device_hist[device_id].get(size.saturating_sub(1)) {
        slot.fetch_add(1, Ordering::Relaxed);
    }
    if batch.items.iter().any(|i| i.steps > 0) {
        m.decode_steps.fetch_add(u64::from(iters), Ordering::Relaxed);
    }
    for ((item, outcome), curse) in batch.items.into_iter().zip(compiled).zip(cursed) {
        // Cursed items are transient failures: consume a retry attempt
        // and re-place them (or go terminal on an exhausted budget).
        // Their charge travels with them — requeue/respond refunds it.
        if let Some(kind) = curse {
            let error = match kind {
                FaultKind::CompileFault => "injected compile fault",
                _ => "injected execute error",
            };
            retry_or_fail(inner, item, error);
            continue;
        }
        let (result, cache_hit) = outcome.expect("uncursed items are compiled");
        inner.pool.discharge(device_id, item.est_ns, item.class);
        // Queue wait (submit → claim) feeds the always-on per-class
        // histograms: one atomic op, independent of span sampling.
        let queue_wait = exec_start.saturating_duration_since(item.submitted);
        inner.telemetry.queue_wait[item.class.index()]
            .record(u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX));
        if item.trace != TraceId::NONE {
            // The sampled request's full story: queue (submit → cut),
            // execute (cut → answer, compile nested inside), and the
            // end-to-end request envelope.
            let end_ns = now_ns();
            tracer.record_complete(
                "queue",
                "serve",
                item.trace,
                item.submit_ns,
                cut_ns.saturating_sub(item.submit_ns),
                lane,
                vec![("class".to_string(), item.class.index() as f64)],
            );
            tracer.record_complete(
                "execute",
                "serve",
                item.trace,
                cut_ns,
                end_ns.saturating_sub(cut_ns),
                lane,
                vec![("batch_size".to_string(), size as f64)],
            );
            tracer.record_complete(
                "request",
                "serve",
                item.trace,
                item.submit_ns,
                end_ns.saturating_sub(item.submit_ns),
                lane,
                vec![
                    ("class".to_string(), item.class.index() as f64),
                    ("cache_hit".to_string(), f64::from(cache_hit)),
                ],
            );
        }
        let error = result.as_ref().err().map(|e| e.to_string());
        let class = &m.per_class[item.class.index()];
        // A compilation error is terminal (retrying cannot fix a graph
        // the framework rejects): `failed`, disjoint from `completed`.
        if error.is_some() {
            m.failed.fetch_add(1, Ordering::Relaxed);
            class.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            m.completed.fetch_add(1, Ordering::Relaxed);
            class.completed.fetch_add(1, Ordering::Relaxed);
            if item.steps > 0 {
                m.decode_tokens.fetch_add(u64::from(item.steps), Ordering::Relaxed);
            }
            if item.attempts > 0 {
                m.recovered.fetch_add(1, Ordering::Relaxed);
            }
        }
        if Instant::now() > item.deadline {
            class.slo_violations.fetch_add(1, Ordering::Relaxed);
        }
        let response = InferenceResponse {
            request_id: item.id,
            completion_seq: m.completion_seq.fetch_add(1, Ordering::Relaxed),
            model: spec.name.clone(),
            device: device.name.clone(),
            priority: item.class,
            cancelled: false,
            batch_size: size,
            queue_ms: exec_start.saturating_duration_since(item.submitted).as_secs_f64() * 1e3,
            exec_ms,
            wall_ms: item.submitted.elapsed().as_secs_f64() * 1e3,
            compile_cache_hit: cache_hit,
            retries: item.attempts,
            error,
        };
        // A dropped ticket just means nobody is listening.
        let _ = item.tx.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_exec_time_is_sublinear() {
        let one = batch_exec_ms(10.0, 1);
        let four = batch_exec_ms(10.0, 4);
        assert_eq!(one, 10.0);
        assert!(four < 40.0, "batching must amortize: {four}");
        assert!(four > 10.0);
    }

    #[test]
    fn default_class_deadlines_are_ordered() {
        let d = ClassDeadlines::default();
        assert!(d.budget(Priority::Interactive) < d.budget(Priority::Batch));
        assert!(d.budget(Priority::Batch) < d.budget(Priority::BestEffort));
    }
}
